//! The paper's §3.3.2 media scenario: mplayer streams a movie at a fixed
//! bit rate. FlexFetch serves the paced refills over the wireless link
//! when bandwidth allows (letting the disk sleep) and falls back to the
//! local disk when the link degrades below ~2 Mbps — reproducing the
//! Fig. 2(b) switch.
//!
//! ```sh
//! cargo run --release --example media_streaming
//! ```

use flexfetch::prelude::*;

fn main() {
    let trace = Mplayer::default().build(42);
    let profile = Profiler::standard().profile(&Mplayer::default().build(41));

    println!(
        "{:<9} {:>12} {:>12} {:>12}  chosen source",
        "bw(Mbps)", "FlexFetch", "Disk-only", "WNIC-only"
    );
    for mbps in [1.0, 2.0, 5.5, 11.0] {
        let cfg = || SimConfig::default().with_wnic_bandwidth_mbps(mbps);
        let ff = Simulation::new(cfg(), &trace)
            .policy(PolicyKind::flexfetch(profile.clone()))
            .run()
            .unwrap();
        let disk = Simulation::new(cfg(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        let wnic = Simulation::new(cfg(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        // Where did FlexFetch route the stream?
        let source = if ff.wnic_bytes > ff.disk_bytes {
            "wireless"
        } else {
            "disk"
        };
        println!(
            "{:<9} {:>12} {:>12} {:>12}  {}",
            mbps,
            ff.total_energy().to_string(),
            disk.total_energy().to_string(),
            wnic.total_energy().to_string(),
            source
        );
    }
    println!("\nFlexFetch tracks whichever device is cheapest: the wireless link at");
    println!("high bandwidth (the disk sleeps through playback), the disk when the");
    println!("link drops below ~2 Mbps (Fig. 2(b) in the paper).");
}
