//! The two §2.3 adaptation mechanisms in action:
//!
//! 1. **Free riding (§3.3.4)** — xmms keeps the disk spinning (its MP3s
//!    exist only locally), so adaptive FlexFetch rides the disk instead
//!    of paying for the wireless link; FlexFetch-static cannot.
//! 2. **Invalid profile (§3.3.5)** — the recorded Acroread profile says
//!    "small sparse reads" but the actual run is bursty; the stage-end
//!    audit corrects the wrong initial decision after one stage.
//!
//! ```sh
//! cargo run --release --example adaptive_dynamics
//! ```

use flexfetch::base::Dur;
use flexfetch::prelude::*;
use flexfetch::trace::FileId;

fn forced_spinup() {
    println!("== forced spin-up: grep+make || xmms (§3.3.4) ==");
    let gm = Grep::default()
        .build(42)
        .concat(&Make::default().build(42), Dur::from_secs(2))
        .unwrap();
    let span = gm.stats().span + Dur::from_secs(30);
    let xmms = Xmms {
        play_limit: Some(span),
        ..Default::default()
    }
    .build(42);
    let pinned: Vec<FileId> = xmms.files.iter().map(|f| f.id).collect();
    let trace = gm.merge(&xmms).unwrap();

    let prior = Grep::default()
        .build(43)
        .concat(&Make::default().build(43), Dur::from_secs(2))
        .unwrap();
    let profile = Profiler::standard().profile(&prior);

    let cfg = || SimConfig::default().with_disk_only_files(pinned.iter().copied());
    let adaptive = Simulation::new(cfg(), &trace)
        .policy(PolicyKind::flexfetch(profile.clone()))
        .run()
        .unwrap();
    let static_ = Simulation::new(cfg(), &trace)
        .policy(PolicyKind::flexfetch_static(profile))
        .run()
        .unwrap();
    println!("  FlexFetch         {}", adaptive.total_energy());
    println!("  FlexFetch-static  {}", static_.total_energy());
    let saving = static_
        .total_energy()
        .relative_saving(adaptive.total_energy());
    println!(
        "  adaptation saves  {:.0}% (free-rides the xmms-powered disk)\n",
        saving * 100.0
    );
}

fn invalid_profile() {
    println!("== invalid profile: Acroread (§3.3.5) ==");
    // Profile recorded over 2 MB PDFs every 25 s; actual run searches
    // 20 MB PDFs every 10 s.
    let trace = Acroread::large_search().build(42);
    let stale = Profiler::standard().profile(&Acroread::small_profile().build(43));

    let adaptive = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch(stale.clone()))
        .run()
        .unwrap();
    let static_ = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch_static(stale))
        .run()
        .unwrap();

    println!("  FlexFetch         {}", adaptive.total_energy());
    println!("  FlexFetch-static  {}", static_.total_energy());
    println!("  decision timeline (adaptive):");
    for (t, s, why) in &adaptive.decisions {
        println!("    t={:<10} -> {:<5} ({why})", t.to_string(), s.label());
    }
    println!("  the stage-end audit abandons the stale profile after one 40 s stage");
}

fn main() {
    forced_spinup();
    invalid_profile();
}
