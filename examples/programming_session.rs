//! The paper's §3.3.1 programming scenario: a kernel developer greps the
//! source tree, then builds the kernel. Shows FlexFetch's per-stage
//! decisions: the dense grep burst goes to the (spun-up) disk, the
//! non-bursty build is serviced over the wireless link, and the bursty
//! final link phase briefly returns to the disk.
//!
//! ```sh
//! cargo run --release --example programming_session
//! ```

use flexfetch::base::Dur;
use flexfetch::prelude::*;

fn main() {
    // grep (dense scan) followed by make (minutes of sparse small I/O).
    let grep = Grep::default().build(42);
    let make = Make::default().build(42);
    let trace = grep
        .concat(&make, Dur::from_secs(2))
        .expect("disjoint inode spaces");

    // Profile from a prior execution of the same session.
    let prior = Grep::default()
        .build(43)
        .concat(&Make::default().build(43), Dur::from_secs(2))
        .unwrap();
    let profile = Profiler::standard().profile(&prior);

    let report = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch(profile))
        .run()
        .unwrap();

    println!("{}", report.summary());
    println!("\nevaluation stages completed: {}", report.stages);
    println!(
        "bytes from disk: {}  |  bytes over WNIC: {}",
        report.disk_bytes, report.wnic_bytes
    );
    println!("\nFlexFetch decision timeline:");
    for (t, source, why) in &report.decisions {
        println!("  t={:<12} -> {:<5} ({why})", t.to_string(), source.label());
    }

    // Compare against the baselines at the same configuration.
    println!("\nbaselines:");
    for kind in [
        PolicyKind::BlueFs,
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ] {
        let r = Simulation::new(SimConfig::default(), &trace)
            .policy(kind)
            .run()
            .unwrap();
        println!("  {:<12} {}", r.policy, r.total_energy());
    }
}
