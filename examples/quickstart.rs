//! Quickstart: generate a workload, record a profile, and compare
//! FlexFetch against the baselines on one configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexfetch::prelude::*;

fn main() {
    // 1. Generate the paper's `grep` workload (Table 3: 1332 files,
    //    50.4 MB) — deterministic for a given seed.
    let trace = Grep::default().build(42);
    let stats = trace.stats();
    println!(
        "workload: {} — {} files, {:.1} MB, {} syscalls\n",
        trace.name,
        stats.files,
        stats.footprint.as_mib_f64(),
        stats.records
    );

    // 2. Record the profile FlexFetch needs from a *previous* run of the
    //    same program (different seed = different execution).
    let profile = Profiler::standard().profile(&Grep::default().build(41));
    println!(
        "profile: {} bursts, {:.1} MB, span {}\n",
        profile.len(),
        profile.total_bytes().as_mib_f64(),
        profile.span()
    );

    // 3. Simulate the trace under each policy and compare total energy.
    let policies = [
        PolicyKind::flexfetch(profile.clone()),
        PolicyKind::BlueFs,
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ];
    let battery = flexfetch::sim::Battery::laptop_2007();
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "policy", "I/O energy", "exec time", "battery drain"
    );
    for kind in policies {
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(kind)
            .run()
            .expect("generated traces are valid");
        println!(
            "{:<16} {:>10} {:>9.1}s {:>13.3}%",
            report.policy,
            report.total_energy().to_string(),
            report.exec_time.as_secs_f64(),
            battery.task_drain_pct(&report)
        );
    }
    println!(
        "
(battery drain = I/O energy + 8 W platform draw over the task,"
    );
    println!(" as a share of a 50 Wh pack — slow policies pay for their time)");
}
