//! A grep session through a storm of scripted faults (DESIGN.md §12):
//! the wireless link fades to 1 Mbps, then drops entirely while a
//! background process hammers the disk, and finally the server stops
//! answering — all deterministic, all survivable.
//!
//! The example prints the adaptive policy's decision timeline and the
//! typed fault events, then shows the same schedule replaying to a
//! byte-identical log.
//!
//! ```sh
//! cargo run --release --example fault_storm
//! ```

use flexfetch::base::Dur;
use flexfetch::prelude::*;

fn storm() -> FaultPlan {
    // The clean grep run takes ~6 s of simulated time, so the whole
    // storm is packed into that window.
    FaultPlan::none()
        // 0–2 s: the link fades to 1 Mbps (policy notified immediately).
        .with_bandwidth_fade(Dur::ZERO, Dur::from_secs(2), 1.0)
        // 2.5 s: association lost for 1.5 s — requests fail over.
        .with_link_outage(Dur::from_millis(2_500), Dur::from_millis(1_500))
        // Meanwhile a background job touches the disk twice a second.
        .with_disk_storm(Dur::from_secs(2), 6, Dur::from_millis(500), 262_144)
        // 4 s: the instant the link returns, the server goes silent
        // for a while — WNIC-bound requests walk the retry ladder.
        .with_server_outage(Dur::from_secs(4), Dur::from_secs(3))
}

fn run(plan: FaultPlan, adaptive: bool) -> (SimReport, String) {
    let trace = Grep::default().build(42);
    let profile = Profiler::standard().profile(&Grep::default().build(43));
    let kind = if adaptive {
        PolicyKind::flexfetch(profile)
    } else {
        PolicyKind::WnicOnly
    };
    let mut log = EventLog::new();
    let report = Simulation::new(SimConfig::default().with_faults(plan), &trace)
        .policy(kind)
        .run_recorded(&mut log)
        .unwrap();
    (report, log.to_jsonl())
}

fn main() {
    println!("== grep through a fault storm ==");
    let (clean, _) = run(FaultPlan::none(), true);
    let (faulted, jsonl) = run(storm(), true);
    // A policy that insists on the WNIC shows the retry machinery the
    // adaptive one routes around: its requests walk the timeout →
    // backoff ladder during the server outage and fail over.
    let (stubborn, _) = run(storm(), false);

    println!(
        "  clean run              {}  in {}",
        clean.total_energy(),
        clean.exec_time
    );
    println!(
        "  fault storm, FlexFetch {}  in {}  ({} faults, {} retries, {} failovers)",
        faulted.total_energy(),
        faulted.exec_time,
        faulted.faults_injected,
        faulted.retries,
        faulted.failovers
    );
    println!(
        "  fault storm, WNIC-only {}  in {}  ({} faults, {} retries, {} failovers)",
        stubborn.total_energy(),
        stubborn.exec_time,
        stubborn.faults_injected,
        stubborn.retries,
        stubborn.failovers
    );
    assert_eq!(
        faulted.app_requests, clean.app_requests,
        "every request must survive the storm"
    );
    assert_eq!(stubborn.app_requests, clean.app_requests);

    println!("\n  decision timeline (adaptive FlexFetch):");
    for (t, s, why) in &faulted.decisions {
        println!("    t={:<12} -> {:<5} ({why})", t.to_string(), s.label());
    }

    println!("\n  fault events in the log:");
    for line in jsonl.lines() {
        let interesting = [
            "link_down",
            "link_up",
            "bandwidth_change",
            "server_down",
            "server_up",
            "request_retry",
            "failover",
            "external_disk",
        ];
        if interesting.iter().any(|k| line.contains(k)) {
            println!("    {line}");
        }
    }

    let (_, replay) = run(storm(), true);
    assert_eq!(jsonl, replay, "same plan, same seed, same bytes");
    println!("\n  replay of the same schedule is byte-identical ✓");
}
