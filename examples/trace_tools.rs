//! Trace & profile persistence: dump a generated workload in the strace
//! text format, reload it, extract its burst profile, and round-trip the
//! profile through JSON — the artefacts a real FlexFetch deployment
//! would keep on disk between runs (§2.1, §2.3.1).
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use flexfetch::prelude::*;
use flexfetch::trace::strace;

fn main() {
    let dir = std::env::temp_dir().join("flexfetch-demo");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Generate and persist a trace in the strace-like text format.
    let trace = Xmms {
        play_limit: Some(flexfetch::base::Dur::from_secs(120)),
        ..Default::default()
    }
    .build(7);
    let trace_path = dir.join("xmms.trace");
    std::fs::write(&trace_path, strace::to_string(&trace)).expect("write trace");
    println!("wrote {} ({} records)", trace_path.display(), trace.len());

    // Reload and verify it is bit-identical.
    let text = std::fs::read_to_string(&trace_path).expect("read back");
    let reloaded = strace::from_str(&text).expect("parse");
    assert_eq!(trace, reloaded, "strace round trip must be lossless");
    println!("reloaded losslessly");

    // Extract the profile and persist it as JSON.
    let profile = Profiler::standard().profile(&reloaded);
    let profile_path = dir.join("xmms.profile.json");
    profile.save(&profile_path).expect("save profile");
    let loaded = Profile::load(&profile_path).expect("load profile");
    assert_eq!(profile, loaded);
    println!(
        "profile: {} bursts / {:.1} MB -> {}",
        loaded.len(),
        loaded.total_bytes().as_mib_f64(),
        profile_path.display()
    );

    // Show the first few bursts the way §2.1 describes them.
    println!("\nfirst bursts (merged requests ≤128 KiB, think gaps ≥20 ms split):");
    for (i, pb) in loaded.bursts.iter().take(5).enumerate() {
        println!(
            "  burst {i}: {} requests, {}, think {} after",
            pb.burst.len(),
            pb.burst.bytes(),
            pb.gap_after
        );
    }

    // And drive a simulation straight from the reloaded artefacts.
    let report = Simulation::new(SimConfig::default(), &reloaded)
        .policy(PolicyKind::flexfetch(loaded))
        .run()
        .unwrap();
    println!("\nsimulated from reloaded artefacts: {}", report.summary());
}
