//! Build a *custom* workload with the synthetic generator, attach the
//! flash tier, and see where it lands on the disk/WNIC phase diagram —
//! the exploration workflow a downstream user of this library would run
//! for their own application.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use flexfetch::base::{Bytes, Dist};
use flexfetch::prelude::*;
use flexfetch::trace::{AccessPattern, Synthetic};

fn main() {
    // A database-ish workload: hot/cold random reads over log-normal
    // files, exponential think times averaging 3 s.
    let app = Synthetic {
        name: "kvstore",
        files: 60,
        total_bytes: 80_000_000,
        size_dist: Dist::log_normal(500_000.0, 1.2),
        chunk: Bytes::kib(16),
        think_dist: Dist::exponential(3.0),
        pattern: AccessPattern::RandomHotCold {
            hot_fraction: 0.1,
            hot_weight: 0.8,
        },
        requests: 400,
        base_inode: 90_000,
        pid: 900,
    };
    let trace = app.build(42);
    let profile = Profiler::standard().profile(&app.build(41));

    let a = flexfetch::trace::analyze(&trace);
    println!(
        "workload `{}`: {} calls, burstiness {:.0}%, think p50 {}, top-decile share {:.0}%\n",
        trace.name,
        trace.len(),
        a.burstiness * 100.0,
        a.think_times.map(|t| t.p50.to_string()).unwrap_or_default(),
        a.top_decile_share * 100.0
    );

    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "config", "FlexFetch", "best fixed", "winner"
    );
    for (label, flash_mb) in [("plain", 0usize), ("with 128MB flash", 128)] {
        let cfg = || {
            let mut c = SimConfig::default();
            // A memory-constrained device: 4 MiB of page cache, so the
            // hot set does not fit in RAM.
            c.cache.capacity_pages = 1024;
            if flash_mb > 0 {
                c = c.with_flash_mb(flash_mb);
            }
            c
        };
        let run = |kind: PolicyKind| {
            Simulation::new(cfg(), &trace)
                .policy(kind)
                .run()
                .unwrap()
                .total_energy()
                .get()
        };
        let ff = run(PolicyKind::flexfetch(profile.clone()));
        let disk = run(PolicyKind::DiskOnly);
        let wnic = run(PolicyKind::WnicOnly);
        let (best, who) = if disk <= wnic {
            (disk, "Disk-only")
        } else {
            (wnic, "WNIC-only")
        };
        println!("{label:<16} {ff:>11.1}J {best:>11.1}J {who:>10}");
    }
    println!("\nSparse small reads sit deep in WNIC territory (§1.1) and FlexFetch");
    println!("matches the best fixed device exactly. The flash tier is a wash here —");
    println!("its ~10 mW idle draw cancels the few re-reads it absorbs; flash pays");
    println!("off on re-read-heavy sessions (see `ff-bench --bin extensions`).");
}
