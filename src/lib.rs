//! # FlexFetch — history-aware I/O data-source selection for mobile energy saving
//!
//! A full reproduction of *"FlexFetch: A History-Aware Scheme for I/O
//! Energy Saving in Mobile Computing"* (Chen, Jiang, Shi, Yu — ICPP 2007)
//! as a Rust workspace. This facade crate re-exports every layer:
//!
//! * [`base`] — units: simulation time, energy, sizes, rates.
//! * [`trace`] — system-call trace model + the six Table 3 workload
//!   generators.
//! * [`device`] — Hitachi DK23DA disk and Cisco Aironet 350 WNIC power
//!   models (Tables 1 & 2).
//! * [`cache`] — Linux-style buffer cache substrate (2Q, readahead,
//!   C-SCAN, write-back, laptop mode).
//! * [`profile`] — I/O bursts, evaluation stages, profiles, and the
//!   execution-time/energy estimator.
//! * [`policy`] — FlexFetch, FlexFetch-static, BlueFS, Disk-only,
//!   WNIC-only.
//! * [`sim`] — the trace-driven discrete-event simulator and its reports.
//!
//! ## Quickstart
//!
//! ```
//! use flexfetch::prelude::*;
//!
//! // Generate the paper's grep workload and simulate it under FlexFetch.
//! let trace = Grep::default().build(42);
//! let profile = Profiler::standard().profile(&trace);
//! let cfg = SimConfig::default();
//! let report = Simulation::new(cfg.clone(), &trace)
//!     .policy(PolicyKind::flexfetch(profile))
//!     .run()
//!     .unwrap();
//! assert!(report.total_energy().get() > 0.0);
//! ```

pub use ff_base as base;
pub use ff_cache as cache;
pub use ff_device as device;
pub use ff_policy as policy;
pub use ff_profile as profile;
pub use ff_sim as sim;
pub use ff_trace as trace;

// Compile-tests every Rust code block in README.md as a doctest, so the
// quick-start snippet can never drift from the real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
struct ReadmeDoctests;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use ff_base::{Bytes, BytesPerSec, Dur, Joules, SimTime, Watts};
    pub use ff_device::{DiskParams, WnicParams};
    pub use ff_policy::PolicyKind;
    pub use ff_profile::{Profile, Profiler};
    pub use ff_sim::{
        EventLog, Fault, FaultPlan, ProfileFaultMode, RetryPolicy, SimConfig, SimReport, Simulation,
    };
    pub use ff_trace::{Acroread, Grep, Make, Mplayer, Thunderbird, Trace, Workload, Xmms};
}
