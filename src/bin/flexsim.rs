//! `flexsim` — command-line driver for the FlexFetch simulation stack.
//!
//! ```text
//! flexsim [--workload NAME] [--policy NAME] [--seed N]
//!         [--latency-ms N] [--bandwidth-mbps F]
//!         [--loss-rate F] [--stage-secs N] [--sync-writes]
//!         [--hoard-budget-mb N] [--decisions] [--breakdown]
//!         [--save-trace PATH] [--save-profile PATH]
//!
//! workloads: grep | make | xmms | mplayer | thunderbird | acroread
//!            | grep+make | grep+make+xmms
//! policies:  flexfetch | flexfetch-static | bluefs | disk | wnic | all
//! ```

use flexfetch::base::{Bytes, Dur};
use flexfetch::policy::FlexFetchConfig;
use flexfetch::prelude::*;
use flexfetch::profile::HoardPlanner;
use flexfetch::trace::{strace, FileId};
use std::process::exit;

struct Args {
    workload: String,
    policy: String,
    seed: u64,
    latency_ms: u64,
    bandwidth_mbps: f64,
    loss_rate: f64,
    stage_secs: u64,
    sync_writes: bool,
    hoard_budget_mb: Option<u64>,
    decisions: bool,
    breakdown: bool,
    save_trace: Option<String>,
    save_profile: Option<String>,
    report: Option<String>,
}

fn usage() -> ! {
    eprint!("{}", USAGE);
    exit(2)
}

const USAGE: &str = "\
flexsim — trace-driven FlexFetch simulation (ICPP'07 reproduction)

USAGE:
  flexsim [--workload NAME] [--policy NAME] [options]

OPTIONS:
  --workload NAME       grep | make | xmms | mplayer | thunderbird |
                        acroread | grep+make | grep+make+xmms  [grep+make]
  --policy NAME         flexfetch | flexfetch-static | bluefs | disk |
                        wnic | all                             [all]
  --seed N              workload generation seed               [42]
  --latency-ms N        WNIC round-trip latency                [1]
  --bandwidth-mbps F    802.11b link rate (1|2|5.5|11)         [11]
  --loss-rate F         max tolerable I/O slowdown, 0..1       [0.25]
  --stage-secs N        evaluation-stage length                [40]
  --sync-writes         mirror write-back to the server
  --hoard-budget-mb N   hoard only the hottest N MB locally
  --decisions           print the FlexFetch decision timeline
  --breakdown           print per-state device energy
  --save-trace PATH     dump the generated trace (strace text)
  --save-profile PATH   dump the prior-run profile (JSON)
  --report PATH         write a Markdown run report
  -h, --help            this text
";

fn parse_args() -> Args {
    let mut args = Args {
        workload: "grep+make".into(),
        policy: "all".into(),
        seed: 42,
        latency_ms: 1,
        bandwidth_mbps: 11.0,
        loss_rate: 0.25,
        stage_secs: 40,
        sync_writes: false,
        hoard_budget_mb: None,
        decisions: false,
        breakdown: false,
        save_trace: None,
        save_profile: None,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--workload" => args.workload = val("--workload"),
            "--policy" => args.policy = val("--policy"),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--latency-ms" => {
                args.latency_ms = val("--latency-ms").parse().unwrap_or_else(|_| usage())
            }
            "--bandwidth-mbps" => {
                args.bandwidth_mbps = val("--bandwidth-mbps").parse().unwrap_or_else(|_| usage())
            }
            "--loss-rate" => {
                args.loss_rate = val("--loss-rate").parse().unwrap_or_else(|_| usage())
            }
            "--stage-secs" => {
                args.stage_secs = val("--stage-secs").parse().unwrap_or_else(|_| usage())
            }
            "--hoard-budget-mb" => {
                args.hoard_budget_mb =
                    Some(val("--hoard-budget-mb").parse().unwrap_or_else(|_| usage()))
            }
            "--sync-writes" => args.sync_writes = true,
            "--decisions" => args.decisions = true,
            "--breakdown" => args.breakdown = true,
            "--save-trace" => args.save_trace = Some(val("--save-trace")),
            "--save-profile" => args.save_profile = Some(val("--save-profile")),
            "--report" => args.report = Some(val("--report")),
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0)
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// Build `(replayed trace, prior-run profile, disk-pinned files)`.
fn build_workload(name: &str, seed: u64) -> (Trace, Profile, Vec<FileId>) {
    let profiler = Profiler::standard();
    let single = |w: &dyn Workload| {
        let trace = w.build(seed);
        let profile = profiler.profile(&w.build(seed + 1));
        (trace, profile, Vec::new())
    };
    match name {
        "grep" => single(&Grep::default()),
        "make" => single(&Make::default()),
        "xmms" => single(&Xmms::default()),
        "mplayer" => single(&Mplayer::default()),
        "thunderbird" => single(&Thunderbird::default()),
        "acroread" => {
            // The paper's §3.3.5 setup: stale small-file profile.
            let trace = Acroread::large_search().build(seed);
            let profile = profiler.profile(&Acroread::small_profile().build(seed + 1));
            (trace, profile, Vec::new())
        }
        "grep+make" => {
            let build = |s: u64| {
                Grep::default()
                    .build(s)
                    .concat(&Make::default().build(s), Dur::from_secs(2))
                    .expect("disjoint inodes")
            };
            (build(seed), profiler.profile(&build(seed + 1)), Vec::new())
        }
        "grep+make+xmms" => {
            let gm = Grep::default()
                .build(seed)
                .concat(&Make::default().build(seed), Dur::from_secs(2))
                .expect("disjoint inodes");
            let span = gm.stats().span + Dur::from_secs(30);
            let xmms = Xmms {
                play_limit: Some(span),
                ..Default::default()
            }
            .build(seed);
            let pinned = xmms.files.iter().map(|f| f.id).collect();
            let prior = Grep::default()
                .build(seed + 1)
                .concat(&Make::default().build(seed + 1), Dur::from_secs(2))
                .unwrap();
            (gm.merge(&xmms).unwrap(), profiler.profile(&prior), pinned)
        }
        other => {
            eprintln!("unknown workload {other}");
            usage()
        }
    }
}

fn policies(name: &str, profile: &Profile, loss: f64, stage: Dur) -> Vec<PolicyKind> {
    let ff_cfg = FlexFetchConfig {
        loss_rate: loss,
        stage_len: stage,
        ..Default::default()
    };
    let ff = PolicyKind::FlexFetch {
        profile: profile.clone(),
        config: ff_cfg.clone(),
    };
    let ff_static = PolicyKind::FlexFetch {
        profile: profile.clone(),
        config: FlexFetchConfig {
            adaptive: false,
            ..ff_cfg
        },
    };
    match name {
        "flexfetch" => vec![ff],
        "flexfetch-static" => vec![ff_static],
        "bluefs" => vec![PolicyKind::BlueFs],
        "disk" => vec![PolicyKind::DiskOnly],
        "wnic" => vec![PolicyKind::WnicOnly],
        "all" => vec![
            ff,
            ff_static,
            PolicyKind::BlueFs,
            PolicyKind::DiskOnly,
            PolicyKind::WnicOnly,
        ],
        other => {
            eprintln!("unknown policy {other}");
            usage()
        }
    }
}

/// Render one policy's results as a Markdown section.
fn report_section(report: &ff_sim::SimReport) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(
        md,
        "## {}
",
        report.policy
    );
    let _ = writeln!(
        md,
        "| total energy | disk | wnic | flash | exec time | cache hit |
         |---|---|---|---|---|---|
         | **{}** | {} | {} | {} | {:.1} s | {:.1} % |
",
        report.total_energy(),
        report.disk_energy,
        report.wnic_energy,
        report.flash_energy,
        report.exec_time.as_secs_f64(),
        report.hit_ratio() * 100.0
    );
    let _ = writeln!(
        md,
        "### Device state residency
"
    );
    let _ = writeln!(
        md,
        "| device | state | time | energy |
|---|---|---|---|"
    );
    for (s, d, e) in report.disk_meter.residencies() {
        let _ = writeln!(md, "| disk | {s} | {d} | {e} |");
    }
    for (s, n, e) in report.disk_meter.transitions() {
        let _ = writeln!(md, "| disk | {s} | ×{n} | {e} |");
    }
    for (s, d, e) in report.wnic_meter.residencies() {
        let _ = writeln!(md, "| wnic | {s} | {d} | {e} |");
    }
    for (s, n, e) in report.wnic_meter.transitions() {
        let _ = writeln!(md, "| wnic | {s} | ×{n} | {e} |");
    }
    md.push('\n');
    if !report.decisions.is_empty() {
        let _ = writeln!(
            md,
            "### Decision timeline
"
        );
        for (t, s, why) in &report.decisions {
            let _ = writeln!(md, "* `{t}` → **{}** ({why})", s.label());
        }
        md.push('\n');
    }
    if !report.stage_summaries.is_empty() {
        let _ = writeln!(
            md,
            "### Evaluation stages
"
        );
        let _ = writeln!(
            md,
            "| # | window | disk | wnic | mean power | fetched |
|---|---|---|---|---|---|"
        );
        for s in &report.stage_summaries {
            let _ = writeln!(
                md,
                "| {} | {:.0}–{:.0} s | {} | {} | {:.2} W | {} |",
                s.index,
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.disk_energy,
                s.wnic_energy,
                s.mean_power_w(),
                s.fetched
            );
        }
        md.push('\n');
    }
    md
}

fn main() {
    let args = parse_args();
    let (trace, profile, pinned) = build_workload(&args.workload, args.seed);

    if let Some(path) = &args.save_trace {
        std::fs::write(path, strace::to_string(&trace)).expect("write trace");
        println!("trace -> {path}");
    }
    if let Some(path) = &args.save_profile {
        profile.save(path).expect("write profile");
        println!("profile -> {path}");
    }

    let mut cfg = SimConfig::default()
        .with_wnic_latency(Dur::from_millis(args.latency_ms))
        .with_wnic_bandwidth_mbps(args.bandwidth_mbps)
        .with_disk_only_files(pinned);
    cfg.stage_len = Dur::from_secs(args.stage_secs);
    if args.sync_writes {
        cfg = cfg.with_sync_writes();
    }
    if let Some(mb) = args.hoard_budget_mb {
        let plan = HoardPlanner::new(Bytes(mb * 1_000_000)).plan(&profile, &trace.files);
        println!(
            "hoard: {} files / {} local, {} server-only",
            plan.hoarded.len(),
            plan.hoarded_bytes,
            plan.missed.len()
        );
        cfg = cfg.with_network_only_files(plan.missed);
    }

    let stats = trace.stats();
    println!(
        "workload {} (seed {}): {} files, {:.1} MB, {} syscalls, span {:.0}s",
        args.workload,
        args.seed,
        stats.files,
        stats.footprint.as_mib_f64(),
        stats.records,
        stats.span.as_secs_f64()
    );
    println!(
        "wnic: {} Mbps, {} ms latency; stage {}s; loss rate {}\n",
        args.bandwidth_mbps, args.latency_ms, args.stage_secs, args.loss_rate
    );

    let mut md = format!(
        "# flexsim report — {} (seed {})\n\nWNIC {} Mbps / {} ms latency; stage {} s; loss rate {}.\n\n",
        args.workload, args.seed, args.bandwidth_mbps, args.latency_ms, args.stage_secs, args.loss_rate
    );
    for kind in policies(&args.policy, &profile, args.loss_rate, cfg.stage_len) {
        let report = match Simulation::new(cfg.clone(), &trace).policy(kind).run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simulation failed: {e}");
                exit(1)
            }
        };
        println!("{}", report.summary());
        if args.report.is_some() {
            md.push_str(&report_section(&report));
        }
        if args.breakdown {
            for (state, d, e) in report.disk_meter.residencies() {
                println!("    disk/{state:<14} {d:>12} {e:>10}");
            }
            for (name, n, e) in report.disk_meter.transitions() {
                println!("    disk/{name:<14} {n:>11}x {e:>10}");
            }
            for (state, d, e) in report.wnic_meter.residencies() {
                println!("    wnic/{state:<14} {d:>12} {e:>10}");
            }
            for (name, n, e) in report.wnic_meter.transitions() {
                println!("    wnic/{name:<14} {n:>11}x {e:>10}");
            }
        }
        if args.decisions && !report.decisions.is_empty() {
            println!("    decisions:");
            for (t, s, why) in &report.decisions {
                println!("      {t} -> {} ({why})", s.label());
            }
        }
    }
    if let Some(path) = &args.report {
        std::fs::write(path, md).expect("write report");
        println!("\nreport -> {path}");
    }
}
