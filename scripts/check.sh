#!/usr/bin/env bash
# Full local gate: formatting, static analysis, build, tests.
#
# This is the same sequence CI (and the tier-1 acceptance check) runs;
# a clean `./scripts/check.sh` means the tree is mergeable.
#
# Every step runs even when an earlier one fails: statuses are collected
# explicitly and the script exits non-zero if ANY step failed, naming
# the failures in a summary. (`set -e` alone is not enough here — the
# one-shot goal is to see every broken gate, and an `if !`-guarded or
# trailing-`||` step would silently swallow its status.)
#
# The lint step writes its JSON report to results/lint-report.json so CI
# can upload it as an artifact, and runs with --forbid-stale so a
# baseline listing already-fixed debt fails the gate instead of rotting.
# On failure it re-runs in human-readable mode — in GitHub Actions (or
# with FF_LINT_GITHUB=1) that re-run also emits ::error annotations that
# render inline on the PR diff.
set -uo pipefail
cd "$(dirname "$0")/.."

failed_steps=()

# run_step <label> <cmd...> — run a step, record its status.
run_step() {
    local label="$1"
    shift
    echo "==> ${label}"
    if ! "$@"; then
        echo "==> ${label} FAILED"
        failed_steps+=("${label}")
        return 1
    fi
}

lint_step() {
    mkdir -p results
    if cargo run -q -p ff-lint -- --json --forbid-stale \
        --sarif results/lint.sarif \
        --export-product results/fsm-product.json \
        > results/lint-report.json; then
        echo "    report: results/lint-report.json"
        echo "    sarif: results/lint.sarif"
        echo "    product automaton: results/fsm-product.json"
        return 0
    fi
    echo "==> ff-lint FAILED — human-readable report follows"
    rerun_args=()
    if [[ "${GITHUB_ACTIONS:-}" == "true" || "${FF_LINT_GITHUB:-}" == "1" ]]; then
        rerun_args+=(--github)
    fi
    cargo run -q -p ff-lint -- --forbid-stale "${rerun_args[@]+"${rerun_args[@]}"}" || true
    echo "error: ff-lint found new findings or a stale baseline;" >&2
    echo "       see results/lint-report.json, and run" >&2
    echo "       'cargo run -p ff-lint -- --update-baseline' only for" >&2
    echo "       debt you are deliberately accepting." >&2
    return 1
}

doc_step() {
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

# Build the handbook with mdBook when it is installed, else with the
# workspace's std-only fallback builder; the link check always uses
# ff-book (stock mdBook does not verify links).
handbook_step() {
    if command -v mdbook >/dev/null 2>&1; then
        mdbook build docs
    else
        cargo run -q -p ff-book -- build docs
    fi && cargo run -q -p ff-book -- check docs
}

# The mutation engine's ratchet gate: regenerate the kill-score matrix
# at the committed seed and fail when any family's kill rate falls
# below its recorded floor (the binary exits non-zero on a violation).
# The matrix lands in results/ so CI can upload it next to the product
# automaton.
killscore_step() {
    mkdir -p results
    if cargo run -q -p ff-lint -- --killscore results/lint-killscore.json; then
        echo "    kill matrix: results/lint-killscore.json"
        return 0
    fi
    echo "error: a rule family's mutation kill rate fell below its" >&2
    echo "       recorded floor; see results/lint-killscore.json" >&2
    return 1
}

# The parallel sweep engine's acceptance gate: the full benchsim grid
# serially vs on 8 workers must serialise byte-identically (benchpar
# exits non-zero otherwise), with the honest speedup recorded in
# bench/BENCH_parallel.json.
# bench/BENCH_parallel.json (the committed record) is regenerated
# explicitly; the gate here writes to results/ so a local check run
# does not dirty the tree with fresh timings.
parallel_step() {
    mkdir -p results
    cargo run --release -q -p ff-bench --bin benchpar -- --jobs 8 \
        --out results/BENCH_parallel.json
}

run_step "cargo fmt --all --check" cargo fmt --all --check
run_step "ff-lint (ratchet vs crates/ff-lint/baseline.json)" lint_step
run_step "cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)" doc_step
run_step "cargo build --release" cargo build --release
run_step "cargo test -q" cargo test -q
# The chaos suite already runs inside `cargo test -q`; naming it as its
# own step keeps a visible, independently-failing signal for the
# fault-injection robustness contract (DESIGN.md §12).
run_step "chaos suite (fault-injection invariants)" cargo test -q --test chaos
# Same pattern for the static<->dynamic conformance contract (DESIGN.md
# §13): the committed bench traces must replay clean against the
# extracted machines, with every static edge exercised.
run_step "trace conformance (static<->dynamic replay)" \
    cargo test -q --test lint committed_traces_conform
# The abstract-interpretation engine's own gate: golden interval facts
# plus the proptest soundness law (concrete evaluation always lands
# inside the inferred interval).
run_step "absint (golden interval facts + proptest soundness)" \
    cargo test -q --test absint
run_step "mutation-killscore (kill-rate ratchet vs recorded floors)" killscore_step
# The doctests are the handbook's executable walkthroughs (FaultPlan,
# run_recorded, the sweep grid, the lint driver); `cargo test -q` above
# already ran them, but a doc regression should be its own red line.
run_step "doctests (cargo test --doc)" cargo test -q --doc --workspace
run_step "handbook (mdbook-or-ff-book build + link check)" handbook_step
run_step "parallel-determinism (benchpar: jobs=1 vs jobs=8 byte-identical)" parallel_step

if (( ${#failed_steps[@]} > 0 )); then
    echo "==> ${#failed_steps[@]} check(s) FAILED:" >&2
    for step in "${failed_steps[@]}"; do
        echo "    - ${step}" >&2
    done
    exit 1
fi
echo "==> all checks passed"
