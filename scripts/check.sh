#!/usr/bin/env bash
# Full local gate: formatting, static analysis, build, tests.
#
# This is the same sequence CI (and the tier-1 acceptance check) runs;
# a clean `./scripts/check.sh` means the tree is mergeable.
#
# The lint step writes its JSON report to results/lint-report.json so CI
# can upload it as an artifact, and runs with --forbid-stale so a
# baseline listing already-fixed debt fails the gate instead of rotting.
# On failure it re-runs in human-readable mode — in GitHub Actions (or
# with FF_LINT_GITHUB=1) that re-run also emits ::error annotations that
# render inline on the PR diff.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> ff-lint (ratchet vs crates/ff-lint/baseline.json)"
mkdir -p results
if ! cargo run -q -p ff-lint -- --json --forbid-stale > results/lint-report.json; then
    echo "==> ff-lint FAILED — human-readable report follows"
    rerun_args=()
    if [[ "${GITHUB_ACTIONS:-}" == "true" || "${FF_LINT_GITHUB:-}" == "1" ]]; then
        rerun_args+=(--github)
    fi
    cargo run -q -p ff-lint -- --forbid-stale "${rerun_args[@]+"${rerun_args[@]}"}" || true
    echo "error: ff-lint found new findings or a stale baseline;" >&2
    echo "       see results/lint-report.json, and run" >&2
    echo "       'cargo run -p ff-lint -- --update-baseline' only for" >&2
    echo "       debt you are deliberately accepting." >&2
    exit 1
fi
echo "    report: results/lint-report.json"

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
