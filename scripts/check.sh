#!/usr/bin/env bash
# Full local gate: formatting, static analysis, build, tests.
#
# This is the same sequence CI (and the tier-1 acceptance check) runs;
# a clean `./scripts/check.sh` means the tree is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> ff-lint (ratchet vs crates/ff-lint/baseline.json)"
cargo run -q -p ff-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
