//! Tier-1 gate: the abstract-interpretation engine behind the wave-4
//! lint families.
//!
//! Two kinds of evidence:
//!
//! * **golden interval facts** — hand-checked expressions and function
//!   summaries whose inferred intervals are pinned exactly, so a domain
//!   or transfer-function change is a visible diff here, and
//! * **proptest soundness** — random arithmetic expressions evaluated
//!   both concretely (reference real-number semantics) and abstractly;
//!   the concrete value must always land inside the inferred interval.
//!   An abstraction may lose precision, never soundness.

use ff_lint::absint::{expr_interval, fn_summaries};
use ff_lint::interval::Interval;
use ff_lint::scan;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn consts(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

fn assert_point(iv: Interval, want: f64) {
    assert!(
        iv.is_point() && (iv.lo - want).abs() < 1e-9,
        "expected point {want}, got {iv}"
    );
}

// ---------------------------------------------------------------------
// Golden expression facts
// ---------------------------------------------------------------------

#[test]
fn golden_constant_arithmetic() {
    let env = consts(&[("SPINUP_J", 5.0), ("IDLE_W", 1.6), ("STANDBY_W", 0.15)]);
    assert_point(expr_interval("SPINUP_J + SPINUP_J", &env), 10.0);
    assert_point(expr_interval("IDLE_W - STANDBY_W", &env), 1.45);
    assert_point(expr_interval("SPINUP_J / IDLE_W", &env), 3.125);
    assert_point(expr_interval("SPINUP_J * 2", &env), 10.0);
    assert_point(expr_interval("-SPINUP_J", &env), -5.0);
}

#[test]
fn golden_method_transfer_functions() {
    let env = consts(&[("x", 7.0)]);
    // Known value: methods are exact.
    assert_point(expr_interval("x.max(10)", &env), 10.0);
    assert_point(expr_interval("x.min(3)", &env), 3.0);
    assert_point(expr_interval("x.clamp(0, 5)", &env), 5.0);
    // Unknown value: methods bound one side.
    let unknown = consts(&[]);
    let iv = expr_interval("y.max(0)", &unknown);
    assert!(iv.is_nonneg() && iv.hi.is_infinite(), "got {iv}");
    let iv = expr_interval("y.min(800)", &unknown);
    assert!(
        iv.lo.is_infinite() && (iv.hi - 800.0).abs() < 1e-9,
        "got {iv}"
    );
    let iv = expr_interval("y.clamp(1, 16)", &unknown);
    assert!(
        (iv.lo - 1.0).abs() < 1e-9 && (iv.hi - 16.0).abs() < 1e-9,
        "got {iv}"
    );
    let iv = expr_interval("y.abs()", &unknown);
    assert!(iv.is_nonneg(), "got {iv}");
    // Saturating counters floor at zero.
    let iv = expr_interval("y.saturating_sub(z)", &unknown);
    assert!(iv.is_nonneg(), "got {iv}");
}

#[test]
fn golden_division_by_interval_containing_zero_is_top() {
    let unknown = consts(&[]);
    let iv = expr_interval("a / b", &unknown);
    assert!(iv.is_top(), "unknown divisor must widen to ⊤, got {iv}");
    let env = consts(&[("b", 0.0)]);
    let iv = expr_interval("10 / b", &env);
    assert!(iv.is_top(), "zero divisor must widen to ⊤, got {iv}");
}

#[test]
fn golden_unknown_calls_are_top() {
    let unknown = consts(&[]);
    assert!(expr_interval("mystery()", &unknown).is_top());
    assert!(expr_interval("a.mystery_method()", &unknown).is_top());
}

// ---------------------------------------------------------------------
// Golden function summaries over a fixture tree
// ---------------------------------------------------------------------

fn fixture_tree() -> PathBuf {
    let dir = std::env::temp_dir().join("ff-absint-golden");
    let src = dir.join("crates/ff-sim/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        r#"
pub fn breakeven_floor() -> f64 {
    let spin_j = 5.0;
    let idle_w = 1.6;
    spin_j / idle_w
}

pub fn clamp_gap(gap_us: u64) -> u64 {
    gap_us.min(800).max(0)
}

pub fn doubled_floor() -> f64 {
    breakeven_floor() * 2.0
}
"#,
    )
    .expect("write fixture");
    dir
}

#[test]
fn golden_fn_summaries_over_fixture_sources() {
    let dir = fixture_tree();
    let sources = scan::collect_sources(&dir).expect("collect fixture sources");
    let sums = fn_summaries(&sources);

    let breakeven = sums["ff-sim::breakeven_floor"];
    assert_point(breakeven, 3.125);

    let clamp = sums["ff-sim::clamp_gap"];
    assert!(
        (clamp.lo - 0.0).abs() < 1e-9 && (clamp.hi - 800.0).abs() < 1e-9,
        "clamp_gap must summarise to [0, 800], got {clamp}"
    );

    // The second fixpoint round resolves calls to already-summarised
    // functions: doubled_floor sees breakeven_floor's point value.
    let doubled = sums["ff-sim::doubled_floor"];
    assert_point(doubled, 6.25);
}

// ---------------------------------------------------------------------
// Proptest soundness: concrete evaluation ∈ inferred interval
// ---------------------------------------------------------------------

/// One operand of a generated expression chain, as (text, value).
#[derive(Debug, Clone)]
enum Operand {
    Lit(i32),
    Ident(&'static str),
    Method(&'static str, &'static str, i32),
}

const IDENTS: [&str; 3] = ["a", "b", "c"];

impl Operand {
    fn render(&self) -> String {
        match self {
            Operand::Lit(n) => format!("{n}"),
            Operand::Ident(name) => (*name).to_string(),
            Operand::Method(name, m, arg) => format!("{name}.{m}({arg})"),
        }
    }

    fn value(&self, env: &BTreeMap<String, f64>) -> f64 {
        match self {
            Operand::Lit(n) => f64::from(*n),
            Operand::Ident(name) => env[*name],
            Operand::Method(name, m, arg) => {
                let v = env[*name];
                let a = f64::from(*arg);
                match *m {
                    "max" => v.max(a),
                    "min" => v.min(a),
                    _ => unreachable!("unknown method {m}"),
                }
            }
        }
    }
}

/// The vendored proptest has no `prop_oneof!`; variants are picked by a
/// leading kind selector, like the fault strategy in `properties.rs`.
fn operand_strategy() -> impl Strategy<Value = Operand> {
    (
        0..3usize,
        0..10_000i32,
        0..3usize,
        any::<bool>(),
        -1_000..1_000i32,
    )
        .prop_map(|(kind, lit, ident, use_max, arg)| match kind {
            0 => Operand::Lit(lit),
            1 => Operand::Ident(IDENTS[ident]),
            _ => Operand::Method(IDENTS[ident], if use_max { "max" } else { "min" }, arg),
        })
}

/// `+`, `-`, `*` follow Rust precedence; `/` only ever gets a positive
/// literal divisor so the concrete quotient is finite and the abstract
/// one is not forced to ⊤ by a zero-crossing divisor.
fn op_strategy() -> impl Strategy<Value = &'static str> {
    (0..4usize).prop_map(|i| [" + ", " - ", " * ", " / "][i])
}

/// Reference evaluation of the rendered token chain with standard
/// precedence (`*`/`/` bind tighter than `+`/`-`), in real-number
/// semantics — the semantics the abstract domain models.
fn reference_eval(operands: &[(Operand, &'static str)], env: &BTreeMap<String, f64>) -> f64 {
    // First collapse multiplicative runs, then sum the additive chain.
    let mut terms: Vec<f64> = Vec::new();
    let mut signs: Vec<f64> = Vec::new();
    let mut acc = operands[0].0.value(env);
    let mut pending_sign = 1.0;
    for window in operands.windows(2) {
        let op = window[0].1;
        let next = window[1].0.value(env);
        match op {
            " * " => acc *= next,
            " / " => acc /= next,
            " + " | " - " => {
                terms.push(acc);
                signs.push(pending_sign);
                pending_sign = if op == " - " { -1.0 } else { 1.0 };
                acc = next;
            }
            _ => unreachable!(),
        }
    }
    terms.push(acc);
    signs.push(pending_sign);
    terms.iter().zip(&signs).map(|(t, s)| t * s).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn concrete_value_lies_inside_inferred_interval(
        first in operand_strategy(),
        rest in proptest::collection::vec((op_strategy(), operand_strategy()), 0..5),
        vals in (-10_000..10_000i32, -10_000..10_000i32, -10_000..10_000i32),
    ) {
        let env: BTreeMap<String, f64> = IDENTS
            .iter()
            .zip([vals.0, vals.1, vals.2])
            .map(|(k, v)| ((*k).to_string(), f64::from(v)))
            .collect();

        // Assemble the chain; force `/` divisors to positive literals.
        let mut chain: Vec<(Operand, &'static str)> = vec![(first, "")];
        let mut text = chain[0].0.render();
        for (op, operand) in rest {
            let operand = if op == " / " {
                match operand {
                    Operand::Lit(n) => Operand::Lit(n.rem_euclid(999) + 1),
                    other => {
                        let n = match &other {
                            Operand::Ident(name) => name.len() as i32,
                            _ => 7,
                        };
                        Operand::Lit(n * 13 + 1)
                    }
                }
            } else {
                operand
            };
            chain.last_mut().expect("nonempty").1 = op;
            text.push_str(op);
            text.push_str(&operand.render());
            chain.push((operand, ""));
        }

        let concrete = reference_eval(&chain, &env);
        let iv = expr_interval(&text, &env);
        // Loss of precision is fine; loss of soundness is not. The
        // tolerance absorbs f64 rounding differences between the two
        // evaluation orders.
        let slack = 1e-6 * (1.0 + concrete.abs());
        prop_assert!(
            iv.lo - slack <= concrete && concrete <= iv.hi + slack,
            "`{}` concretely {} but inferred {}",
            text,
            concrete,
            iv
        );
    }

    /// Saturating subtraction must stay sound *and* nonnegative.
    #[test]
    fn saturating_sub_interval_is_sound(a in 0u32..100_000, b in 0u32..100_000) {
        let env = consts(&[("x_bytes", f64::from(a)), ("y_bytes", f64::from(b))]);
        let concrete = f64::from(a.saturating_sub(b));
        let iv = expr_interval("x_bytes.saturating_sub(y_bytes)", &env);
        prop_assert!(iv.is_nonneg(), "saturating_sub went negative: {iv}");
        prop_assert!(
            iv.lo - 1e-6 <= concrete && concrete <= iv.hi + 1e-6,
            "concretely {concrete} but inferred {iv}"
        );
    }
}
