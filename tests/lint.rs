//! Tier-1 gate: the ff-lint static-analysis pass over this workspace.
//!
//! These tests pin the contract the repository makes about itself:
//!
//! * the tree is clean against the committed ratchet baseline,
//! * the determinism rule family has **zero** findings (no baselined
//!   debt, no new ones) in the simulation crates,
//! * a seeded violation — e.g. a `thread_rng()` call appearing in
//!   `ff-sim` — is caught and fails the run.

use ff_lint::{Baseline, Rule};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn committed_baseline(root: &Path) -> Baseline {
    Baseline::load(&ff_lint::default_baseline_path(root)).expect("baseline.json loads")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let report = ff_lint::run(&root, &baseline).expect("lint run succeeds");
    assert!(
        report.is_clean(),
        "new findings beyond crates/ff-lint/baseline.json:\n{}",
        report.to_table()
    );
}

#[test]
fn determinism_family_is_fully_burned_down() {
    let root = workspace_root();
    // No accepted debt in the baseline…
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.keys_for_rule(Rule::Determinism).count(),
        0,
        "the determinism family must have an empty baseline"
    );
    // …and no findings in the tree either.
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let determinism: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::Determinism)
        .collect();
    assert!(
        determinism.is_empty(),
        "wall-clock/ambient-RNG/unordered-iteration findings in simulation crates: \
         {determinism:?}"
    );
}

#[test]
fn panic_safety_family_is_fully_burned_down() {
    // The fault-injection work burned the last `unwrap()`/`expect()`
    // debt out of non-test library code; this gate keeps the family at
    // zero — empty in the baseline AND empty in the tree — so any new
    // panic site in lib code fails tier-1 instead of ratcheting.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    assert!(
        baseline.is_empty_for(Rule::PanicSafety),
        "the panic-safety family must have an empty baseline"
    );
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicSafety)
        .collect();
    assert!(
        hits.is_empty(),
        "unwrap/expect/panic! in library code: {hits:?}"
    );
}

#[test]
fn model_invariants_hold_for_the_paper_tables() {
    let root = workspace_root();
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let violations: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ModelInvariants)
        .collect();
    assert!(
        violations.is_empty(),
        "DK23DA/Aironet-350 tables violate §3 invariants: {violations:?}"
    );
}

#[test]
fn fsm_family_is_pinned_at_zero() {
    let root = workspace_root();
    // No accepted FSM debt in the baseline…
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.keys_for_rule(Rule::Fsm).count(),
        0,
        "the fsm family must have an empty baseline"
    );
    // …and the extracted DK23DA / Aironet 350 machines model-check clean.
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let fsm: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Fsm).collect();
    assert!(
        fsm.is_empty(),
        "non-exhaustive/unreachable/deadlocked state machines: {fsm:?}"
    );
}

#[test]
fn semantic_families_are_pinned_at_zero() {
    // The second, third and fourth semantic waves — interprocedural
    // unit flow, constant provenance, event coverage, the product-state
    // checker, nondeterminism taint, trace conformance, and the three
    // abstract-interpretation families (arithmetic safety, energy
    // bounds, timeout ordering) — started life with no accepted debt,
    // and this gate keeps it that way: empty in the baseline AND empty
    // in the tree, so any regression fails tier-1 rather than
    // ratcheting.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    for rule in [
        Rule::UnitFlowInterproc,
        Rule::ConstProvenance,
        Rule::EventCoverage,
        Rule::ProductFsm,
        Rule::NondetTaint,
        Rule::TraceConformance,
        Rule::ArithSafety,
        Rule::EnergyBounds,
        Rule::TimeoutOrder,
    ] {
        assert!(
            baseline.is_empty_for(rule),
            "the {} family must have an empty baseline",
            rule.as_str()
        );
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
        assert!(hits.is_empty(), "{} findings: {hits:?}", rule.as_str());
    }
}

#[test]
fn device_fsm_tables_are_extracted_from_the_workspace() {
    let root = workspace_root();
    let analysis = ff_lint::analyze(&root).expect("scan succeeds");
    let disk = analysis
        .fsm_tables
        .iter()
        .find(|t| t.enum_name == "DiskState")
        .expect("DiskState machine extracted from crates/ff-device/src/disk.rs");
    let wnic = analysis
        .fsm_tables
        .iter()
        .find(|t| t.enum_name == "WnicState")
        .expect("WnicState machine extracted from crates/ff-device/src/wnic.rs");
    // The four-edge cycles from the paper's device models (§3).
    for (from, to) in [
        ("Idle", "SpinningDown"),
        ("SpinningDown", "Standby"),
        ("Standby", "SpinningUp"),
        ("SpinningUp", "Idle"),
    ] {
        assert!(disk.has_transition(from, to), "disk {from} -> {to}");
    }
    for (from, to) in [
        ("Cam", "ToPsm"),
        ("ToPsm", "Psm"),
        ("Psm", "ToCam"),
        ("ToCam", "Cam"),
    ] {
        assert!(wnic.has_transition(from, to), "wnic {from} -> {to}");
    }
    // The failover machine added with the product checker: the outage /
    // retry-ladder / recovery cycle in ff-sim.
    let server = analysis
        .fsm_tables
        .iter()
        .find(|t| t.enum_name == "ServerPathState")
        .expect("ServerPathState machine extracted from crates/ff-sim/src/sim.rs");
    for (from, to) in [
        ("Healthy", "Down"),
        ("Down", "Healthy"),
        ("Down", "MarkedDead"),
        ("MarkedDead", "Healthy"),
    ] {
        assert!(server.has_transition(from, to), "server {from} -> {to}");
    }
}

#[test]
fn product_state_machine_proves_recovery_and_full_reachability() {
    let root = workspace_root();
    let analysis = ff_lint::analyze(&root).expect("scan succeeds");
    let product = &analysis.product;
    assert!(
        !product.capped,
        "the product exploration must not hit the cap"
    );
    assert_eq!(
        product.states, product.reachable,
        "every product state must be reachable from the initial tuple"
    );
    assert!(
        !product.recoveries.is_empty(),
        "the degraded-state recovery obligations must be checked"
    );
    for rec in &product.recoveries {
        assert!(
            rec.recovers,
            "{}::{} must reach {} again",
            rec.component, rec.state, rec.healthy
        );
    }
}

#[test]
fn committed_traces_conform_to_the_static_model() {
    let root = workspace_root();
    let analysis = ff_lint::analyze(&root).expect("scan succeeds");
    let coverage = &analysis.trace_coverage;
    assert!(
        !coverage.traces.is_empty(),
        "the committed bench traces must be replayed"
    );
    let runtime_only: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::TraceConformance)
        .collect();
    assert!(
        runtime_only.is_empty(),
        "every runtime transition must be a static edge: {runtime_only:?}"
    );
    // The chaos traces walk every non-self edge of all three machines,
    // so the coverage-debt ledger is empty.
    assert!(
        coverage.unexercised.is_empty(),
        "static edges never exercised by a committed trace: {:?}",
        coverage.unexercised
    );
}

/// Materialise a minimal fake workspace containing one seeded violation.
fn seeded_violation_tree(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-seed-{name}"));
    let src = dir.join("crates/ff-sim/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn jitter() -> u64 {\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}\n",
    )
    .expect("write seed file");
    dir
}

#[test]
fn seeded_thread_rng_violation_is_caught() {
    let dir = seeded_violation_tree("api");
    let (findings, _) = ff_lint::collect_findings(&dir).expect("scan succeeds");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.token == "thread_rng"),
        "expected a determinism finding, got: {findings:?}"
    );
    // Against the committed (empty-for-determinism) baseline semantics,
    // that violation must fail the run.
    let delta = Baseline::empty().compare(&findings);
    assert!(!delta.is_clean());
}

/// Run the real binary through `cargo run -p ff-lint`, from the
/// workspace so the invocation matches what scripts/check.sh does.
fn run_ff_lint(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args(["run", "-q", "-p", "ff-lint", "--"])
        .args(args)
        .output()
        .expect("spawn cargo run -p ff-lint")
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = run_ff_lint(&["--json"]);
    assert!(
        out.status.success(),
        "ff-lint --json failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"clean\": true"), "unexpected JSON: {text}");

    // The JSON report must carry the extracted device transition tables
    // and the per-family summary, including panic-reachability.
    let doc = ff_base::json::Value::parse(&text).expect("stdout is JSON");
    let fsm = doc
        .get("fsm")
        .and_then(|v| v.as_array())
        .expect("fsm array");
    let enums: Vec<_> = fsm
        .iter()
        .filter_map(|t| t.get("enum").and_then(|v| v.as_str()))
        .collect();
    assert!(enums.contains(&"DiskState"), "missing DiskState: {enums:?}");
    assert!(enums.contains(&"WnicState"), "missing WnicState: {enums:?}");
    let by_rule = doc
        .get("summary")
        .and_then(|s| s.get("by_rule"))
        .and_then(|v| v.as_array())
        .expect("by_rule array");
    assert!(
        by_rule
            .iter()
            .any(|r| r.get("rule").and_then(|v| v.as_str()) == Some("panic-reachability")),
        "missing panic-reachability family in: {text}"
    );
    // Wave 4: eighteen families, plus the product and conformance nodes.
    assert_eq!(by_rule.len(), 18, "expected eighteen rule families: {text}");
    let product = doc.get("product").expect("product node");
    assert_eq!(
        product.get("states").and_then(|v| v.as_u64()),
        product.get("reachable").and_then(|v| v.as_u64()),
        "product reachability must be total: {text}"
    );
    let conformance = doc.get("conformance").expect("conformance node");
    assert_eq!(
        conformance.get("runtime_only").and_then(|v| v.as_u64()),
        Some(0),
        "committed traces must replay with no runtime-only transitions: {text}"
    );
}

#[test]
fn cli_writes_sarif_and_product_exports() {
    let dir = std::env::temp_dir().join("ff-lint-cli-exports");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sarif_path = dir.join("lint.sarif");
    let product_path = dir.join("fsm-product.json");
    let out = run_ff_lint(&[
        "--json",
        "--sarif",
        sarif_path.to_str().expect("utf-8 temp path"),
        "--export-product",
        product_path.to_str().expect("utf-8 temp path"),
    ]);
    assert!(
        out.status.success(),
        "ff-lint with exports failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sarif = std::fs::read_to_string(&sarif_path).expect("sarif written");
    let doc = ff_base::json::Value::parse(&sarif).expect("sarif is JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "not a SARIF 2.1.0 document: {sarif}"
    );
    assert!(
        sarif.contains("\"ff-lint\""),
        "driver name missing: {sarif}"
    );
    let product = std::fs::read_to_string(&product_path).expect("product written");
    let doc = ff_base::json::Value::parse(&product).expect("product export is JSON");
    let components = doc
        .get("components")
        .and_then(|v| v.as_array())
        .expect("components array");
    assert!(
        components.len() >= 3,
        "expected the disk, wnic and server machines: {product}"
    );
}

#[test]
fn mutation_kill_rates_meet_the_ratchet_floor() {
    // The ratchet gate of the mutation engine: every probe mutant must
    // be detected at a per-family rate no lower than the recorded floor
    // in `ff_lint::mutgen::FLOORS`, and the three wave-4 families —
    // being brand new — must kill 100 % of their probes. A detector
    // regression lowers a rate below its floor and fails tier-1.
    let root = workspace_root();
    let matrix =
        ff_lint::mutgen::run(&root, ff_lint::mutgen::DEFAULT_SEED).expect("mutation engine");
    let violations = matrix.floor_violations();
    assert!(
        violations.is_empty(),
        "kill-rate floors violated:\n{}",
        violations.join("\n")
    );
    for rule in [Rule::ArithSafety, Rule::EnergyBounds, Rule::TimeoutOrder] {
        let fam = matrix
            .families
            .iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("{} missing from the kill matrix", rule.as_str()));
        assert!(fam.probes > 0, "{}: no probes", rule.as_str());
        assert_eq!(
            fam.kills,
            fam.probes,
            "{}: kill rate {:.2} — a new family must kill every probe",
            rule.as_str(),
            fam.rate()
        );
    }
}

#[test]
fn cli_exits_nonzero_on_a_seeded_violation() {
    let dir = seeded_violation_tree("cli");
    let out = run_ff_lint(&[
        "--json",
        "--root",
        dir.to_str().expect("utf-8 temp path"),
        "--baseline",
        dir.join("no-baseline.json")
            .to_str()
            .expect("utf-8 temp path"),
    ]);
    assert!(
        !out.status.success(),
        "ff-lint accepted a thread_rng() call in ff-sim:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("thread_rng"), "missing finding in: {text}");
}
