//! Tier-1 gate: the ff-lint static-analysis pass over this workspace.
//!
//! These tests pin the contract the repository makes about itself:
//!
//! * the tree is clean against the committed ratchet baseline,
//! * the determinism rule family has **zero** findings (no baselined
//!   debt, no new ones) in the simulation crates,
//! * a seeded violation — e.g. a `thread_rng()` call appearing in
//!   `ff-sim` — is caught and fails the run.

use ff_lint::{Baseline, Rule};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn committed_baseline(root: &Path) -> Baseline {
    Baseline::load(&ff_lint::default_baseline_path(root)).expect("baseline.json loads")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let report = ff_lint::run(&root, &baseline).expect("lint run succeeds");
    assert!(
        report.is_clean(),
        "new findings beyond crates/ff-lint/baseline.json:\n{}",
        report.to_table()
    );
}

#[test]
fn determinism_family_is_fully_burned_down() {
    let root = workspace_root();
    // No accepted debt in the baseline…
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.keys_for_rule(Rule::Determinism).count(),
        0,
        "the determinism family must have an empty baseline"
    );
    // …and no findings in the tree either.
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let determinism: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::Determinism)
        .collect();
    assert!(
        determinism.is_empty(),
        "wall-clock/ambient-RNG/unordered-iteration findings in simulation crates: \
         {determinism:?}"
    );
}

#[test]
fn panic_safety_family_is_fully_burned_down() {
    // The fault-injection work burned the last `unwrap()`/`expect()`
    // debt out of non-test library code; this gate keeps the family at
    // zero — empty in the baseline AND empty in the tree — so any new
    // panic site in lib code fails tier-1 instead of ratcheting.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    assert!(
        baseline.is_empty_for(Rule::PanicSafety),
        "the panic-safety family must have an empty baseline"
    );
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicSafety)
        .collect();
    assert!(
        hits.is_empty(),
        "unwrap/expect/panic! in library code: {hits:?}"
    );
}

#[test]
fn model_invariants_hold_for_the_paper_tables() {
    let root = workspace_root();
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let violations: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ModelInvariants)
        .collect();
    assert!(
        violations.is_empty(),
        "DK23DA/Aironet-350 tables violate §3 invariants: {violations:?}"
    );
}

#[test]
fn fsm_family_is_pinned_at_zero() {
    let root = workspace_root();
    // No accepted FSM debt in the baseline…
    let baseline = committed_baseline(&root);
    assert_eq!(
        baseline.keys_for_rule(Rule::Fsm).count(),
        0,
        "the fsm family must have an empty baseline"
    );
    // …and the extracted DK23DA / Aironet 350 machines model-check clean.
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    let fsm: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Fsm).collect();
    assert!(
        fsm.is_empty(),
        "non-exhaustive/unreachable/deadlocked state machines: {fsm:?}"
    );
}

#[test]
fn semantic_families_are_pinned_at_zero() {
    // The second semantic wave — interprocedural unit flow, constant
    // provenance, event coverage — started life with no accepted debt,
    // and this gate keeps it that way: empty in the baseline AND empty
    // in the tree, so any regression fails tier-1 rather than ratcheting.
    let root = workspace_root();
    let baseline = committed_baseline(&root);
    let (findings, _) = ff_lint::collect_findings(&root).expect("scan succeeds");
    for rule in [
        Rule::UnitFlowInterproc,
        Rule::ConstProvenance,
        Rule::EventCoverage,
    ] {
        assert!(
            baseline.is_empty_for(rule),
            "the {} family must have an empty baseline",
            rule.as_str()
        );
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
        assert!(hits.is_empty(), "{} findings: {hits:?}", rule.as_str());
    }
}

#[test]
fn device_fsm_tables_are_extracted_from_the_workspace() {
    let root = workspace_root();
    let analysis = ff_lint::analyze(&root).expect("scan succeeds");
    let disk = analysis
        .fsm_tables
        .iter()
        .find(|t| t.enum_name == "DiskState")
        .expect("DiskState machine extracted from crates/ff-device/src/disk.rs");
    let wnic = analysis
        .fsm_tables
        .iter()
        .find(|t| t.enum_name == "WnicState")
        .expect("WnicState machine extracted from crates/ff-device/src/wnic.rs");
    // The four-edge cycles from the paper's device models (§3).
    for (from, to) in [
        ("Idle", "SpinningDown"),
        ("SpinningDown", "Standby"),
        ("Standby", "SpinningUp"),
        ("SpinningUp", "Idle"),
    ] {
        assert!(disk.has_transition(from, to), "disk {from} -> {to}");
    }
    for (from, to) in [
        ("Cam", "ToPsm"),
        ("ToPsm", "Psm"),
        ("Psm", "ToCam"),
        ("ToCam", "Cam"),
    ] {
        assert!(wnic.has_transition(from, to), "wnic {from} -> {to}");
    }
}

/// Materialise a minimal fake workspace containing one seeded violation.
fn seeded_violation_tree(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-seed-{name}"));
    let src = dir.join("crates/ff-sim/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn jitter() -> u64 {\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}\n",
    )
    .expect("write seed file");
    dir
}

#[test]
fn seeded_thread_rng_violation_is_caught() {
    let dir = seeded_violation_tree("api");
    let (findings, _) = ff_lint::collect_findings(&dir).expect("scan succeeds");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::Determinism && f.token == "thread_rng"),
        "expected a determinism finding, got: {findings:?}"
    );
    // Against the committed (empty-for-determinism) baseline semantics,
    // that violation must fail the run.
    let delta = Baseline::empty().compare(&findings);
    assert!(!delta.is_clean());
}

/// Run the real binary through `cargo run -p ff-lint`, from the
/// workspace so the invocation matches what scripts/check.sh does.
fn run_ff_lint(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args(["run", "-q", "-p", "ff-lint", "--"])
        .args(args)
        .output()
        .expect("spawn cargo run -p ff-lint")
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = run_ff_lint(&["--json"]);
    assert!(
        out.status.success(),
        "ff-lint --json failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"clean\": true"), "unexpected JSON: {text}");

    // The JSON report must carry the extracted device transition tables
    // and the per-family summary, including panic-reachability.
    let doc = ff_base::json::Value::parse(&text).expect("stdout is JSON");
    let fsm = doc
        .get("fsm")
        .and_then(|v| v.as_array())
        .expect("fsm array");
    let enums: Vec<_> = fsm
        .iter()
        .filter_map(|t| t.get("enum").and_then(|v| v.as_str()))
        .collect();
    assert!(enums.contains(&"DiskState"), "missing DiskState: {enums:?}");
    assert!(enums.contains(&"WnicState"), "missing WnicState: {enums:?}");
    let by_rule = doc
        .get("summary")
        .and_then(|s| s.get("by_rule"))
        .and_then(|v| v.as_array())
        .expect("by_rule array");
    assert!(
        by_rule
            .iter()
            .any(|r| r.get("rule").and_then(|v| v.as_str()) == Some("panic-reachability")),
        "missing panic-reachability family in: {text}"
    );
}

#[test]
fn cli_exits_nonzero_on_a_seeded_violation() {
    let dir = seeded_violation_tree("cli");
    let out = run_ff_lint(&[
        "--json",
        "--root",
        dir.to_str().expect("utf-8 temp path"),
        "--baseline",
        dir.join("no-baseline.json")
            .to_str()
            .expect("utf-8 temp path"),
    ]);
    assert!(
        !out.status.success(),
        "ff-lint accepted a thread_rng() call in ff-sim:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("thread_rng"), "missing finding in: {text}");
}
