//! End-to-end tests of the `flexsim` command-line driver.

use std::process::Command;

fn flexsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexsim"))
}

#[test]
fn help_prints_usage() {
    let out = flexsim().arg("--help").output().expect("spawn flexsim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--workload"));
    assert!(text.contains("--policy"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = flexsim().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"));
}

#[test]
fn small_run_reports_every_policy() {
    let out = flexsim()
        .args(["--workload", "xmms", "--policy", "all"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "FlexFetch",
        "FlexFetch-static",
        "BlueFS",
        "Disk-only",
        "WNIC-only",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn artefacts_round_trip_through_the_cli() {
    let dir = std::env::temp_dir().join("flexsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("t.trace");
    let profile_path = dir.join("p.json");
    let report_path = dir.join("r.md");
    let out = flexsim()
        .args([
            "--workload",
            "grep",
            "--policy",
            "flexfetch",
            "--save-trace",
            trace_path.to_str().unwrap(),
            "--save-profile",
            profile_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
            "--decisions",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The dumped artefacts parse with the library.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = flexfetch::trace::strace::from_str(&text).unwrap();
    assert_eq!(trace.files.len(), 1332);
    let profile = flexfetch::profile::Profile::load(&profile_path).unwrap();
    assert!(!profile.is_empty());
    let report = std::fs::read_to_string(&report_path).unwrap();
    assert!(report.contains("# flexsim report"));
    assert!(report.contains("## FlexFetch"));
    assert!(report.contains("Decision timeline"));
}

#[test]
fn environment_flags_change_results() {
    let run = |extra: &[&str]| -> String {
        let mut cmd = flexsim();
        cmd.args(["--workload", "xmms", "--policy", "wnic"]);
        cmd.args(extra);
        let out = cmd.output().expect("spawn");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let fast = run(&[]);
    let slow = run(&["--bandwidth-mbps", "1"]);
    assert_ne!(fast, slow, "bandwidth flag had no effect");
}

#[test]
fn hoard_budget_prints_the_plan() {
    let out = flexsim()
        .args([
            "--workload",
            "xmms",
            "--policy",
            "flexfetch",
            "--hoard-budget-mb",
            "10",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hoard:"), "{text}");
    assert!(text.contains("server-only"));
}
