//! Property-based tests over the full stack: randomly generated traces
//! and parameters must never violate the simulator's invariants.

use flexfetch::base::{Bytes, Dur, SimTime};
use flexfetch::prelude::*;
use flexfetch::profile::BurstExtractor;
use flexfetch::trace::{FileId, FileMeta, IoOp, TraceRecord};
use proptest::prelude::*;

/// Strategy: a small random-but-valid trace over up to 8 files.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let sizes = proptest::collection::vec(4096u64..2_000_000, 1..8);
    (
        sizes,
        proptest::collection::vec(
            (
                0u64..8,
                0.0f64..1.0,
                1u64..200_000,
                0u64..3_000_000,
                any::<bool>(),
            ),
            1..60,
        ),
    )
        .prop_map(|(sizes, raw)| {
            let mut t = Trace::new("prop");
            for (i, &s) in sizes.iter().enumerate() {
                t.files.insert(FileMeta {
                    id: FileId(i as u64 + 1),
                    name: format!("f{i}"),
                    size: Bytes(s),
                });
            }
            let nfiles = sizes.len() as u64;
            let mut ts = 0u64;
            for (fi, frac, len, gap, write) in raw {
                let file = fi % nfiles + 1;
                let size = sizes[(file - 1) as usize];
                let len = len.min(size);
                let offset = ((size - len) as f64 * frac) as u64;
                ts += gap;
                t.records.push(TraceRecord {
                    pid: 1,
                    pgid: 1,
                    file: FileId(file),
                    op: if write { IoOp::Write } else { IoOp::Read },
                    offset,
                    len: Bytes(len.max(1)),
                    ts: SimTime(ts),
                    dur: Dur(100),
                });
                ts += 100;
            }
            t
        })
}

/// Strategy: one random-but-valid fault (every variant reachable via
/// the leading kind selector).
fn arb_fault() -> impl Strategy<Value = Fault> {
    (
        (0u32..5, 0u64..30_000_000, 100_000u64..15_000_000),
        (
            1u64..=11,
            1u32..8,
            100_000u64..4_000_000,
            4096u64..1_000_000,
        ),
        any::<bool>(),
    )
        .prop_map(
            |((kind, at, dur), (mbps_steps, touches, gap, bytes), corrupt)| {
                let (at, dur) = (Dur(at), Dur(dur));
                match kind {
                    0 => Fault::LinkOutage { at, dur },
                    1 => Fault::BandwidthFade {
                        at,
                        dur,
                        mbps: mbps_steps as f64 * 0.5,
                    },
                    2 => Fault::ServerOutage { at, dur },
                    3 => Fault::DiskStorm {
                        at,
                        touches,
                        gap: Dur(gap),
                        bytes,
                    },
                    _ => Fault::ProfileFault {
                        at,
                        mode: if corrupt {
                            ProfileFaultMode::Corrupt
                        } else {
                            ProfileFaultMode::Stale
                        },
                    },
                }
            },
        )
}

/// Strategy: a random fault schedule of up to 4 overlapping faults.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(arb_fault(), 0..4).prop_map(|faults| FaultPlan { faults })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay never panics, accounts every syscall, and produces finite
    /// positive energy, under every policy.
    #[test]
    fn simulation_invariants(trace in arb_trace(), policy_id in 0usize..4) {
        prop_assume!(trace.validate().is_ok());
        let kind = match policy_id {
            0 => PolicyKind::DiskOnly,
            1 => PolicyKind::WnicOnly,
            2 => PolicyKind::BlueFs,
            _ => PolicyKind::flexfetch(Profile::empty("prop")),
        };
        let r = Simulation::new(SimConfig::default(), &trace).policy(kind).run().unwrap();
        prop_assert_eq!(r.app_requests, trace.len() as u64);
        prop_assert!(r.total_energy().is_valid());
        prop_assert!(r.total_energy().get() > 0.0);
        // Devices never see more DEMAND data than requested plus
        // readahead and write-back can explain: bound fetch+flush traffic
        // by requested bytes + full readahead amplification + page
        // rounding (each request may touch 2 partial pages).
        let fetched = r.disk_bytes.get() + r.wnic_bytes.get();
        let requested = trace.total_bytes().get();
        let worst = 2 * requested + (r.app_requests * 2 + 64) * 4096 + 32 * 4096 * r.app_requests;
        prop_assert!(fetched <= worst, "fetched {} > bound {}", fetched, worst);
    }

    /// Random fault schedules: replay never panics, never loses a
    /// request, stays consistent, and remains bit-deterministic — under
    /// every policy, including FlexFetch-static.
    #[test]
    fn faulted_simulation_invariants(
        trace in arb_trace(),
        plan in arb_fault_plan(),
        policy_id in 0usize..5,
    ) {
        prop_assume!(trace.validate().is_ok());
        let kind = || match policy_id {
            0 => PolicyKind::DiskOnly,
            1 => PolicyKind::WnicOnly,
            2 => PolicyKind::BlueFs,
            3 => PolicyKind::flexfetch(Profiler::standard().profile(&trace)),
            _ => PolicyKind::flexfetch_static(Profiler::standard().profile(&trace)),
        };
        let run = || {
            Simulation::new(SimConfig::default().with_faults(plan.clone()), &trace)
                .policy(kind())
                .run()
                .unwrap()
        };
        let r = run();
        // Conservation: every traced request is served, fault or no fault.
        prop_assert_eq!(r.app_requests, trace.len() as u64);
        prop_assert!(r.total_energy().is_valid());
        prop_assert!(r.total_energy().get() > 0.0);
        // A failover can only follow at least one timed-out attempt.
        prop_assert!(r.failovers == 0 || r.retries > 0);
        let b = run();
        prop_assert_eq!(r.total_energy(), b.total_energy());
        prop_assert_eq!(r.exec_time, b.exec_time);
        prop_assert_eq!(r.retries, b.retries);
        prop_assert_eq!(r.failovers, b.failovers);
    }

    /// Replay is bit-deterministic.
    #[test]
    fn replay_is_deterministic(trace in arb_trace()) {
        prop_assume!(trace.validate().is_ok());
        let run = || {
            Simulation::new(SimConfig::default(), &trace)
                .policy(PolicyKind::BlueFs)
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.total_energy(), b.total_energy());
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.disk_requests, b.disk_requests);
        prop_assert_eq!(a.wnic_requests, b.wnic_requests);
    }

    /// Burst extraction conserves bytes and orders bursts in time.
    #[test]
    fn burst_extraction_conserves_bytes(trace in arb_trace()) {
        prop_assume!(trace.validate().is_ok());
        let bursts = BurstExtractor::default().extract(&trace);
        let total: u64 = bursts.iter().map(|b| b.burst.bytes().get()).sum();
        prop_assert_eq!(total, trace.total_bytes().get());
        for w in bursts.windows(2) {
            prop_assert!(w[0].burst.start <= w[1].burst.start);
            prop_assert!(w[0].gap_after >= Dur::from_millis(20),
                "closed bursts must be separated by at least the threshold");
        }
    }

    /// The strace text format round-trips any valid trace.
    #[test]
    fn strace_round_trip(trace in arb_trace()) {
        prop_assume!(trace.validate().is_ok());
        let text = flexfetch::trace::strace::to_string(&trace);
        let back = flexfetch::trace::strace::from_str(&text).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Profile JSON round-trips and splicing preserves the untouched tail.
    #[test]
    fn profile_roundtrip_and_splice(trace in arb_trace(), n in 0usize..10) {
        prop_assume!(trace.validate().is_ok());
        let p = Profiler::standard().profile(&trace);
        let back = Profile::from_json(&p.to_json()).unwrap();
        prop_assert_eq!(&p, &back);
        let observed = p.bursts.clone();
        let spliced = p.splice(&observed[..n.min(p.len())], n);
        if n <= p.len() {
            // Tail beyond n is unchanged.
            prop_assert_eq!(&spliced.bursts[n.min(spliced.len())..],
                            &p.bursts[n.min(p.len())..]);
        }
    }

    /// Derived per-task RNG streams (the parallel sweep engine's
    /// source of task-private randomness) never collide for distinct
    /// keys, and re-deriving the same key is stable. FNV-1a over a
    /// 64-bit space could collide in principle, but a collision among
    /// realistic task keys would silently correlate two grid cells —
    /// so we hunt for one over random key sets.
    #[test]
    fn derived_streams_are_distinct_and_stable(
        base in any::<u64>(),
        raw_keys in proptest::collection::vec("[a-z/0-9]{3,24}", 2..12)
    ) {
        let mut keys: Vec<String> = raw_keys;
        keys.sort_unstable();
        keys.dedup();
        let mut seeds: Vec<u64> = keys
            .iter()
            .map(|k| flexfetch::base::derive_seed(base, k))
            .collect();
        for (k, &s) in keys.iter().zip(&seeds) {
            prop_assert_eq!(flexfetch::base::derive_seed(base, k), s);
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), n, "derived seed collision within key set");
    }

    /// Closed-loop replay preserves think times: the run can never finish
    /// faster than the sum of the trace's inter-call gaps (per process
    /// group), whatever the devices do. (Note: raising WNIC latency is
    /// NOT guaranteed to slow the whole run monotonically — a timing
    /// shift can land a request inside the card's CAM window and skip an
    /// entire 0.8 s + 0.41 s mode-switch cycle.)
    #[test]
    fn replay_preserves_think_time(trace in arb_trace(), policy_id in 0usize..2) {
        prop_assume!(trace.validate().is_ok());
        // All generated records share one pgid, so total think time is
        // the sum of gaps between consecutive records.
        let think: u64 = trace
            .records
            .windows(2)
            .map(|w| w[1].ts.saturating_since(w[0].end()).as_micros())
            .sum();
        let kind = if policy_id == 0 { PolicyKind::DiskOnly } else { PolicyKind::WnicOnly };
        let r = Simulation::new(SimConfig::default(), &trace).policy(kind).run().unwrap();
        prop_assert!(
            r.exec_time.as_micros() >= think,
            "exec {} < think {}", r.exec_time.as_micros(), think
        );
    }
}
