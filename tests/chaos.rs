//! The chaos harness: seeded fault schedules swept across policies and
//! workloads, with the robustness invariants asserted on every run.
//!
//! The contract under test (DESIGN.md §12): whatever a [`FaultPlan`]
//! does to a run, (1) nothing panics, (2) every traced request is
//! eventually served, (3) device state machines stay legal and energy
//! stays finite and non-negative, (4) the same schedule replays to a
//! byte-identical event log, and (5) once the faults clear, performance
//! recovers to within a bounded distance of the fault-free run.

use ff_bench::faults::{check_invariants, fault_run, FAULT_SCENARIOS};
use ff_bench::observe::{build_policy, build_workload, ObservedRun, POLICIES};
use flexfetch::base::Dur;
use flexfetch::prelude::*;

/// The acceptance schedule: a WNIC link outage dropped mid-stage (100 s
/// is the middle of the third 40 s evaluation stage) plus a background
/// process hammering the disk — the §2.3.3 free-riding situation.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::none()
        .with_link_outage(Dur::from_secs(100), Dur::from_secs(240))
        .with_disk_storm(Dur::from_secs(90), 50, Dur::from_secs(6), 262_144)
}

fn observed(trace: &Trace, kind: PolicyKind, plan: FaultPlan) -> ObservedRun {
    let mut log = EventLog::new();
    let report = Simulation::new(SimConfig::default().with_faults(plan), trace)
        .policy(kind)
        .run_recorded(&mut log)
        .expect("chaos runs must not fail");
    ObservedRun { report, log }
}

#[test]
fn acceptance_schedule_replays_byte_identically() {
    let trace = build_workload("mplayer", 42).unwrap();
    let run = |_: u32| {
        let kind = build_policy("flexfetch", "mplayer", 42).unwrap();
        observed(&trace, kind, acceptance_plan())
    };
    let (a, b) = (run(0), run(1));
    assert_eq!(
        a.log.to_jsonl(),
        b.log.to_jsonl(),
        "the same fault schedule must replay to a byte-identical log"
    );
    assert_eq!(a.report.total_energy(), b.report.total_energy());
    assert_eq!(a.report.exec_time, b.report.exec_time);
}

#[test]
fn acceptance_schedule_adaptive_beats_static() {
    let trace = build_workload("mplayer", 42).unwrap();
    let adaptive = observed(
        &trace,
        build_policy("flexfetch", "mplayer", 42).unwrap(),
        acceptance_plan(),
    );
    let fixed = observed(
        &trace,
        build_policy("flexfetch-static", "mplayer", 42).unwrap(),
        acceptance_plan(),
    );
    // Both survive with every request served…
    assert!(check_invariants(&trace, &adaptive).is_empty());
    assert!(check_invariants(&trace, &fixed).is_empty());
    // …but the adaptive variant degrades to the disk during the outage
    // (parking the WNIC) and free-rides the storm-spun disk, ending
    // strictly cheaper than the variant that ignores the faults.
    assert!(
        adaptive.report.total_energy() < fixed.report.total_energy(),
        "adaptive {} must beat static {} under the acceptance schedule",
        adaptive.report.total_energy(),
        fixed.report.total_energy()
    );
    // The adaptation is visible in the decision log.
    assert!(
        adaptive
            .report
            .decisions
            .iter()
            .any(|(_, _, why)| *why == "fault:degraded"),
        "no degradation recorded: {:?}",
        adaptive.report.decisions
    );
    assert!(
        adaptive
            .report
            .decisions
            .iter()
            .any(|(_, _, why)| *why == "fault:recovered"),
        "no recovery recorded: {:?}",
        adaptive.report.decisions
    );
}

#[test]
fn acceptance_schedule_emits_typed_fault_events() {
    let trace = build_workload("mplayer", 42).unwrap();
    let run = observed(
        &trace,
        build_policy("flexfetch", "mplayer", 42).unwrap(),
        acceptance_plan(),
    );
    assert_eq!(run.log.count("link_down"), 1);
    assert_eq!(run.log.count("link_up"), 1);
    assert_eq!(run.log.count("external_disk"), 50);
    assert_eq!(run.report.faults_injected, 51);
    // The log serialises in timestamp order.
    let jsonl = run.log.to_jsonl();
    let mut last = 0u64;
    for line in jsonl.lines() {
        let t = line
            .split("\"t\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<u64>().ok())
            .expect("every event carries t");
        assert!(t >= last, "events out of order: {t} after {last}");
        last = t;
    }
}

#[test]
fn every_policy_survives_every_named_scenario() {
    let trace = build_workload("grep", 42).unwrap();
    for policy in POLICIES {
        for scenario in FAULT_SCENARIOS {
            let run = fault_run("grep", policy, scenario, 42)
                .unwrap_or_else(|e| panic!("{policy}/{scenario} failed: {e}"));
            let violations = check_invariants(&trace, &run);
            assert!(
                violations.is_empty(),
                "{policy}/{scenario} violated: {violations:?}"
            );
        }
    }
}

#[test]
fn seeded_schedules_are_survivable_and_deterministic() {
    let trace = build_workload("grep", 42).unwrap();
    let span = trace.stats().span;
    for seed in [1u64, 7, 42, 1234] {
        let plan = FaultPlan::seeded(seed, span);
        for policy in POLICIES {
            let run = || {
                observed(
                    &trace,
                    build_policy(policy, "grep", 42).unwrap(),
                    plan.clone(),
                )
            };
            let a = run();
            let violations = check_invariants(&trace, &a);
            assert!(
                violations.is_empty(),
                "seed {seed}/{policy} violated: {violations:?}"
            );
            let b = run();
            assert_eq!(
                a.log.to_jsonl(),
                b.log.to_jsonl(),
                "seed {seed}/{policy} must replay identically"
            );
        }
    }
}

#[test]
fn retry_ladder_is_walked_then_dropped_after_recovery() {
    let trace = build_workload("grep", 42).unwrap();
    // Server dead for the first 3 s (the closed-loop grep run finishes
    // in well under 60 s, so the server must recover mid-run), with a
    // fast ladder so the first request exhausts it quickly.
    let plan = FaultPlan::none().with_server_outage(Dur::ZERO, Dur::from_secs(3));
    let retry = RetryPolicy {
        timeout: Dur::from_millis(300),
        backoff: Dur::from_millis(100),
        max_retries: 3,
    };
    let mut log = EventLog::new();
    let report = Simulation::new(
        SimConfig::default().with_faults(plan).with_retry(retry),
        &trace,
    )
    .policy(PolicyKind::WnicOnly)
    .run_recorded(&mut log)
    .unwrap();
    assert!(report.retries > 0, "the outage must cost timeouts");
    assert!(
        report.failovers > 0,
        "the ladder must exhaust at least once"
    );
    assert_eq!(report.app_requests, trace.len() as u64);
    // After the server returns the WNIC serves again: the run's traffic
    // is split, not all failed over.
    assert!(report.wnic_requests > 0, "recovery must restore the WNIC");
    assert!(report.disk_requests > 0, "failovers must have hit the disk");
    assert_eq!(log.count("request_retry"), report.retries);
}

#[test]
fn performance_recovers_once_faults_clear() {
    let trace = build_workload("grep", 42).unwrap();
    let clean = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::DiskOnly)
        .run()
        .unwrap();
    // A 10 s link outage early in the run; Disk-only traffic does not
    // even use the link, and adaptive policies degrade to the disk, so
    // the residual slowdown must stay within the fault window plus one
    // exhausted retry ladder of slack.
    let plan = FaultPlan::none().with_link_outage(Dur::from_secs(5), Dur::from_secs(10));
    let bound = clean.exec_time + Dur::from_secs(10) + SimConfig::default().retry.max_ladder();
    for policy in ["disk", "flexfetch"] {
        let faulted = Simulation::new(SimConfig::default().with_faults(plan.clone()), &trace)
            .policy(build_policy(policy, "grep", 42).unwrap())
            .run()
            .unwrap();
        assert!(
            faulted.exec_time <= bound,
            "{policy}: faulted run {} exceeds recovery bound {bound} (clean {})",
            faulted.exec_time,
            clean.exec_time
        );
    }
}

#[test]
fn corrupt_profile_injection_is_survived_and_audited_away() {
    let trace = build_workload("grep", 42).unwrap();
    let plan = FaultPlan::none().with_profile_fault(Dur::from_secs(2), ProfileFaultMode::Corrupt);
    let run = observed(&trace, build_policy("flexfetch", "grep", 42).unwrap(), plan);
    assert!(check_invariants(&trace, &run).is_empty());
    assert_eq!(run.log.count("profile_injected"), 1);
    assert!(
        run.report
            .decisions
            .iter()
            .any(|(_, _, why)| *why == "fault:profile"),
        "the injected profile must force a re-decision: {:?}",
        run.report.decisions
    );
}
