//! The parallel deterministic sweep engine's tier-1 contract.
//!
//! The engine (`ff-bench::pool` + `ff-bench::grid`) promises that a
//! scenario × policy × seed grid produces **byte-identical** output at
//! any `--jobs` setting: tasks own derived RNG streams
//! (`derive_seed(base, task_key)`), workers steal freely, and results
//! merge in canonical task order. These tests pin:
//!
//! 1. the full `benchsim` grid serialising identically at `--jobs 1`
//!    and `--jobs 8` (the acceptance gate `scripts/check.sh` re-runs at
//!    release scale as its `parallel-determinism` step);
//! 2. the RNG stream derivation: a cross-platform golden fixture of
//!    derived seeds and each stream's first eight draws, and pairwise
//!    non-collision over the full grid;
//! 3. the chaos matrix and the figure sweeps behaving identically
//!    under the pool.

use ff_base::{derive_seed, task_rng};
use ff_bench::grid::{sim_matrix_json, Grid};
use ff_bench::observe::{POLICIES, WORKLOADS};
use rand::Rng;

/// The acceptance criterion: the same grid at `--jobs 1` and
/// `--jobs 8` must serialise byte-identically. This is scheduling
/// independence, not hardware parallelism — it holds (and matters) on
/// any core count.
#[test]
fn full_sim_grid_is_byte_identical_at_jobs_1_and_8() {
    let serial = sim_matrix_json(42, 1).unwrap().to_pretty();
    let parallel = sim_matrix_json(42, 8).unwrap().to_pretty();
    assert!(
        serial == parallel,
        "jobs=1 and jobs=8 BENCH_sim documents diverged"
    );
    // The document is the real schema-2 artifact shape.
    let doc = ff_base::json::Value::parse(&serial).unwrap();
    assert_eq!(doc.get("schema").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        doc.get("cells").and_then(|c| c.as_array()).map(|c| c.len()),
        Some(30)
    );
}

/// Golden fixture: derived seeds and first-8 draws are pinned so the
/// derivation can never drift across platforms or refactors without a
/// deliberate fixture update (every recorded experiment would shift).
#[test]
fn derived_streams_match_the_golden_fixture() {
    let golden: [(&str, u64, [u64; 8]); 4] = [
        (
            "grep/disk/42",
            0xf1e90da545bfb84d,
            [
                1275595120970518099,
                7827206488832878694,
                10377415865171424528,
                5947064932496897055,
                16764916252355537247,
                11857799215581742705,
                18070125492911647269,
                6246479061671973925,
            ],
        ),
        (
            "grep/flexfetch/42",
            0xc7a7150913d8694c,
            [
                776153251446119198,
                7535738883032607476,
                7975857300282814831,
                18274562038939854711,
                4743509981987653225,
                3169328178074822146,
                9777223284184563793,
                15387772239147713680,
            ],
        ),
        (
            "xmms/wnic/7",
            0x3e7f3492a03b66b8,
            [
                17444366930597324380,
                702371258073678069,
                17184702262956345695,
                11793697803529085187,
                17594592002181573865,
                15586496491788921230,
                11478288672680019287,
                14212392000841600545,
            ],
        ),
        (
            "acroread/flexfetch-static/42",
            0x23191b2baf75e629,
            [
                3062890523947649705,
                13957685218254224446,
                9339625523788462862,
                9818641729182659128,
                6375874136204434757,
                10239827027296880935,
                478027578837132778,
                4462382600069575304,
            ],
        ),
    ];
    let base = 42u64;
    for (key, seed, draws) in golden {
        assert_eq!(
            derive_seed(base, key),
            seed,
            "derived seed drifted for {key}"
        );
        let mut rng = task_rng(base, key);
        let got: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        assert_eq!(got, draws, "stream drifted for {key}");
    }
}

/// Derived per-task streams must be pairwise non-colliding over the
/// full grid — for the grid keys themselves and for several base
/// seeds, and the streams (not just the seeds) must differ.
#[test]
fn derived_streams_are_pairwise_non_colliding_over_the_full_grid() {
    for base in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let mut seeds = Vec::new();
        for w in WORKLOADS {
            for p in POLICIES {
                for s in [base, base.wrapping_add(1)] {
                    seeds.push(derive_seed(base, &format!("{w}/{p}/{s}")));
                }
            }
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "stream collision at base {base}");
    }
    // Distinct seeds must mean distinct streams, not just distinct ids.
    let a: Vec<u64> = (0..4).map(|_| task_rng(42, "grep/disk/42").gen()).collect();
    let b: Vec<u64> = (0..4).map(|_| task_rng(42, "grep/disk/43").gen()).collect();
    assert_ne!(a, b);
}

/// The chaos matrix is grid-shaped too: the pool must not change a
/// single cell. (A 2×2×2 corner keeps the debug-build runtime sane;
/// `benchfaults --jobs` covers the full matrix at release scale.)
#[test]
fn fault_matrix_is_identical_at_any_job_count() {
    let collect = |jobs| {
        ff_bench::fault_matrix(
            &["grep", "thunderbird"],
            &["disk", "flexfetch"],
            &["baseline", "link-outage"],
            42,
            jobs,
        )
        .unwrap()
        .into_iter()
        .map(|c| {
            let json =
                ff_bench::cell_json(&c.workload, &c.policy, &c.scenario, &c.run, &c.violations);
            (c.workload, c.policy, c.scenario, json.to_pretty())
        })
        .collect::<Vec<_>>()
    };
    let serial = collect(1);
    assert_eq!(serial.len(), 8);
    assert_eq!(serial, collect(8));
}

/// A grid error does not deadlock the pool and surfaces the canonical
/// first failure.
#[test]
fn grid_failure_is_reported_not_hung() {
    let g = Grid::new(1)
        .workloads(["grep", "no-such-workload"])
        .policies(["disk"])
        .seeds([1]);
    let err = g
        .run(8, |cell| {
            ff_bench::observe::build_workload(&cell.workload, cell.seed)
        })
        .unwrap_err();
    assert!(err.to_string().contains("no-such-workload"), "{err}");
}
