//! End-to-end determinism: two identical `flexsim` invocations must
//! produce byte-identical output.
//!
//! This is the behavioural counterpart of the ff-lint determinism rule:
//! the static pass forbids wall-clock time, ambient RNGs and unordered
//! iteration in the simulation crates; this test observes the payoff at
//! the process boundary. Any regression — a `HashMap` iteration order
//! leaking into a report, an unseeded RNG — shows up as a byte diff.

use std::process::Command;

fn run_flexsim(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_flexsim"))
        .args(args)
        .output()
        .expect("spawn flexsim");
    assert!(
        out.status.success(),
        "flexsim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn identical_invocations_are_byte_identical() {
    let args = [
        "--workload",
        "make",
        "--policy",
        "all",
        "--seed",
        "42",
        "--decisions",
    ];
    let first = run_flexsim(&args);
    let second = run_flexsim(&args);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "two runs with the same seed diverged — nondeterminism in the simulator"
    );
}

#[test]
fn different_seeds_actually_change_the_workload() {
    let a = run_flexsim(&["--workload", "make", "--policy", "flexfetch", "--seed", "1"]);
    let b = run_flexsim(&["--workload", "make", "--policy", "flexfetch", "--seed", "2"]);
    assert_ne!(a, b, "the seed must reach the workload generator");
}
