//! Shape-regression tests: every qualitative claim of §3.3 that the
//! reproduction commits to (see DESIGN.md §4) is pinned here, so a code
//! change that silently breaks a figure fails CI instead of EXPERIMENTS.md.
//!
//! These run the full paper scenarios; they are the slowest tests in the
//! workspace (a few seconds each in debug).

use ff_bench::Scenario;
use flexfetch::base::{Dur, Joules};
use flexfetch::prelude::*;

fn run(scenario: &Scenario, kind: PolicyKind, cfg: SimConfig) -> Joules {
    let cfg = scenario.configure(cfg);
    Simulation::new(cfg, &scenario.trace)
        .policy(kind)
        .run()
        .expect("scenario is valid")
        .total_energy()
}

fn four(scenario: &Scenario, cfg: SimConfig) -> (f64, f64, f64, f64) {
    let ff = run(
        scenario,
        PolicyKind::flexfetch(scenario.profile.clone()),
        cfg.clone(),
    );
    let bf = run(scenario, PolicyKind::BlueFs, cfg.clone());
    let disk = run(scenario, PolicyKind::DiskOnly, cfg.clone());
    let wnic = run(scenario, PolicyKind::WnicOnly, cfg);
    (ff.get(), bf.get(), disk.get(), wnic.get())
}

// ---------------------------------------------------------------- Fig 1

#[test]
fn fig1_low_latency_orderings() {
    let s = Scenario::grep_make(42).unwrap();
    let (ff, bluefs, disk, wnic) = four(&s, SimConfig::default());
    // §3.3.1: FlexFetch wins; WNIC-only beats Disk-only at low latency;
    // BlueFS burns both devices and lands worst.
    assert!(ff < wnic, "FlexFetch {ff} must beat WNIC-only {wnic}");
    assert!(wnic < disk, "WNIC-only {wnic} must beat Disk-only {disk}");
    assert!(
        bluefs > wnic,
        "BlueFS {bluefs} must exceed WNIC-only {wnic}"
    );
    assert!(
        bluefs > disk * 0.95,
        "BlueFS {bluefs} must be at Disk-only scale {disk}"
    );
}

#[test]
fn fig1_wnic_only_rises_with_latency() {
    let s = Scenario::grep_make(42).unwrap();
    let lo = run(&s, PolicyKind::WnicOnly, SimConfig::default());
    let hi = run(
        &s,
        PolicyKind::WnicOnly,
        SimConfig::default().with_wnic_latency(Dur::from_millis(30)),
    );
    assert!(
        hi.get() > lo.get() * 1.03,
        "30 ms of latency must cost ≥3%: {lo} -> {hi}"
    );
}

#[test]
fn fig1_bandwidth_crossover() {
    // §3.3.1/Fig 1(b): at 1 Mbps WNIC-only exceeds Disk-only; FlexFetch
    // benefits monotonically from more bandwidth.
    let s = Scenario::grep_make(42).unwrap();
    let cfg = |mbps: f64| SimConfig::default().with_wnic_bandwidth_mbps(mbps);
    let wnic_1 = run(&s, PolicyKind::WnicOnly, cfg(1.0));
    let disk_1 = run(&s, PolicyKind::DiskOnly, cfg(1.0));
    assert!(
        wnic_1 > disk_1,
        "1 Mbps WNIC-only {wnic_1} must exceed Disk-only {disk_1}"
    );
    let ff_1 = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg(1.0));
    let ff_11 = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg(11.0));
    assert!(
        ff_11 < ff_1,
        "FlexFetch must benefit from bandwidth: {ff_1} -> {ff_11}"
    );
    assert!(
        ff_1 < wnic_1,
        "FlexFetch must escape the slow link: {ff_1} vs {wnic_1}"
    );
}

// ---------------------------------------------------------------- Fig 2

#[test]
fn fig2_flexfetch_tracks_wnic_only() {
    let s = Scenario::mplayer(42).unwrap();
    let (ff, bluefs, disk, wnic) = four(&s, SimConfig::default());
    // §3.3.2: FlexFetch ≈ WNIC-only (within 10 %); BlueFS even higher
    // than Disk-only; Disk-only wasteful for paced streaming.
    assert!(
        (ff - wnic).abs() / wnic < 0.10,
        "FlexFetch {ff} !≈ WNIC-only {wnic}"
    );
    assert!(
        bluefs > disk,
        "BlueFS {bluefs} must exceed Disk-only {disk} (ghost-hint waste)"
    );
    assert!(
        ff < disk * 0.85,
        "streaming on the disk must be clearly worse"
    );
}

#[test]
fn fig2_low_bandwidth_switches_to_disk() {
    let s = Scenario::mplayer(42).unwrap();
    let cfg = SimConfig::default().with_wnic_bandwidth_mbps(1.0);
    let ff = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg.clone());
    let disk = run(&s, PolicyKind::DiskOnly, cfg.clone());
    let wnic = run(&s, PolicyKind::WnicOnly, cfg);
    // §3.3.2: below 2 Mbps FlexFetch switches to the disk — comparable
    // to Disk-only, and far (paper: up to 45 %) below WNIC-only.
    assert!((ff.get() - disk.get()).abs() / disk.get() < 0.05);
    assert!(
        ff.get() < wnic.get() * 0.75,
        "FlexFetch {ff} must be ≥25% below WNIC-only {wnic} at 1 Mbps"
    );
}

// ---------------------------------------------------------------- Fig 3

#[test]
fn fig3_orderings() {
    let s = Scenario::thunderbird(42).unwrap();
    let (ff, bluefs, disk, wnic) = four(&s, SimConfig::default());
    // §3.3.3: Disk-only expensive; FlexFetch below BlueFS (paper: 17 %);
    // WNIC-only below Disk-only at low latency.
    assert!(ff < bluefs, "FlexFetch {ff} must beat BlueFS {bluefs}");
    assert!(ff < wnic && ff < disk, "FlexFetch must win outright");
    assert!(
        wnic < disk,
        "WNIC-only {wnic} must beat Disk-only {disk} at 0 ms"
    );
    assert!(
        disk > bluefs,
        "interactive reads make Disk-only the worst fixed scheme"
    );
}

#[test]
fn fig3_wnic_only_rises_toward_disk_only_with_latency() {
    let s = Scenario::thunderbird(42).unwrap();
    let lo = run(&s, PolicyKind::WnicOnly, SimConfig::default());
    let hi = run(
        &s,
        PolicyKind::WnicOnly,
        SimConfig::default().with_wnic_latency(Dur::from_millis(30)),
    );
    let disk = run(&s, PolicyKind::DiskOnly, SimConfig::default());
    assert!(hi > lo, "latency must cost energy");
    // The gap to Disk-only must shrink by at least a third over the sweep.
    let gap_lo = disk.get() - lo.get();
    let gap_hi = disk.get() - hi.get();
    assert!(
        gap_hi < gap_lo * 0.67,
        "WNIC-only must close on Disk-only: gap {gap_lo:.0} -> {gap_hi:.0}"
    );
}

// ---------------------------------------------------------------- Fig 4

#[test]
fn fig4_free_riding_beats_static() {
    let s = Scenario::grep_make_xmms(42).unwrap();
    let cfg = SimConfig::default();
    let ff = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg.clone());
    let stat = run(
        &s,
        PolicyKind::flexfetch_static(s.profile.clone()),
        cfg.clone(),
    );
    let disk = run(&s, PolicyKind::DiskOnly, cfg);
    // §3.3.4: with xmms pinning the disk awake, adaptive FlexFetch rides
    // it (≈ Disk-only) while the static variant wastes the WNIC.
    assert!(
        ff.get() < stat.get() * 0.85,
        "free riding must save ≥15%: {ff} vs static {stat}"
    );
    assert!(
        (ff.get() - disk.get()).abs() / disk.get() < 0.05,
        "free-riding FlexFetch {ff} must track Disk-only {disk}"
    );
}

#[test]
fn fig4_curves_merge_at_low_bandwidth() {
    let s = Scenario::grep_make_xmms(42).unwrap();
    let cfg = SimConfig::default().with_wnic_bandwidth_mbps(1.0);
    let ff = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg.clone());
    let stat = run(&s, PolicyKind::flexfetch_static(s.profile.clone()), cfg);
    // §3.3.4/Fig 4(b): when the link is slow both variants choose the
    // disk and the curves merge.
    assert!(
        (ff.get() - stat.get()).abs() / ff.get() < 0.05,
        "curves must merge at 1 Mbps: {ff} vs {stat}"
    );
}

// ---------------------------------------------------------------- Fig 5

#[test]
fn fig5_invalid_profile_corrected_after_one_stage() {
    let s = Scenario::acroread_invalid(42).unwrap();
    let cfg = SimConfig::default().with_wnic_latency(Dur::from_millis(10));
    let ff = run(&s, PolicyKind::flexfetch(s.profile.clone()), cfg.clone());
    let stat = run(
        &s,
        PolicyKind::flexfetch_static(s.profile.clone()),
        cfg.clone(),
    );
    let bluefs = run(&s, PolicyKind::BlueFs, cfg);
    // §3.3.5 at 10 ms: FlexFetch ~36 % below FlexFetch-static but ~15 %
    // above BlueFS (one stage is wasted probing the stale profile).
    assert!(
        ff.get() < stat.get() * 0.80,
        "audit must save ≥20% over static: {ff} vs {stat}"
    );
    assert!(
        ff > bluefs,
        "one wasted stage must cost something: {ff} vs {bluefs}"
    );
    assert!(
        ff.get() < bluefs.get() * 1.30,
        "but no more than ~one stage's worth: {ff} vs {bluefs}"
    );
}

#[test]
fn extension_mobility_adaptation_beats_static() {
    // Mid-run degradation 11 -> 1 Mbps: adaptive FlexFetch must flip to
    // the disk at a stage boundary and beat both its static variant and
    // WNIC-only.
    let s = Scenario::mplayer(42).unwrap();
    let cfg = || {
        s.configure(SimConfig::default())
            .with_bandwidth_change(Dur::from_secs(120), 1.0)
    };
    let ff = Simulation::new(cfg(), &s.trace)
        .policy(PolicyKind::flexfetch(s.profile.clone()))
        .run()
        .unwrap();
    let stat = run(&s, PolicyKind::flexfetch_static(s.profile.clone()), cfg());
    let wnic = run(&s, PolicyKind::WnicOnly, cfg());
    assert!(
        ff.decisions.iter().any(|(_, _, why)| *why == "audit:flip"),
        "no adaptation recorded: {:?}",
        ff.decisions
    );
    assert!(ff.total_energy().get() < stat.get());
    assert!(ff.total_energy().get() < wnic.get() * 0.9);
}

#[test]
fn fig5_decision_flips_exactly_at_first_stage_boundary() {
    let s = Scenario::acroread_invalid(42).unwrap();
    let report = Simulation::new(s.configure(SimConfig::default()), &s.trace)
        .policy(PolicyKind::flexfetch(s.profile.clone()))
        .run()
        .unwrap();
    let flips: Vec<_> = report
        .decisions
        .iter()
        .filter(|(_, _, why)| *why == "audit:flip")
        .collect();
    assert!(
        !flips.is_empty(),
        "the stale profile must trigger an audit flip"
    );
    assert_eq!(
        flips[0].0.as_micros(),
        40_000_000,
        "correction lands exactly at the first 40 s stage boundary"
    );
}
