//! End-to-end pipeline tests: generation → persistence → profiling →
//! simulation → recorded profile → next run, exercising the full stack
//! the way a deployment would.

use flexfetch::base::{Bytes, Dur};
use flexfetch::prelude::*;
use flexfetch::trace::strace;

fn small_make() -> Make {
    Make {
        units: 25,
        headers: 50,
        misc: 4,
        input_bytes: 2_500_000,
        ..Default::default()
    }
}

#[test]
fn full_artefact_round_trip_drives_identical_simulation() {
    let trace = small_make().build(11);

    // Persist + reload the trace through the strace text format.
    let text = strace::to_string(&trace);
    let reloaded = strace::from_str(&text).unwrap();
    assert_eq!(trace, reloaded);

    // Persist + reload the profile through JSON.
    let profile = Profiler::standard().profile(&small_make().build(12));
    let json = profile.to_json();
    let profile2 = Profile::from_json(&json).unwrap();
    assert_eq!(profile, profile2);

    // Simulations from originals and from reloaded artefacts agree
    // bit-for-bit.
    let a = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch(profile))
        .run()
        .unwrap();
    let b = Simulation::new(SimConfig::default(), &reloaded)
        .policy(PolicyKind::flexfetch(profile2))
        .run()
        .unwrap();
    assert_eq!(a.total_energy(), b.total_energy());
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.disk_requests, b.disk_requests);
}

#[test]
fn recorded_profile_feeds_the_next_run() {
    let run1_trace = small_make().build(21);
    // First-ever run: empty profile.
    let run1 = Simulation::new(SimConfig::default(), &run1_trace)
        .policy(PolicyKind::flexfetch(Profile::empty("make")))
        .run()
        .unwrap();
    let recorded = run1
        .recorded_profile
        .clone()
        .expect("FlexFetch records a profile");
    assert!(!recorded.is_empty());
    // The recorded profile covers the run's I/O (cache hits included —
    // §2.1 records system calls, not device traffic).
    assert_eq!(recorded.total_bytes(), run1_trace.total_bytes());

    // Second run of the "same program": the recorded profile now steers.
    let run2_trace = small_make().build(22);
    let run2 = Simulation::new(SimConfig::default(), &run2_trace)
        .policy(PolicyKind::flexfetch(recorded))
        .run()
        .unwrap();
    // With history, the second run must not be substantially worse than
    // the blind first run (scaled per-second — traces differ slightly).
    let rate1 = run1.total_energy().get() / run1.exec_time.as_secs_f64();
    let rate2 = run2.total_energy().get() / run2.exec_time.as_secs_f64();
    assert!(
        rate2 <= rate1 * 1.10,
        "history must not hurt: {rate1:.3} W (blind) vs {rate2:.3} W (informed)"
    );
}

#[test]
fn concurrent_programs_merge_profiles() {
    // §2.3.3: concurrently running programs form an aggregate profile.
    let a = Profiler::standard().profile(&small_make().build(31));
    let xt = Xmms {
        play_limit: Some(Dur::from_secs(60)),
        ..Default::default()
    }
    .build(31);
    let b = Profiler::standard().profile(&xt);
    let merged = a.merge_concurrent(&b);
    assert_eq!(merged.len(), a.len() + b.len());
    assert_eq!(merged.total_bytes(), a.total_bytes() + b.total_bytes());
    // Bursts stay time-ordered after the merge.
    for w in merged.bursts.windows(2) {
        assert!(w[0].burst.start <= w[1].burst.start);
    }
}

#[test]
fn concurrent_profiled_programs_share_flexfetch() {
    // §2.3.3: "When multiple programs concurrently issue I/O requests,
    // FlexFetch merges these programs' profiles and forms evaluation
    // stages on the aggregate profile." Two profiled programs run
    // concurrently; FlexFetch drives both from the merged profile.
    let make = small_make();
    let xmms = Xmms {
        play_limit: Some(Dur::from_secs(90)),
        ..Default::default()
    };

    let trace = make.build(61).merge(&xmms.build(61)).unwrap();
    let p_make = Profiler::standard().profile(&make.build(62));
    let p_xmms = Profiler::standard().profile(&xmms.build(62));
    let aggregate = p_make.merge_concurrent(&p_xmms);

    let merged_run = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch(aggregate))
        .run()
        .unwrap();
    assert_eq!(merged_run.app_requests, trace.len() as u64);
    assert!(merged_run.total_energy().get() > 0.0);

    // The aggregate profile must not be worse than flying blind.
    let blind = Simulation::new(SimConfig::default(), &trace)
        .policy(PolicyKind::flexfetch(Profile::empty("both")))
        .run()
        .unwrap();
    assert!(
        merged_run.total_energy().get() <= blind.total_energy().get() * 1.05,
        "aggregate profile {} vs blind {}",
        merged_run.total_energy(),
        blind.total_energy()
    );
}

#[test]
fn stage_boundaries_report_progress() {
    let xt = Xmms {
        play_limit: Some(Dur::from_secs(200)),
        ..Default::default()
    }
    .build(5);
    let report = Simulation::new(SimConfig::default(), &xt)
        .policy(PolicyKind::flexfetch(Profile::empty("xmms")))
        .run()
        .unwrap();
    // ~200 s with 40 s stages → ≥4 boundaries.
    assert!(report.stages >= 4, "stages {}", report.stages);
    assert!(report.exec_time >= Dur::from_secs(190));
}

#[test]
fn energy_balance_across_policies_is_sane() {
    // Whatever the policy, total energy must cover at least the cheapest
    // conceivable floor (both devices at their lowest power for the whole
    // run) and no more than both devices red-lined.
    let trace = small_make().build(41);
    for kind in [
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
        PolicyKind::BlueFs,
        PolicyKind::flexfetch(Profile::empty("make")),
    ] {
        let r = Simulation::new(SimConfig::default(), &trace)
            .policy(kind)
            .run()
            .unwrap();
        let secs = r.exec_time.as_secs_f64();
        let floor = (0.15 + 0.39) * secs * 0.9;
        let ceiling = (2.0 + 3.69) * secs + 1000.0;
        let e = r.total_energy().get();
        assert!(e > floor, "{}: {e} below physical floor {floor}", r.policy);
        assert!(
            e < ceiling,
            "{}: {e} above physical ceiling {ceiling}",
            r.policy
        );
        assert!(
            r.exec_time >= Dur::from_secs(30),
            "{}: replay too fast",
            r.policy
        );
    }
}

#[test]
fn cache_effects_shrink_device_traffic_not_profile() {
    // Re-reading the same files: profile sees all syscalls, devices see
    // only the cold pass.
    let grep = Grep {
        files: 25,
        total_bytes: 1_000_000,
        ..Default::default()
    };
    let once = grep.build(51);
    let twice = once.concat(&grep.build(51), Dur::from_secs(1)).unwrap();
    let r = Simulation::new(SimConfig::default(), &twice)
        .policy(PolicyKind::flexfetch(Profile::empty("grep")))
        .run()
        .unwrap();
    let profile = r.recorded_profile.unwrap();
    assert_eq!(
        profile.total_bytes(),
        Bytes(2_000_000),
        "profile is device-independent"
    );
    let fetched = r.disk_bytes + r.wnic_bytes;
    assert!(
        fetched.get() < 1_700_000,
        "cache must absorb most of the second pass, fetched {fetched}"
    );
}
