//! Offline, std-only subset of the `criterion` benchmarking API.
//!
//! Provides just enough surface for the `ff-bench` benches to compile
//! and produce useful wall-clock numbers: `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. No statistics engine —
//! each benchmark runs a warm-up, then a fixed measurement window, and
//! prints mean time per iteration.

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave the
/// same here (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters.max(1) as u32
        };
        println!("{name:<44} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Open a named group of related benchmarks. The group id prefixes
    /// each benchmark name in the output.
    pub fn benchmark_group(&mut self, id: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            id: id.to_owned(),
        }
    }
}

/// A named set of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`. `sample_size` is accepted for API
/// compatibility but ignored — this shim measures a fixed wall-clock
/// window rather than a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    id: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (no statistics engine here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Register and immediately run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group. A no-op: benchmarks run eagerly.
    pub fn finish(self) {}
}

/// Runs the measured closure repeatedly.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` with no per-iteration setup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Time `routine` with an untimed `setup` producing each iteration's
    /// input.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let window_start = Instant::now();
        while window_start.elapsed() < self.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
        }
        self.elapsed = timed;
        self.iters = iters;
    }
}

/// `criterion_group!(name, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
