//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::TestRng;

/// Length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Exclusive maximum length.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
