//! Value-generation strategies.

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
);

/// String strategies from a regex-like pattern, as upstream `proptest`
/// provides for `&str`. Supported subset: one character class
/// (`[a-z_.]`, with `-` ranges and literal members) or a literal prefix,
/// followed by an optional `{n}`, `{m,n}`, `*` (0..=8) or `+` (1..=8)
/// repetition. Covers the patterns the workspace's suites use, e.g.
/// `"[ -~]{0,80}"` for printable-ASCII fuzz lines.
impl Strategy for &str {
    type Value = String;

    fn pick(&self, rng: &mut TestRng) -> String {
        if !self.starts_with('[') {
            // A literal pattern generates itself.
            return (*self).to_owned();
        }
        let (class, rest) = parse_class(self);
        let (min, max) = parse_repeat(rest);
        let n = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        let mut out = String::with_capacity(n);
        for _ in 0..n {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
        out
    }
}

/// The alphabet of the leading class (or literal), plus the unparsed rest.
fn parse_class(pat: &str) -> (Vec<char>, &str) {
    let mut chars = pat.char_indices();
    match chars.next() {
        Some((_, '[')) => {
            let close = pat.find(']').unwrap_or_else(|| {
                panic!("unterminated character class in strategy pattern {pat:?}")
            });
            let body: Vec<char> = pat[1..close].chars().collect();
            let mut set = Vec::new();
            let mut i = 0;
            while i < body.len() {
                if i + 2 < body.len() && body[i + 1] == '-' {
                    let (lo, hi) = (body[i], body[i + 2]);
                    assert!(lo <= hi, "inverted range in pattern {pat:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    set.push(body[i]);
                    i += 1;
                }
            }
            assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
            (set, &pat[close + 1..])
        }
        _ => unreachable!("parse_class called on a non-class pattern"),
    }
}

/// Repetition bounds from a `{n}` / `{m,n}` / `*` / `+` suffix.
fn parse_repeat(rest: &str) -> (usize, usize) {
    match rest.chars().next() {
        None => (1, 1),
        Some('*') => (0, 8),
        Some('+') => (1, 8),
        Some('{') => {
            let close = rest
                .find('}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {rest:?}"));
            let body = &rest[1..close];
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repetition count {s:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => (parse(body), parse(body)),
            }
        }
        Some(c) => panic!("unsupported pattern suffix {c:?}"),
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
