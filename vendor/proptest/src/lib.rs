//! Offline, std-only subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of `proptest` its test suites use: the [`proptest!`] macro,
//! `prop_assert*` macros, range/tuple/vec/map strategies and
//! `any::<T>()`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   the panic message; it is not minimised.
//! * **Deterministic seeding.** Each test's input stream is derived from
//!   the test's name, so a failure reproduces on every run and on every
//!   machine — the same reproducibility contract as the simulator
//!   itself. Set `PROPTEST_SEED` to explore a different stream.
//! * Default case count is 64 (`ProptestConfig::with_cases` overrides).

pub mod collection;
pub mod config;
pub mod strategy;

pub mod prelude {
    //! Everything the test suites import.
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use config::ProptestConfig;
pub use strategy::{any, Just, Strategy};

/// The generator driving strategies: xoshiro256++ (matches the vendored
/// `rand` shim, but kept self-contained so `proptest` has no deps).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic stream for a named test. `PROPTEST_SEED` (a u64)
    /// perturbs every stream at once for exploratory runs.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, mixed with the optional env seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(17);
            }
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// The per-test harness: runs `cases` generated inputs through `body`.
/// Used by the [`proptest!`] macro expansion; not public API upstream,
/// but handy for direct calls.
pub fn run_cases<F: FnMut(&mut TestRng, u32)>(name: &str, cases: u32, mut body: F) {
    let mut rng = TestRng::for_test(name);
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// `proptest! { #[test] fn name(x in strategy, ...) { body } ... }`
///
/// Each generated function runs `config.cases` iterations, drawing each
/// argument from its strategy. Failures panic with the case number; the
/// stream is deterministic per test name, so a failing case replays.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng, case| {
                    let ( $($arg,)* ) =
                        ( $( $crate::Strategy::pick(&($strat), rng) ,)* );
                    let run = || { $body };
                    if let Err(e) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case} of {} failed (deterministic seed; \
                             rerun reproduces it)",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(e);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assume!(cond)` — discard the current case when the generated
/// inputs don't satisfy a precondition. Upstream resamples; this shim
/// simply skips the case (the case budget is not refilled), which keeps
/// the harness panic-free.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {x}")`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!("prop_assert_eq failed: {a:?} != {b:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            panic!("prop_assert_eq failed: {a:?} != {b:?}: {}", format!($($fmt)+));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            panic!("prop_assert_ne failed: both sides are {a:?}");
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("alpha");
        let mut b = crate::TestRng::for_test("alpha");
        let mut c = crate::TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    proptest! {
        #[test]
        fn macro_draws_in_range(x in 3u64..17, f in 0.0f64..1.0, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            let _ = flag;
        }

        #[test]
        fn tuples_and_vec_compose(
            (a, b) in (0u32..10, 0u32..10),
            v in crate::collection::vec(0u8..4, 0..6),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in 0u64..1000) {
            let _ = x;
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (1u64..5).prop_map(|x| x * 10);
        let mut rng = crate::TestRng::for_test("map");
        for _ in 0..50 {
            let v = s.pick(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }
}
