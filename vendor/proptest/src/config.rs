//! Runner configuration (`ProptestConfig` subset).

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full-stack property
        // suites fast while still exploring a useful slice of the space.
        ProptestConfig { cases: 64 }
    }
}
