//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Words buffered per refill: four consecutive ChaCha blocks.
const BUF_WORDS: usize = 64;

/// ChaCha constants: `"expand 32-byte k"` as little-endian u32 words.
const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha12 = 6 double rounds.
const DOUBLE_ROUNDS: usize = 6;

/// The workspace's deterministic generator: **ChaCha12**, bit-exact with
/// upstream `rand` 0.8's `StdRng`.
///
/// Every recorded experiment and golden test value in the repository was
/// pinned against upstream streams, so this shim reproduces them exactly:
///
/// * the ChaCha12 block function over the standard state layout
///   (4 constant words, 8 key words, 64-bit block counter, 64-bit zero
///   stream id);
/// * the `BlockRng` buffering discipline (64-word buffer refilled four
///   blocks at a time, with upstream's word-straddling `next_u64` rule);
/// * `seed_from_u64` via `rand_core`'s PCG32 seed-expansion (a trait
///   default in this crate's `SeedableRng`).
///
/// The known-answer test at the bottom of this module is upstream's own
/// `StdRng` value-stability vector.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha key: state words 4..12 (seed bytes as little-endian u32s).
    key: [u32; 8],
    /// 64-bit block counter: state words 12..13. Counts single blocks;
    /// one refill emits blocks `counter .. counter + 4`.
    counter: u64,
    /// Output of the last refill: four consecutive blocks, word order.
    results: [u32; BUF_WORDS],
    /// Read cursor into `results`, in words. `BUF_WORDS` means empty.
    index: usize,
}

#[inline(always)]
fn quarter_round(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(16);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(12);
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(8);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(7);
}

/// One ChaCha12 block: 16 output words for block number `counter`.
fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    let mut init = [0u32; 16];
    init[..4].copy_from_slice(&CHACHA_CONST);
    init[4..12].copy_from_slice(key);
    init[12] = counter as u32;
    init[13] = (counter >> 32) as u32;
    // Words 14..16 are the stream id, always zero for `StdRng`.

    let mut w = init;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for (o, (wi, ii)) in out.iter_mut().zip(w.iter().zip(init.iter())) {
        *o = wi.wrapping_add(*ii);
    }
}

impl StdRng {
    /// Refill the buffer with the next four blocks and advance the
    /// counter, leaving the cursor at `index`.
    fn generate_and_set(&mut self, index: usize) {
        for blk in 0..4u64 {
            let start = blk as usize * 16;
            chacha12_block(
                &self.key,
                self.counter.wrapping_add(blk),
                &mut self.results[start..start + 16],
            );
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = index;
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    // Upstream `BlockRng` reads two buffered words little-endian-wise;
    // when only one word remains it pairs it with the first word of the
    // next refill rather than discarding it.
    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index = index + 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read = 0;
        while read < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            while self.index < BUF_WORDS && read < dest.len() {
                let word = self.results[self.index].to_le_bytes();
                let n = (dest.len() - read).min(4);
                dest[read..read + n].copy_from_slice(&word[..n]);
                // A partial trailing chunk still consumes the whole word,
                // exactly like upstream's `fill_via_u32_chunks`.
                self.index += 1;
                read += n;
            }
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            *k = u32::from_le_bytes(b);
        }
        StdRng {
            key,
            counter: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

/// Alias kept for API compatibility (`rand::rngs::SmallRng`). Upstream's
/// `SmallRng` is a different generator; nothing in the workspace relies
/// on its exact stream.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    /// Upstream `rand` 0.8's own `StdRng` value-stability test: the
    /// second value chains through `from_rng`, which also pins
    /// `fill_bytes` and the intra-buffer word order.
    #[test]
    fn upstream_value_stability() {
        #[rustfmt::skip]
        let seed = [1, 0, 0, 0, 23, 0, 0, 0, 200, 1, 0, 0, 210, 30, 0, 0,
                    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let target = [10719222850664546238, 14064965282130556830];

        let mut rng0 = StdRng::from_seed(seed);
        let x0 = rng0.next_u64();
        let mut rng1 = match StdRng::from_rng(rng0) {
            Ok(r) => r,
            Err(e) => match e {},
        };
        let x1 = rng1.next_u64();
        assert_eq!([x0, x1], target);
    }

    /// `next_u64` straddling the end of the buffer must pair the last
    /// word of one refill with the first word of the next.
    #[test]
    fn next_u64_straddles_refills() {
        let mut words = StdRng::seed_from_u64(9);
        let w: Vec<u32> = (0..BUF_WORDS + 1).map(|_| words.next_u32()).collect();

        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..BUF_WORDS - 1 {
            rng.next_u32();
        }
        let straddled = rng.next_u64();
        assert_eq!(
            straddled,
            (u64::from(w[BUF_WORDS]) << 32) | u64::from(w[BUF_WORDS - 1])
        );
        // The cursor sits at word 1 of the new buffer afterwards.
        assert_eq!(rng.next_u32(), {
            let mut again = StdRng::seed_from_u64(9);
            for _ in 0..BUF_WORDS + 1 {
                again.next_u32();
            }
            again.next_u32()
        });
    }

    #[test]
    fn next_u32_and_u64_read_the_same_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let lo = a.next_u32();
        let hi = a.next_u32();
        assert_eq!(b.next_u64(), (u64::from(hi) << 32) | u64::from(lo));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = StdRng::seed_from_u64(3);
        let mut bytes = [0u8; 13];
        a.fill_bytes(&mut bytes);

        let mut b = StdRng::seed_from_u64(3);
        let mut expect = Vec::new();
        for _ in 0..4 {
            expect.extend_from_slice(&b.next_u32().to_le_bytes());
        }
        assert_eq!(&bytes[..], &expect[..13]);
        // The partial fourth word was consumed whole: both streams now
        // agree on the next word.
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn different_u64_seeds_diverge() {
        let a: Vec<u64> = (0..4)
            .scan(StdRng::seed_from_u64(1), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..4)
            .scan(StdRng::seed_from_u64(2), |r, _| Some(r.next_u64()))
            .collect();
        assert_ne!(a, b);
    }
}
