//! Slice sampling helpers (`rand::seq` subset), stream-compatible with
//! upstream `rand` 0.8: the `u32` fast path in `gen_index`, upstream's
//! Fisher–Yates direction in `shuffle`, and `rand::seq::index::sample`'s
//! algorithm choice (Floyd's / in-place / rejection) in
//! `choose_multiple`.

use crate::{Rng, RngCore};

/// Uniform index below `ubound`; upstream samples `u32` whenever the
/// bound fits, which halves the randomness consumed on 64-bit targets.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements (fewer if the slice is shorter), in
    /// random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Invariant: elements with index > i have been locked in place.
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        SliceChooseIter {
            slice: self,
            indices: index_sample(rng, self.len(), amount),
            pos: 0,
        }
    }
}

/// `rand::seq::index::sample`: choose between Floyd's algorithm, partial
/// in-place Fisher–Yates, and set-based rejection, using upstream's
/// benchmark-derived thresholds. The workspace's only caller (the `make`
/// workload, `amount <= 9`) always lands on Floyd's.
fn index_sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<u32> {
    assert!(amount <= length, "cannot sample more items than exist");
    assert!(
        length <= u32::MAX as usize,
        "slices longer than u32::MAX are not supported by this shim"
    );
    let (length, amount) = (length as u32, amount as u32);
    if amount < 163 {
        const C: [[f32; 2]; 2] = [[1.6, 8.45 / 45.0], [10.0, 70.0 / 9.0]];
        let j = if length < 500_000 { 0 } else { 1 };
        // Short-cut: when amount < 12, Floyd's is always faster.
        if amount > 11 && (length as f32) < C[0][j] * amount as f32 {
            sample_inplace(rng, length, amount)
        } else {
            sample_floyd(rng, length, amount)
        }
    } else {
        const C: [f32; 2] = [270.0, 330.0 / 9.0];
        let j = if length < 500_000 { 0 } else { 1 };
        if (length as f32) < C[j] * amount as f32 {
            sample_inplace(rng, length, amount)
        } else {
            sample_rejection(rng, length, amount)
        }
    }
}

/// Floyd's combination algorithm; the `amount < 50` variant inserts at
/// the collision position so the result is already fully shuffled.
fn sample_floyd<R: RngCore + ?Sized>(rng: &mut R, length: u32, amount: u32) -> Vec<u32> {
    debug_assert!(amount <= length);
    let floyd_shuffle = amount < 50;
    let mut indices = Vec::with_capacity(amount as usize);
    for j in length - amount..length {
        let t: u32 = rng.gen_range(0..=j);
        if floyd_shuffle {
            if let Some(pos) = indices.iter().position(|&x| x == t) {
                indices.insert(pos, j);
                continue;
            }
        } else if indices.contains(&t) {
            indices.push(j);
            continue;
        }
        indices.push(t);
    }
    if !floyd_shuffle {
        for i in (1..amount).rev() {
            let t: u32 = rng.gen_range(0..=i);
            indices.swap(i as usize, t as usize);
        }
    }
    indices
}

/// Partial in-place Fisher–Yates over `0..length`.
fn sample_inplace<R: RngCore + ?Sized>(rng: &mut R, length: u32, amount: u32) -> Vec<u32> {
    debug_assert!(amount <= length);
    let mut indices: Vec<u32> = (0..length).collect();
    for i in 0..amount {
        let j: u32 = rng.gen_range(i..length);
        indices.swap(i as usize, j as usize);
    }
    indices.truncate(amount as usize);
    indices
}

/// Rejection sampling with a collision set. Upstream draws from a
/// constructed `Uniform`, whose zone is the exact modulus (unlike
/// `sample_single`'s leading-zeros approximation).
fn sample_rejection<R: RngCore + ?Sized>(rng: &mut R, length: u32, amount: u32) -> Vec<u32> {
    debug_assert!(amount < length);
    let zone = u32::MAX - (u32::MAX - length + 1) % length;
    let draw = |rng: &mut R| loop {
        let (hi, lo) = {
            let t = u64::from(rng.next_u32()) * u64::from(length);
            ((t >> 32) as u32, t as u32)
        };
        if lo <= zone {
            return hi;
        }
    };
    let mut cache = std::collections::HashSet::with_capacity(amount as usize);
    let mut indices = Vec::with_capacity(amount as usize);
    for _ in 0..amount {
        let mut pos = draw(rng);
        while !cache.insert(pos) {
            pos = draw(rng);
        }
        indices.push(pos);
    }
    indices
}

/// Iterator over elements picked by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: Vec<u32>,
    pos: usize,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let i = *self.indices.get(self.pos)? as usize;
        self.pos += 1;
        self.slice.get(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.indices.len() - self.pos;
        (left, Some(left))
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "100 elements staying put is astronomically unlikely"
        );
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "duplicates in sample");
        // Requesting more than available returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 50).count(), 20);
    }

    #[test]
    fn sample_algorithms_produce_valid_samples() {
        let mut rng = StdRng::seed_from_u64(14);
        for (length, amount) in [(1300u32, 9u32), (40, 20), (100_000, 200)] {
            let s = index_sample(&mut rng, length as usize, amount as usize);
            assert_eq!(s.len(), amount as usize);
            let mut u = s.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), amount as usize);
            assert!(s.iter().all(|&i| i < length));
        }
    }

    /// Floyd's with `amount < 12` must consume exactly one `next_u32`
    /// per accepted draw (inclusive u32 ranges sample u32-wide).
    #[test]
    fn floyd_draw_width() {
        let mut a = StdRng::seed_from_u64(15);
        let v: Vec<u32> = (0..1024).collect();
        // 1024 and 1023..1024+0 ranges aren't powers of two in general;
        // just verify determinism against a replay.
        let p1: Vec<u32> = v.choose_multiple(&mut a, 6).copied().collect();
        let mut b = StdRng::seed_from_u64(15);
        let p2: Vec<u32> = v.choose_multiple(&mut b, 6).copied().collect();
        assert_eq!(p1, p2);
    }
}
