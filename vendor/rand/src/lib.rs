//! Offline, std-only subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: the seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`].
//!
//! **Streams are bit-exact with upstream `rand` 0.8 / `rand_core` 0.6 /
//! `rand_chacha` 0.3** for every code path the workspace exercises:
//!
//! * `StdRng` is ChaCha12 behind upstream's `BlockRng` buffering;
//! * [`SeedableRng::seed_from_u64`] is the PCG32 seed-expansion from
//!   `rand_core`;
//! * `gen_range` over integers uses upstream's widening-multiply
//!   rejection sampler with the per-type sample widths (`u8`/`u16`/`u32`
//!   draw one `next_u32`; 64-bit types draw one `next_u64`);
//! * `gen_range` over floats uses the `[1, 2)` mantissa-fill method;
//! * `gen` of standard types and `gen_bool` reproduce upstream's
//!   `Standard` and `Bernoulli` distributions;
//! * `seq::SliceRandom` reproduces upstream's `gen_index` fast path and
//!   `rand::seq::index::sample` algorithm choice.
//!
//! Every recorded experiment and golden test value in the repository is
//! pinned to these streams.

pub mod rngs;
pub mod seq;

/// Low-level entropy source, mirroring `rand_core::RngCore`.
///
/// Unlike upstream there are no default implementations: the only
/// generator in the workspace is `StdRng`, whose buffered `next_u32` /
/// `next_u64` must each follow upstream's `BlockRng` rules exactly.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through PCG32, exactly as
    /// `rand_core` 0.6 does (its documented, value-stable procedure).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            // Advance the state first, to get away from low-Hamming-weight
            // input values, then apply the PCG output permutation.
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        Self::from_seed(seed)
    }

    /// Seed a new generator from an existing one. Infallible here (no OS
    /// entropy is ever involved); the `Result` keeps upstream's call
    /// shape (`from_rng(..).unwrap()`) working.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, core::convert::Infallible> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a standard type (uniform over its range, or
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`; upstream's
    /// fixed-point `Bernoulli` distribution.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            // Upstream's ALWAYS_TRUE sentinel: returns without drawing.
            return true;
        }
        // 2^64 as f64; (p * SCALE) as u64 is exact for p < 1.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

// Upstream draws small ints from one `next_u32` and 64-bit ints from one
// `next_u64`; signed types reuse the unsigned stream bit-for-bit.
macro_rules! standard_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_from_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_from_u64!(u64, usize, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Little-endian order: low word first, matching upstream.
        let x = u128::from(rng.next_u64());
        let y = u128::from(rng.next_u64());
        (y << 64) | x
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream sign-tests the most significant bit of one `next_u32`.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: multiply-based method, 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`: multiply-based method, 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply: `(hi, lo)` halves of the 64-bit product.
#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = u64::from(a) * u64::from(b);
    ((t >> 32) as u32, t as u32)
}

/// Widening multiply: `(hi, lo)` halves of the 128-bit product.
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

// Upstream `UniformInt::sample_single_inclusive`, monomorphised per type.
//
// `$ty` is the user-facing type, `$unsigned` its unsigned twin, `$u_large`
// the sample width (u32 for types up to 32 bits, u64 above), `$wmul` the
// matching widening multiply and `$next` the RngCore source. The `zone`
// rule also follows upstream: exact modulus for 8/16-bit types, the
// leading-zeros approximation for wider ones.
macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wmul:ident, $next:ident) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                // Wrapping arithmetic in the narrow type: the full span
                // wraps to 0, which means "every value is acceptable".
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    return rng.$next() as $ty;
                }
                let zone = if (<$unsigned>::MAX as u32) <= u16::MAX as u32 {
                    // An exact modulus is faster for 8/16-bit ranges.
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    // Conservative but fast approximation.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int!(u8, u8, u32, wmul32, next_u32);
uniform_int!(u16, u16, u32, wmul32, next_u32);
uniform_int!(u32, u32, u32, wmul32, next_u32);
uniform_int!(u64, u64, u64, wmul64, next_u64);
uniform_int!(usize, usize, u64, wmul64, next_u64);
uniform_int!(i8, u8, u32, wmul32, next_u32);
uniform_int!(i16, u16, u32, wmul32, next_u32);
uniform_int!(i32, u32, u32, wmul32, next_u32);
uniform_int!(i64, u64, u64, wmul64, next_u64);
uniform_int!(isize, usize, u64, wmul64, next_u64);

// Upstream `UniformFloat::sample_single`: draw a mantissa into `[1, 2)`,
// then `res = (value - 1) * scale + low` (multiply before add — the
// rounding order matters for bit-exactness). A draw landing on `high`
// retries.
macro_rules! uniform_float {
    ($ty:ty, $next:ident, $bits_to_discard:expr, $exp_one:expr) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    let value1_2 = <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exp_one);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                // Largest value the open sampler's `value1_2 - 1.0` can
                // produce; dividing by it stretches the scale so `high`
                // itself is reachable.
                let max_unit = <$ty>::from_bits((!0 >> $bits_to_discard) | $exp_one) - 1.0;
                let scale = (high - low) / max_unit;
                loop {
                    let value1_2 = <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exp_one);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    };
}

uniform_float!(f64, next_u64, 12u32, 1023u64 << 52);
uniform_float!(f32, next_u32, 9u32, 127u32 << 23);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let s: usize = rng.gen_range(0..=3);
            assert!(s <= 3);
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    /// Small int types sample `u32`-wide, 64-bit types `u64`-wide, with
    /// the widening-multiply acceptance rule. Replaying the algorithm by
    /// hand against the raw word stream pins both the draw width and the
    /// rejection behaviour.
    #[test]
    fn sample_widths_match_upstream() {
        let mut a = StdRng::seed_from_u64(77);
        let got: u32 = a.gen_range(0..8);
        let mut raw = StdRng::seed_from_u64(77);
        let (expect, zone) = {
            let range = 8u32;
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v = raw.next_u32();
                let t = u64::from(v) * u64::from(range);
                if (t as u32) <= zone {
                    break ((t >> 32) as u32, zone);
                }
            }
        };
        assert_eq!(got, expect, "zone {zone:#x}");
        // Both replays consumed the same number of words.
        assert_eq!(a.next_u64(), raw.next_u64());

        let mut c = StdRng::seed_from_u64(78);
        let got64: u64 = c.gen_range(0..=9);
        let mut raw64 = StdRng::seed_from_u64(78);
        let expect64 = {
            let range = 10u64;
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v = raw64.next_u64();
                let t = u128::from(v) * u128::from(range);
                if (t as u64) <= zone {
                    break (t >> 64) as u64;
                }
            }
        };
        assert_eq!(got64, expect64);
        assert_eq!(c.next_u64(), raw64.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
        // p = 1.0 consumes no randomness (upstream's ALWAYS_TRUE path).
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let _ = a.gen_bool(1.0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
