//! Offline, std-only subset of `crossbeam`: scoped threads.
//!
//! `crossbeam::scope` predates `std::thread::scope`; this shim maps the
//! crossbeam API onto the std implementation. The visible differences
//! from upstream are cosmetic: the error payload of a panicked scope is
//! the panic payload itself rather than a collected `Vec`.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    //! Scoped-thread module mirroring `crossbeam::thread`.
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// Result of a scope: `Err` if any unjoined spawned thread panicked.
pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

/// Handle to a scoped worker thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread, returning its result or its panic payload.
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

/// A spawn scope tied to the enclosing `scope` call.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker; the closure receives the scope again so workers
    /// can spawn sub-workers (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be
/// spawned. Returns `Err` with the panic payload if a worker panicked.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_mutate_borrowed_state() {
        let mut slots = vec![0u64; 8];
        let total = AtomicU64::new(0);
        let out = scope(|s| {
            for (i, chunk) in slots.chunks_mut(2).enumerate() {
                let total = &total;
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 2 + j) as u64;
                        total.fetch_add(*slot, Ordering::Relaxed);
                    }
                });
            }
            42
        })
        .expect("no worker panicked");
        assert_eq!(out, 42);
        assert_eq!(slots, (0..8).collect::<Vec<u64>>());
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 7u32);
            h.join().expect("worker ok")
        })
        .expect("scope ok");
        assert_eq!(r, 7);
    }
}
