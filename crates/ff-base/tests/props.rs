//! Property tests for the unit layer: arithmetic laws the whole
//! simulator leans on.

use ff_base::{Bytes, BytesPerSec, Dur, Joules, SimTime, Watts};
use proptest::prelude::*;

// Keep magnitudes within ~30 years of simulated time so additions cannot
// overflow u64 microseconds in any test expression.
const MAX_US: u64 = 1 << 50;

proptest! {
    #[test]
    fn time_addition_is_associative(a in 0..MAX_US, b in 0..MAX_US, c in 0..MAX_US) {
        let t = SimTime(a);
        let (x, y) = (Dur(b), Dur(c));
        prop_assert_eq!((t + x) + y, t + (x + y));
    }

    #[test]
    fn instant_difference_inverts_addition(a in 0..MAX_US, b in 0..MAX_US) {
        let t = SimTime(a);
        let d = Dur(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), Dur::ZERO);
    }

    #[test]
    fn dur_scaling_distributes(a in 0u64..1 << 30, k in 0u64..1000) {
        prop_assert_eq!(Dur(a) * k, Dur(a * k));
        if k > 0 {
            prop_assert!(Dur(a * k) / k == Dur(a));
        }
    }

    #[test]
    fn sum_equals_fold(ds in proptest::collection::vec(0u64..1 << 40, 0..20)) {
        let total: Dur = ds.iter().map(|&d| Dur(d)).sum();
        let fold = ds.iter().fold(Dur::ZERO, |acc, &d| acc + Dur(d));
        prop_assert_eq!(total, fold);
    }

    #[test]
    fn energy_is_linear_in_time(p in 0.0f64..10.0, us in 0u64..1 << 40) {
        let half = Watts(p) * Dur(us / 2);
        let full = Watts(p) * Dur(us);
        // Halving time halves energy (to rounding of the odd microsecond).
        let expect = full.get() / 2.0;
        prop_assert!((half.get() - expect).abs() <= p / 1e6 + 1e-9);
        prop_assert!(full.get() >= 0.0);
    }

    #[test]
    fn relative_saving_bounds(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let s = Joules(a).relative_saving(Joules(b));
        // Saving is ≤ 1 (cannot save more than everything) and negative
        // when the alternative costs more.
        prop_assert!(s <= 1.0);
        if a > 0.0 && b > a {
            prop_assert!(s < 0.0);
        }
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes(bw in 1e3f64..1e9, x in 0u64..1 << 40, y in 0u64..1 << 40) {
        let r = BytesPerSec(bw);
        let (lo, hi) = (x.min(y), x.max(y));
        prop_assert!(r.transfer_time(Bytes(lo)) <= r.transfer_time(Bytes(hi)));
    }

    #[test]
    fn transfer_time_is_antitone_in_bandwidth(n in 1u64..1 << 40, a in 1e3f64..1e9, b in 1e3f64..1e9) {
        let (slow, fast) = (a.min(b), a.max(b));
        prop_assert!(
            BytesPerSec(fast).transfer_time(Bytes(n))
                <= BytesPerSec(slow).transfer_time(Bytes(n))
        );
    }

    #[test]
    fn transfer_never_rounds_to_zero(n in 1u64..1 << 40, bw in 1e3f64..1e9) {
        prop_assert!(BytesPerSec(bw).transfer_time(Bytes(n)) > Dur::ZERO);
    }

    #[test]
    fn pages_cover_bytes(n in 0u64..1 << 40) {
        let pages = Bytes(n).pages();
        prop_assert!(pages * 4096 >= n);
        if n > 0 {
            prop_assert!((pages - 1) * 4096 < n);
        }
    }

    #[test]
    fn split_seed_children_are_distinct(seed in any::<u64>(), a in 0u64..1 << 20, b in 0u64..1 << 20) {
        prop_assume!(a != b);
        prop_assert_ne!(ff_base::split_seed(seed, a), ff_base::split_seed(seed, b));
    }
}
