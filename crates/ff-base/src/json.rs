//! Minimal JSON document model, parser and pretty-printer.
//!
//! The workspace persists exactly one artefact as JSON — the
//! per-application [`Profile`](../../ff_profile/struct.Profile.html) —
//! so a full serde stack is unnecessary (and unavailable in the offline
//! build environment). This module provides:
//!
//! * [`Value`] — an ordered document tree (object keys keep insertion
//!   order, so output is stable across runs),
//! * [`Value::parse`] — a recursive-descent parser that reports the
//!   1-based line of the first error via [`Error::Parse`],
//! * [`Value::to_pretty`] — a 2-space-indented printer whose output
//!   shape matches what `serde_json::to_string_pretty` produced for the
//!   same documents, keeping previously saved profiles loadable.
//!
//! Numbers keep integer/float identity: integers that fit `u64`/`i64`
//! stay exact (µs timestamps and byte counts must not round-trip
//! through `f64`).

use crate::{Error, Result};

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (the common case: timestamps, sizes).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Any number with a fraction or exponent.
    Float(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer value, if this node is a `u64`-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// String contents, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this node is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Pretty-print with 2-space indentation (serde_json style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Print on a single line with no whitespace (serde_json compact
    /// style) — the format used for JSONL event streams, where each
    /// document must occupy exactly one line.
    ///
    /// ```
    /// use ff_base::json::Value;
    ///
    /// let doc = Value::Object(vec![
    ///     ("ev".into(), Value::Str("spin_up".into())),
    ///     ("t".into(), Value::UInt(1_600_000)),
    /// ]);
    /// assert_eq!(doc.to_compact(), r#"{"ev":"spin_up","t":1600000}"#);
    /// ```
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on f64 prints the shortest representation that
        // round-trips, same as serde_json.
        let s = format!("{x}");
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<()> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format!(
                "expected '{}', found '{}'",
                want as char, b as char
            ))),
            None => Err(self.err(format!("expected '{}', found end of input", want as char))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(b) => {
                    return Err(self.err(format!("expected ',' or '}}', found '{}'", b as char)))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(pairs))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                Some(b) => {
                    return Err(self.err(format!("expected ',' or ']', found '{}'", b as char)))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000c}'),
                    Some(b'u') => s.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence; the input
                    // came from a &str so it is valid by construction.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..len {
                        self.bump();
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..start + len]) {
                        s.push_str(chunk);
                    } else {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        // Surrogate pairs: profiles never contain them, but accept them
        // rather than corrupting foreign documents.
        if (0xD800..0xDC00).contains(&code) {
            if self.bump() == Some(b'\\') && self.bump() == Some(b'u') {
                let mut low = 0u32;
                for _ in 0..4 {
                    let b = self
                        .bump()
                        .ok_or_else(|| self.err("truncated \\u escape"))?;
                    let digit = (b as char)
                        .to_digit(16)
                        .ok_or_else(|| self.err("invalid \\u escape"))?;
                    low = low * 16 + digit;
                }
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
                return Err(self.err("unpaired surrogate in \\u escape"));
            }
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::UInt(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX;
        let v = Value::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("line1\nline2\t\"quoted\" \\ slash \u{1F600}".into());
        let text = original.to_pretty();
        assert_eq!(Value::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_forms() {
        assert_eq!(Value::parse(r#""A""#).unwrap(), Value::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            Value::parse(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn pretty_output_round_trips() {
        let doc = Value::Object(vec![
            ("app".into(), Value::Str("grep".into())),
            (
                "bursts".into(),
                Value::Array(vec![Value::Object(vec![
                    ("start".into(), Value::UInt(0)),
                    ("gap".into(), Value::Float(1.5)),
                ])]),
            ),
            ("empty_list".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Value::parse(&text).unwrap(), doc);
        // serde_json-style shape: 2-space indent, `": "` separators.
        assert!(text.starts_with("{\n  \"app\": \"grep\""), "got: {text}");
    }

    #[test]
    fn compact_output_round_trips_and_is_one_line() {
        let doc = Value::Object(vec![
            ("app".into(), Value::Str("grep".into())),
            (
                "runs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("flag".into(), Value::Bool(false)),
        ]);
        let text = doc.to_compact();
        assert!(!text.contains('\n'));
        assert!(!text.contains(' '));
        assert_eq!(Value::parse(&text).unwrap(), doc);
        assert_eq!(
            text,
            r#"{"app":"grep","runs":[1,2.5,null],"empty":[],"flag":false}"#
        );
    }

    #[test]
    fn float_integers_keep_a_decimal_point() {
        assert_eq!(Value::Float(2.0).to_pretty(), "2.0");
        let back = Value::parse("2.0").unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "{\n  \"a\": 1,\n  oops\n}";
        match Value::parse(text) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(Value::parse("{not json").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("1 2").is_err());
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let bomb = "[".repeat(500) + &"]".repeat(500);
        assert!(Value::parse(&bomb).is_err());
    }
}
