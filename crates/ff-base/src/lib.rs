//! # ff-base — foundation types for the FlexFetch simulation stack
//!
//! Shared, dependency-light vocabulary used by every other crate in the
//! workspace:
//!
//! * [`SimTime`] / [`Dur`] — fixed-point microsecond simulation time.
//!   All event ordering in the simulator is integer arithmetic, so a run is
//!   bit-reproducible for a given seed on any platform.
//! * [`Joules`] / [`Watts`] — energy bookkeeping. Energy is accumulated as
//!   `f64` joules; accumulation happens single-threaded inside one
//!   simulation, which keeps it deterministic.
//! * [`Bytes`] / [`BytesPerSec`] — data sizes and transfer rates, with the
//!   conversions the paper uses (disk bandwidth quoted in MB/s, wireless in
//!   Mbit/s).
//! * [`seeded_rng`] — one-line deterministic RNG construction used by all
//!   workload generators.
//!
//! ```
//! use ff_base::{Bytes, BytesPerSec, Dur, SimTime, Watts};
//!
//! // How long does a 128 KiB transfer take at 11 Mbps, and what does the
//! // receive power cost over it?
//! let bw = BytesPerSec::from_mbit_per_sec(11.0);
//! let t = bw.transfer_time(Bytes::kib(128));
//! let energy = Watts(2.61) * t;
//! assert!((t.as_secs_f64() - 0.0953).abs() < 1e-3);
//! assert!((energy.get() - 0.2488).abs() < 1e-3);
//!
//! // Instants and spans are distinct types; arithmetic is integer µs.
//! let start = SimTime::from_secs(5);
//! assert_eq!((start + Dur::from_millis(1500)) - start, Dur::from_millis(1500));
//! ```

#![warn(missing_docs)]

pub mod checked;
pub mod dist;
pub mod energy;
pub mod json;
pub mod rate;
pub mod rng;
pub mod size;
pub mod time;

pub use dist::{Dist, Sample};
pub use energy::{Joules, Watts};
pub use rate::BytesPerSec;
pub use rng::{derive_seed, seeded_rng, split_seed, task_rng, SimRng};
pub use size::Bytes;
pub use time::{Dur, SimTime};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the FlexFetch stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A trace line or profile file failed to parse.
    Parse {
        /// 1-based line number where parsing failed (0 if unknown).
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A request referenced a file that is not in the file set
    /// (`FileSet` lives in `ff-trace`; the error is shared here so every
    /// layer can report it).
    UnknownFile(u64),
    /// A request fell outside the bounds of its file.
    OutOfBounds {
        /// The file (inode) being accessed.
        inode: u64,
        /// Requested end offset.
        end: u64,
        /// Actual file size.
        size: u64,
    },
    /// Configuration rejected (e.g. zero bandwidth, empty trace).
    Config(String),
    /// Underlying I/O error converted to a string (keeps `Error: Eq`).
    Io(String),
    /// A fault-injection plan was rejected (zero-length outage,
    /// non-finite bandwidth, empty disk storm, …).
    Fault(String),
    /// An internal engine failure that is not the caller's fault
    /// (e.g. a sweep worker thread panicked).
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::UnknownFile(inode) => write!(f, "unknown file inode {inode}"),
            Error::OutOfBounds { inode, end, size } => {
                write!(
                    f,
                    "access beyond EOF on inode {inode}: end {end} > size {size}"
                )
            }
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Fault(msg) => write!(f, "invalid fault plan: {msg}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}
