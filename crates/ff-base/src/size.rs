//! Data sizes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

/// The page size used throughout the buffer-cache substrate (Linux x86).
pub const PAGE_SIZE: u64 = 4096;

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * 1024;

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// `n` kibibytes.
    #[inline]
    pub const fn kib(n: u64) -> Bytes {
        Bytes(n * KIB)
    }

    /// `n` mebibytes.
    #[inline]
    pub const fn mib(n: u64) -> Bytes {
        Bytes(n * MIB)
    }

    /// Raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Number of whole-or-partial 4 KiB pages covering this many bytes.
    #[inline]
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE)
    }

    /// Size as MiB, for reporting.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// True iff zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Sum clamped at `u64::MAX` instead of wrapping.
    #[inline]
    pub fn saturating_add(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MIB {
            write!(f, "{:.1}MiB", self.as_mib_f64())
        } else if self.0 >= KIB {
            write!(f, "{:.1}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bytes::kib(128).get(), 131_072);
        assert_eq!(Bytes::mib(2).get(), 2 * 1024 * 1024);
    }

    #[test]
    fn page_rounding() {
        assert_eq!(Bytes(0).pages(), 0);
        assert_eq!(Bytes(1).pages(), 1);
        assert_eq!(Bytes(4096).pages(), 1);
        assert_eq!(Bytes(4097).pages(), 2);
        // 128 KiB (Linux max readahead window) is exactly 32 pages.
        assert_eq!(Bytes::kib(128).pages(), 32);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Bytes = [Bytes(10), Bytes::kib(1)].into_iter().sum();
        assert_eq!(total, Bytes(1034));
        assert_eq!(Bytes(10).saturating_sub(Bytes(20)), Bytes::ZERO);
        assert_eq!(Bytes(30) - Bytes(20), Bytes(10));
        assert_eq!(Bytes(5).min(Bytes(3)), Bytes(3));
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes(12).to_string(), "12B");
        assert_eq!(Bytes::kib(2).to_string(), "2.0KiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.0MiB");
    }
}
