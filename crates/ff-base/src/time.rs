//! Fixed-point simulation time.
//!
//! The whole stack measures time in integer **microseconds**. A `u64`
//! microsecond clock overflows after ~584 000 years of simulated time, so
//! saturating arithmetic is used only where subtraction could underflow.
//!
//! Two types keep instants and spans apart at the type level:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock,
//! * [`Dur`] — a span between two instants.
//!
//! `SimTime ± Dur -> SimTime`, `SimTime - SimTime -> Dur`,
//! `Dur ± Dur -> Dur`, `Dur × k -> Dur`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `us` microseconds after the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Instant `ms` milliseconds after the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Instant `s` seconds after the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (reporting only — never used for
    /// event ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Dur) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Span of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Dur(us)
    }

    /// Span of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000)
    }

    /// Span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000)
    }

    /// Span of `s` seconds given as a float, rounded to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Dur::ZERO;
        }
        Dur((s * 1e6).round() as u64)
    }

    /// Microseconds in the span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (reporting / energy math).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True iff the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    /// Span between two instants. Panics in debug builds if `rhs > self`;
    /// use [`SimTime::saturating_since`] when the ordering is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(Dur::from_secs(1), Dur::from_micros(1_000_000));
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_secs(10) + Dur::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
    }

    #[test]
    fn instant_difference_is_span() {
        let a = SimTime::from_secs(4);
        let b = SimTime::from_secs(1);
        assert_eq!(a - b, Dur::from_secs(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_secs(3));
    }

    #[test]
    fn span_arithmetic() {
        let d = Dur::from_millis(10) * 3;
        assert_eq!(d, Dur::from_millis(30));
        assert_eq!(d / 2, Dur::from_millis(15));
        assert_eq!(
            Dur::from_secs(2).saturating_sub(Dur::from_secs(5)),
            Dur::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Dur::from_secs_f64(0.0000015), Dur::from_micros(2));
        assert_eq!(Dur::from_secs_f64(-3.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::INFINITY), Dur::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Dur::from_micros(12).to_string(), "12us");
        assert_eq!(Dur::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Dur::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: Dur = [Dur::from_secs(1), Dur::from_millis(500)].into_iter().sum();
        assert_eq!(total, Dur::from_millis(1_500));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(Dur::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(Dur::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(Dur::from_millis(999) < Dur::from_secs(1));
    }
}
