//! Small deterministic distribution samplers.
//!
//! The workload generators mostly use uniform jitter, but exploring the
//! policy space (see `ff-trace::workloads::synthetic`) needs the classic
//! heavy-tailed shapes from the storage literature: log-normal file
//! sizes, exponential think times, Pareto burst sizes. Implemented here
//! over any `rand::Rng` so everything stays reproducible from one seed
//! (no extra dependency on `rand_distr`).

use rand::Rng;

/// A sampler over `f64`.
pub trait Sample {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert!(self.hi > self.lo);
        rng.gen_range(self.lo..self.hi)
    }
}

/// Exponential with the given mean (rate = 1/mean): memoryless think
/// times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Mean of the distribution.
    pub mean: f64,
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert!(self.mean > 0.0);
        // Inverse CDF; clamp the uniform away from 0 to avoid inf.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

/// Log-normal given the mean and sigma of the *underlying* normal:
/// the canonical file-size distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of ln(X).
    pub mu: f64,
    /// Standard deviation of ln(X).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the desired *median* value of X (`exp(mu)`).
    pub fn with_median(median: f64, sigma: f64) -> Self {
        debug_assert!(median > 0.0);
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto (Type I) with scale `xm` (minimum) and shape `alpha`:
/// heavy-tailed request/burst sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum (scale) value.
    pub xm: f64,
    /// Tail index; smaller = heavier tail (α ≤ 1 has infinite mean).
    pub alpha: f64,
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert!(self.xm > 0.0 && self.alpha > 0.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.xm / u.powf(1.0 / self.alpha)
    }
}

/// Type-erased sampler so configs can carry "some distribution".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Uniform over a range.
    Uniform(Uniform),
    /// Exponential with a mean.
    Exponential(Exponential),
    /// Log-normal.
    LogNormal(LogNormal),
    /// Pareto.
    Pareto(Pareto),
    /// Always the same value.
    Constant(f64),
}

impl Dist {
    /// Uniform over `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        Dist::Uniform(Uniform { lo, hi })
    }

    /// Exponential with `mean`.
    pub fn exponential(mean: f64) -> Self {
        Dist::Exponential(Exponential { mean })
    }

    /// Log-normal with the given median and sigma.
    pub fn log_normal(median: f64, sigma: f64) -> Self {
        Dist::LogNormal(LogNormal::with_median(median, sigma))
    }

    /// Pareto with scale `xm` and shape `alpha`.
    pub fn pareto(xm: f64, alpha: f64) -> Self {
        Dist::Pareto(Pareto { xm, alpha })
    }
}

impl Sample for Dist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Uniform(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
            Dist::LogNormal(d) => d.sample(rng),
            Dist::Pareto(d) => d.sample(rng),
            Dist::Constant(v) => *v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn mean_of(d: &impl Sample, n: usize) -> f64 {
        let mut rng = seeded_rng(7);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform { lo: 2.0, hi: 6.0 };
        let mut rng = seeded_rng(1);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&v));
        }
        assert!((mean_of(&d, 50_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential { mean: 3.0 };
        assert!((mean_of(&d, 100_000) - 3.0).abs() < 0.1);
        let mut rng = seeded_rng(2);
        assert!((0..1000).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::with_median(100.0, 0.8);
        let mut rng = seeded_rng(3);
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(xs[0] > 0.0);
    }

    #[test]
    fn pareto_minimum_and_tail() {
        let d = Pareto {
            xm: 10.0,
            alpha: 2.0,
        };
        let mut rng = seeded_rng(4);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 10.0));
        // E[X] = α·xm/(α−1) = 20 for α = 2.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
        // Heavy tail: some samples far above the mean.
        assert!(xs.iter().any(|&x| x > 100.0));
    }

    #[test]
    fn dist_enum_dispatches() {
        let mut rng = seeded_rng(5);
        assert_eq!(Dist::Constant(7.5).sample(&mut rng), 7.5);
        let v = Dist::uniform(0.0, 1.0).sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
        assert!(Dist::exponential(1.0).sample(&mut rng) >= 0.0);
        assert!(Dist::log_normal(50.0, 1.0).sample(&mut rng) > 0.0);
        assert!(Dist::pareto(1.0, 1.5).sample(&mut rng) >= 1.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Dist::log_normal(10.0, 0.5);
        let a: Vec<f64> = {
            let mut rng = seeded_rng(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
