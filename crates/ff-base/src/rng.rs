//! Deterministic random-number plumbing.
//!
//! Every stochastic component (workload generators, disk layout jitter)
//! takes a `u64` seed and derives an independent stream with
//! [`split_seed`], so an entire experiment is reproducible from a single
//! seed. We avoid `rand`'s `thread_rng` everywhere.

/// The concrete RNG used across the workspace. `StdRng` (ChaCha12) is
/// seedable, portable, and fast enough for trace generation.
pub type SimRng = rand::rngs::StdRng;

use rand::SeedableRng;

/// Build the workspace RNG from a seed.
#[inline]
pub fn seeded_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derive an independent child seed from `(seed, stream)` with the
/// SplitMix64 finaliser — cheap, well-mixed, and stable across releases
/// (unlike hashing via `DefaultHasher`).
#[inline]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        let b: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_seed_is_stable_and_spread() {
        // Regression pin: children must not change across refactors, or
        // every recorded experiment shifts.
        assert_eq!(split_seed(0, 0), split_seed(0, 0));
        let children: Vec<u64> = (0..64).map(|i| split_seed(12345, i)).collect();
        let mut uniq = children.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), children.len(), "child seeds collide");
    }

    #[test]
    fn split_seed_differs_from_parent() {
        assert_ne!(split_seed(7, 0), 7);
        assert_ne!(split_seed(7, 1), split_seed(7, 2));
    }
}
