//! Deterministic random-number plumbing.
//!
//! Every stochastic component (workload generators, disk layout jitter)
//! takes a `u64` seed and derives an independent stream with
//! [`split_seed`], so an entire experiment is reproducible from a single
//! seed. We avoid `rand`'s `thread_rng` everywhere.

/// The concrete RNG used across the workspace. `StdRng` (ChaCha12) is
/// seedable, portable, and fast enough for trace generation.
pub type SimRng = rand::rngs::StdRng;

use rand::SeedableRng;

/// Build the workspace RNG from a seed.
#[inline]
pub fn seeded_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derive an independent child seed from `(seed, stream)` with the
/// SplitMix64 finaliser — cheap, well-mixed, and stable across releases
/// (unlike hashing via `DefaultHasher`).
#[inline]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a per-task seed from a base seed and a canonical task key
/// (the parallel sweep engine uses `"workload/policy/seed"` keys):
/// FNV-1a over the key bytes, folded through [`split_seed`].
///
/// The derivation depends only on `(base, key)` — never on thread
/// count, scheduling order, or platform — so a grid task draws the same
/// stream whether the grid runs on one worker or sixteen. Stability is
/// pinned by a golden fixture in `tests/parallel.rs`.
///
/// ```
/// use ff_base::rng::derive_seed;
/// let a = derive_seed(42, "grep/flexfetch/42");
/// assert_eq!(a, derive_seed(42, "grep/flexfetch/42"));
/// assert_ne!(a, derive_seed(42, "grep/flexfetch/43"));
/// assert_ne!(a, derive_seed(43, "grep/flexfetch/42"));
/// ```
#[inline]
pub fn derive_seed(base: u64, key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    split_seed(base, h)
}

/// The RNG stream owned by one grid task: [`seeded_rng`] over
/// [`derive_seed`]. Independent of every other task's stream.
#[inline]
pub fn task_rng(base: u64, key: &str) -> SimRng {
    seeded_rng(derive_seed(base, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        let b: Vec<u32> = (0..16).map(|_| seeded_rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_seed_is_stable_and_spread() {
        // Regression pin: children must not change across refactors, or
        // every recorded experiment shifts.
        assert_eq!(split_seed(0, 0), split_seed(0, 0));
        let children: Vec<u64> = (0..64).map(|i| split_seed(12345, i)).collect();
        let mut uniq = children.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), children.len(), "child seeds collide");
    }

    #[test]
    fn split_seed_differs_from_parent() {
        assert_ne!(split_seed(7, 0), 7);
        assert_ne!(split_seed(7, 1), split_seed(7, 2));
    }

    #[test]
    fn derive_seed_is_key_sensitive() {
        // Every byte of the key matters, including separators: the grid
        // keys "a/bc" and "ab/c" are different tasks.
        assert_ne!(derive_seed(1, "a/bc"), derive_seed(1, "ab/c"));
        assert_ne!(derive_seed(1, ""), derive_seed(1, "/"));
        assert_eq!(derive_seed(9, "xmms/wnic/7"), derive_seed(9, "xmms/wnic/7"));
    }

    #[test]
    fn task_rng_streams_are_independent() {
        let mut a = task_rng(42, "grep/disk/42");
        let mut b = task_rng(42, "grep/wnic/42");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
        let mut a2 = task_rng(42, "grep/disk/42");
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        assert_eq!(xs, xs2);
    }
}
