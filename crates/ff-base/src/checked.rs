//! Checked numeric conversions and guarded ratios.
//!
//! The `arith-safety` lint family (ff-lint wave 4) flags raw `as`
//! narrowing, float→integer truncation, and divisions whose divisor may
//! be zero. These helpers are the blessed replacements: total functions
//! with explicit, documented saturation/zero behaviour, so call sites
//! stay one expression and the policy lives in one place.

/// `num / den` as `f64`, defined as `0.0` when the denominator is zero.
///
/// The workspace convention for empty-population ratios (cache hit
/// ratio over zero lookups, mean over zero samples) is zero, not NaN.
///
/// ```
/// assert!((ff_base::checked::ratio(3, 4) - 0.75).abs() < 1e-12);
/// assert!(ff_base::checked::ratio(3, 0).abs() < 1e-12);
/// ```
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// `f64` → `u64`, saturating at the type bounds; NaN maps to zero.
///
/// A plain `as u64` cast already saturates in Rust, but silently: this
/// spelling marks the truncation as deliberate and survives the
/// float-taint check.
///
/// ```
/// assert_eq!(ff_base::checked::f64_to_u64(1234.9), 1234);
/// assert_eq!(ff_base::checked::f64_to_u64(-5.0), 0);
/// assert_eq!(ff_base::checked::f64_to_u64(f64::NAN), 0);
/// ```
#[inline]
pub fn f64_to_u64(x: f64) -> u64 {
    if x.is_nan() {
        0
    } else {
        x as u64
    }
}

/// `u64` → `u32`, saturating at `u32::MAX` instead of wrapping.
///
/// ```
/// assert_eq!(ff_base::checked::u64_to_u32(7), 7);
/// assert_eq!(ff_base::checked::u64_to_u32(u64::MAX), u32::MAX);
/// ```
#[inline]
pub fn u64_to_u32(x: u64) -> u32 {
    if x > u32::MAX as u64 {
        u32::MAX
    } else {
        x as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominator() {
        assert!(ratio(10, 0).abs() < 1e-12);
        assert!((ratio(1, 2) - 0.5).abs() < 1e-12);
        assert!((ratio(u64::MAX, u64::MAX) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f64_to_u64_saturates_and_absorbs_nan() {
        assert_eq!(f64_to_u64(0.0), 0);
        assert_eq!(f64_to_u64(-1e9), 0);
        assert_eq!(f64_to_u64(1e300), u64::MAX);
        assert_eq!(f64_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(f64_to_u64(f64::NAN), 0);
        assert_eq!(f64_to_u64(1000.999), 1000);
    }

    #[test]
    fn u64_to_u32_saturates() {
        assert_eq!(u64_to_u32(0), 0);
        assert_eq!(u64_to_u32(u32::MAX as u64), u32::MAX);
        assert_eq!(u64_to_u32(u32::MAX as u64 + 1), u32::MAX);
    }
}
