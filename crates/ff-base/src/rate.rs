//! Transfer rates and transfer-time math.
//!
//! The paper quotes the disk bandwidth in **MB/s** (10^6 bytes) and the
//! wireless bandwidth in **Mbit/s** (10^6 bits), matching vendor data
//! sheets; both constructors are provided and normalise to bytes/second.

use crate::size::Bytes;
use crate::time::Dur;
use std::fmt;

/// A transfer rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BytesPerSec(pub f64);

impl BytesPerSec {
    /// Rate from megabytes per second (10^6 bytes, disk data-sheet units).
    #[inline]
    pub fn from_mb_per_sec(mb: f64) -> Self {
        BytesPerSec(mb * 1e6)
    }

    /// Rate from megabits per second (10^6 bits, 802.11 data-sheet units).
    #[inline]
    pub fn from_mbit_per_sec(mbit: f64) -> Self {
        BytesPerSec(mbit * 1e6 / 8.0)
    }

    /// Raw bytes/second.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Time to transfer `n` bytes at this rate, rounded up to the next
    /// microsecond so transfers never take zero simulated time.
    #[inline]
    pub fn transfer_time(self, n: Bytes) -> Dur {
        if n.is_zero() {
            return Dur::ZERO;
        }
        debug_assert!(self.0 > 0.0, "transfer at non-positive bandwidth");
        let us = (n.get() as f64) / self.0 * 1e6;
        Dur::from_micros(us.ceil() as u64)
    }

    /// Bytes transferable in `d` at this rate (floor).
    #[inline]
    pub fn bytes_in(self, d: Dur) -> Bytes {
        Bytes((self.0 * d.as_secs_f64()).floor() as u64)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}MB/s", self.0 / 1e6)
        } else {
            write!(f, "{:.0}B/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_bandwidth_units() {
        // 35 MB/s (Table: Hitachi DK23DA peak bandwidth).
        let bw = BytesPerSec::from_mb_per_sec(35.0);
        assert_eq!(bw.get(), 35e6);
    }

    #[test]
    fn wireless_bandwidth_units() {
        // 11 Mbps 802.11b = 1.375e6 bytes/s.
        let bw = BytesPerSec::from_mbit_per_sec(11.0);
        assert!((bw.get() - 1.375e6).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let bw = BytesPerSec(1e6); // 1 byte per microsecond
        assert_eq!(bw.transfer_time(Bytes(1)), Dur::from_micros(1));
        assert_eq!(bw.transfer_time(Bytes(1_000_000)), Dur::from_secs(1));
        assert_eq!(bw.transfer_time(Bytes::ZERO), Dur::ZERO);
        // 1.5 us worth of data takes 2 us.
        let bw2 = BytesPerSec(2e6);
        assert_eq!(bw2.transfer_time(Bytes(3)), Dur::from_micros(2));
    }

    #[test]
    fn transfer_examples_from_paper_scale() {
        // 128 KiB at 11 Mbps takes ~95 ms; at 35 MB/s ~3.7 ms.
        let wnic = BytesPerSec::from_mbit_per_sec(11.0);
        let disk = BytesPerSec::from_mb_per_sec(35.0);
        let t_w = wnic.transfer_time(Bytes::kib(128)).as_secs_f64();
        let t_d = disk.transfer_time(Bytes::kib(128)).as_secs_f64();
        assert!((t_w - 0.0953).abs() < 0.001, "wnic {t_w}");
        assert!((t_d - 0.00375).abs() < 0.0002, "disk {t_d}");
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = BytesPerSec::from_mbit_per_sec(2.0);
        let n = Bytes::kib(64);
        let t = bw.transfer_time(n);
        let back = bw.bytes_in(t);
        // Rounding up the time can only over-estimate the bytes.
        assert!(back >= n, "{back:?} < {n:?}");
        assert!(back.get() - n.get() < 8);
    }
}
