//! Energy and power bookkeeping.
//!
//! Power models express state power draw in [`Watts`]; integrating a power
//! over a [`Dur`] yields [`Joules`]. Both are thin `f64` newtypes — the
//! accumulation is always single-threaded inside one simulation, so results
//! are deterministic.

use crate::time::Dur;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of energy, in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

/// A power draw, in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Raw joule value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// True iff the value is a finite, non-negative energy.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Relative difference `(self - other) / self`, the paper's
    /// "x% energy saving" metric. Returns 0 when `self` is zero.
    #[inline]
    pub fn relative_saving(self, other: Joules) -> f64 {
        if self.0.abs() > 0.0 {
            (self.0 - other.0) / self.0
        } else {
            0.0
        }
    }

    /// The smaller of two energies.
    #[inline]
    pub fn min(self, other: Joules) -> Joules {
        Joules(self.0.min(other.0))
    }

    /// The larger of two energies.
    #[inline]
    pub fn max(self, other: Joules) -> Joules {
        Joules(self.0.max(other.0))
    }
}

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Raw watt value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Energy drawn at this power over `d`.
    #[inline]
    pub fn over(self, d: Dur) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }
}

impl Mul<Dur> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Dur) -> Joules {
        self.over(rhs)
    }
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    #[inline]
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl SubAssign for Joules {
    #[inline]
    fn sub_assign(&mut self, rhs: Joules) {
        self.0 -= rhs.0;
    }
}

impl Neg for Joules {
    type Output = Joules;
    #[inline]
    fn neg(self) -> Joules {
        Joules(-self.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J", self.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        // Table 1: idle power 1.6 W over 10 s = 16 J.
        let e = Watts(1.6) * Dur::from_secs(10);
        assert!((e.get() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn over_matches_mul() {
        let p = Watts(2.0);
        let d = Dur::from_millis(2_300);
        assert_eq!(p.over(d), p * d);
    }

    #[test]
    fn joule_arithmetic() {
        let mut e = Joules(5.0) + Joules(2.94);
        e += Joules(0.06);
        assert!((e.get() - 8.0).abs() < 1e-12);
        e -= Joules(3.0);
        assert!((e.get() - 5.0).abs() < 1e-12);
        assert_eq!((Joules(6.0) / 2.0).get(), 3.0);
        assert_eq!((Joules(6.0) * 0.5).get(), 3.0);
    }

    #[test]
    fn relative_saving_matches_paper_metric() {
        // (E_disk - E_network) / E_disk with 2000 J vs 1500 J => 25 %.
        let saving = Joules(2000.0).relative_saving(Joules(1500.0));
        assert!((saving - 0.25).abs() < 1e-12);
        // Degenerate zero denominator.
        assert_eq!(Joules(0.0).relative_saving(Joules(1.0)), 0.0);
    }

    #[test]
    fn sum_and_minmax() {
        let total: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert_eq!(total, Joules(3.5));
        assert_eq!(Joules(1.0).min(Joules(2.0)), Joules(1.0));
        assert_eq!(Joules(1.0).max(Joules(2.0)), Joules(2.0));
    }

    #[test]
    fn validity_check() {
        assert!(Joules(0.0).is_valid());
        assert!(!Joules(-1.0).is_valid());
        assert!(!Joules(f64::NAN).is_valid());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Joules(2.94).to_string(), "2.94J");
        assert_eq!(Watts(0.15).to_string(), "0.15W");
    }
}
