//! The parallel deterministic batch-execution engine.
//!
//! Every sweep, fault matrix, and ablation in this crate is an
//! embarrassingly-parallel grid of independent simulations. This module
//! runs such a grid on a **work-stealing pool** of scoped std threads
//! (no new dependencies: per-worker deques behind mutexes, results over
//! an mpsc channel) while keeping the batch **byte-deterministic**:
//!
//! * tasks never share mutable state — any randomness a task needs
//!   comes from its own derived stream
//!   ([`ff_base::rng::derive_seed`]`(base, task_key)`), never from an
//!   RNG consumed in scheduling order;
//! * each worker pops from the *front* of its own deque and, when dry,
//!   steals from the *back* of a sibling's, so an unbalanced shard
//!   (one long mplayer cell among thirty) cannot idle the pool;
//! * results carry their task index and are merged by sorting into
//!   **canonical task order** before they escape, so the output is
//!   byte-identical whether the grid ran on one worker or sixteen —
//!   the ordered-merge pattern the `nondet-taint` lint family models.
//!
//! The engine is exercised by `tests/parallel.rs` (same grid at
//! `--jobs 1` and `--jobs 8` must serialise identically) and measured
//! by the `benchpar` binary (`bench/BENCH_parallel.json`).

use ff_base::{Error, Result};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// The pool size used when a `--jobs` request is absent or `0`: one
/// worker per hardware thread the host grants us.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Resolve a `--jobs N` request: `0` means [`default_jobs`], anything
/// else is taken literally (oversubscription is allowed — determinism
/// never depends on it).
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Pop a task index for worker `me`: own queue first (front), then
/// steal from the back of the nearest non-empty sibling.
fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Ok(mut own) = queues[me].lock() {
        if let Some(i) = own.pop_front() {
            return Some(i);
        }
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Ok(mut q) = queues[victim].lock() {
            if let Some(i) = q.pop_back() {
                return Some(i);
            }
        }
    }
    None
}

/// Run `work` over every item on `jobs` workers and return the results
/// **in item order**, regardless of thread count or scheduling.
///
/// `jobs` is resolved via [`resolve_jobs`] and clamped to the item
/// count; `jobs == 1` (after resolution) runs inline on the caller's
/// thread — the serial reference path the `benchpar` speedup compares
/// against. `work` receives `(index, &item)` and must be deterministic
/// in those inputs alone for the batch to replay byte-identically.
///
/// A panicking worker surfaces as `Err` (the scope result), never as a
/// silently missing slot.
///
/// ```
/// use ff_bench::pool::run_ordered;
/// let squares = run_ordered(8, &[1u64, 2, 3, 4, 5], |i, &x| {
///     assert_eq!(i as u64 + 1, x);
///     x * x
/// })
/// .unwrap();
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn run_ordered<I, T, F>(jobs: usize, items: &[I], work: F) -> Result<Vec<T>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len()).max(1);
    if jobs == 1 {
        return Ok(items
            .iter()
            .enumerate()
            .map(|(i, it)| work(i, it))
            .collect());
    }

    // Round-robin shard the task indices across per-worker deques; the
    // shard only seeds locality, stealing rebalances the rest.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let scope_result = crossbeam::scope(|s| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let work = &work;
            s.spawn(move |_| {
                while let Some(i) = pop_or_steal(queues, w) {
                    if tx.send((i, work(i, &items[i]))).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    scope_result.map_err(|_| Error::Internal("parallel grid worker panicked".into()))?;

    let mut merged: Vec<(usize, T)> = rx.into_iter().collect();
    // Canonical-order merge: results leave this function sorted by task
    // index, independent of which worker finished when.
    merged.sort_by_key(|&(i, _)| i);
    if merged.len() != items.len() {
        return Err(Error::Internal(format!(
            "parallel grid lost results: {} of {}",
            merged.len(),
            items.len()
        )));
    }
    Ok(merged.into_iter().map(|(_, t)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn order_is_canonical_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = run_ordered(1, &items, |_, &x| x * 3 + 1).unwrap();
        for jobs in [2, 3, 8, 64, 200] {
            let par = run_ordered(jobs, &items, |_, &x| x * 3 + 1).unwrap();
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50).collect();
        let out = run_ordered(7, &items, |i, &x| {
            assert_eq!(i, x);
            hits.fetch_add(1, Ordering::Relaxed);
            x
        })
        .unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn stealing_drains_an_unbalanced_shard() {
        // One task is 1000x the others; the pool must still finish and
        // keep canonical order.
        let items: Vec<u64> = (0..16).collect();
        let out = run_ordered(4, &items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 200 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        })
        .unwrap();
        let keys: Vec<u64> = out.iter().map(|&(x, _)| x).collect();
        assert_eq!(keys, items);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u8> = run_ordered(8, &[] as &[u8], |_, &x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_is_an_error_not_a_hang() {
        let items: Vec<u32> = (0..8).collect();
        let r = run_ordered(4, &items, |_, &x| {
            assert!(x != 5, "injected failure");
            x
        });
        assert!(r.is_err());
    }

    #[test]
    fn jobs_zero_resolves_to_the_host_default() {
        assert_eq!(resolve_jobs(0), default_jobs());
        assert_eq!(resolve_jobs(3), 3);
        assert!(default_jobs() >= 1);
    }
}
