//! One observed run: workload × policy → event log + summary.
//!
//! Backs the `observe` binary (JSONL + summary export) and the
//! `benchsim` wall-clock runner. Everything here is deterministic for a
//! fixed `(workload, policy, seed)` triple: the same run serialises
//! byte-identically, which the golden-trace tests rely on.

use ff_base::json::Value;
use ff_base::{Error, Result};
use ff_policy::PolicyKind;
use ff_profile::Profiler;
use ff_sim::{EventLog, Recorder, SimConfig, SimReport, Simulation};
use ff_trace::{Acroread, Grep, Make, Mplayer, Thunderbird, Trace, Workload, Xmms};

/// The six Table-3 workload names accepted by [`build_workload`].
pub const WORKLOADS: [&str; 6] = ["grep", "make", "mplayer", "thunderbird", "xmms", "acroread"];

/// The five policy names accepted by [`build_policy`].
pub const POLICIES: [&str; 5] = ["disk", "wnic", "bluefs", "flexfetch", "flexfetch-static"];

/// Build one of the Table 3 workload traces by name.
///
/// ```
/// let t = ff_bench::observe::build_workload("grep", 42).unwrap();
/// assert_eq!(t.name, "grep");
/// assert!(ff_bench::observe::build_workload("nethack", 42).is_err());
/// ```
pub fn build_workload(name: &str, seed: u64) -> Result<Trace> {
    match name {
        "grep" => Ok(Grep::default().build(seed)),
        "make" => Ok(Make::default().build(seed)),
        "mplayer" => Ok(Mplayer::default().build(seed)),
        "thunderbird" => Ok(Thunderbird::default().build(seed)),
        "xmms" => Ok(Xmms::default().build(seed)),
        "acroread" => Ok(Acroread::large_search().build(seed)),
        other => Err(Error::Config(format!(
            "unknown workload '{other}' (expected one of {})",
            WORKLOADS.join(", ")
        ))),
    }
}

/// Build a policy recipe by name. The FlexFetch variants need a
/// recorded prior-run profile, which this derives from a *different*
/// execution of the same workload (`seed + 1`), exactly as the §3.3
/// scenarios do.
///
/// ```
/// let p = ff_bench::observe::build_policy("flexfetch", "grep", 42).unwrap();
/// assert_eq!(p.label(), "FlexFetch");
/// assert!(ff_bench::observe::build_policy("psychic", "grep", 42).is_err());
/// ```
pub fn build_policy(name: &str, workload: &str, seed: u64) -> Result<PolicyKind> {
    match name {
        "disk" => Ok(PolicyKind::DiskOnly),
        "wnic" => Ok(PolicyKind::WnicOnly),
        "bluefs" => Ok(PolicyKind::BlueFs),
        "flexfetch" | "flexfetch-static" => {
            let profile = Profiler::standard().profile(&build_workload(workload, seed + 1)?);
            Ok(if name == "flexfetch" {
                PolicyKind::flexfetch(profile)
            } else {
                PolicyKind::flexfetch_static(profile)
            })
        }
        other => Err(Error::Config(format!(
            "unknown policy '{other}' (expected one of {})",
            POLICIES.join(", ")
        ))),
    }
}

/// Result of one fully-observed run: the report plus the event log.
pub struct ObservedRun {
    /// The simulation's end-of-run report.
    pub report: SimReport,
    /// Every event the run emitted.
    pub log: EventLog,
}

/// Replay `workload` under `policy` with an [`EventLog`] attached.
///
/// ```
/// let run = ff_bench::observe::observe_run("grep", "disk", 42).unwrap();
/// assert!(run.report.total_energy().get() > 0.0);
/// assert_eq!(run.log.count("app_call"), run.report.app_requests);
/// ```
pub fn observe_run(workload: &str, policy: &str, seed: u64) -> Result<ObservedRun> {
    let trace = build_workload(workload, seed)?;
    let kind = build_policy(policy, workload, seed)?;
    let mut log = EventLog::new();
    let report = Simulation::new(SimConfig::default(), &trace)
        .policy(kind)
        .run_recorded(&mut log)?;
    Ok(ObservedRun { report, log })
}

/// Replay `workload` under `policy` streaming into an arbitrary
/// recorder (the `benchsim` runner passes a
/// [`ff_sim::CountingRecorder`] to measure event throughput without
/// event storage).
pub fn recorded_run(
    workload: &str,
    policy: &str,
    seed: u64,
    recorder: &mut dyn Recorder,
) -> Result<SimReport> {
    let trace = build_workload(workload, seed)?;
    let kind = build_policy(policy, workload, seed)?;
    Simulation::new(SimConfig::default(), &trace)
        .policy(kind)
        .run_recorded(recorder)
}

/// The run's summary document: identity, headline report numbers, and
/// per-kind event totals. Deterministic field order; serialise with
/// [`Value::to_pretty`] or [`Value::to_compact`].
///
/// ```
/// let run = ff_bench::observe::observe_run("grep", "disk", 42).unwrap();
/// let s = ff_bench::observe::summary_json(&run, "grep", "disk", 42);
/// assert_eq!(s.get("workload").and_then(|v| v.as_str()), Some("grep"));
/// let events = s.get("events").unwrap();
/// assert!(events.get("total").and_then(|v| v.as_u64()).unwrap() > 0);
/// ```
pub fn summary_json(run: &ObservedRun, workload: &str, policy: &str, seed: u64) -> Value {
    let r = &run.report;
    let cs = r.cache_stats;
    let report = Value::Object(vec![
        ("policy".into(), Value::Str(r.policy.clone())),
        ("exec_time_us".into(), Value::UInt(r.exec_time.as_micros())),
        ("disk_j".into(), Value::Float(r.disk_energy.get())),
        ("wnic_j".into(), Value::Float(r.wnic_energy.get())),
        ("flash_j".into(), Value::Float(r.flash_energy.get())),
        ("total_j".into(), Value::Float(r.total_energy().get())),
        ("app_requests".into(), Value::UInt(r.app_requests)),
        ("disk_requests".into(), Value::UInt(r.disk_requests)),
        ("wnic_requests".into(), Value::UInt(r.wnic_requests)),
        ("disk_bytes".into(), Value::UInt(r.disk_bytes.get())),
        ("wnic_bytes".into(), Value::UInt(r.wnic_bytes.get())),
        ("cache_hits".into(), Value::UInt(cs.hits)),
        ("cache_misses".into(), Value::UInt(cs.misses)),
        ("readahead_pages".into(), Value::UInt(cs.readahead_pages)),
        ("flushes".into(), Value::UInt(cs.flushes)),
        ("flushed_pages".into(), Value::UInt(cs.flushed_pages)),
        ("stages".into(), Value::UInt(r.stages as u64)),
        ("decisions".into(), Value::UInt(r.decisions.len() as u64)),
    ]);
    let by_kind = Value::Object(
        run.log
            .counts()
            .into_iter()
            .map(|(k, n)| (k.to_string(), Value::UInt(n)))
            .collect(),
    );
    let events = Value::Object(vec![
        ("total".into(), Value::UInt(run.log.len() as u64)),
        ("by_kind".into(), by_kind),
    ]);
    Value::Object(vec![
        ("workload".into(), Value::Str(workload.into())),
        ("policy".into(), Value::Str(policy.into())),
        ("seed".into(), Value::UInt(seed)),
        ("report".into(), report),
        ("events".into(), events),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_and_policy_name_resolves() {
        for w in WORKLOADS {
            assert!(build_workload(w, 1).is_ok(), "workload {w}");
        }
        for p in POLICIES {
            assert!(build_policy(p, "grep", 1).is_ok(), "policy {p}");
        }
    }

    #[test]
    fn observed_run_is_byte_deterministic() {
        let a = observe_run("grep", "flexfetch", 42).unwrap();
        let b = observe_run("grep", "flexfetch", 42).unwrap();
        assert_eq!(a.log.to_jsonl(), b.log.to_jsonl());
        assert_eq!(
            summary_json(&a, "grep", "flexfetch", 42).to_pretty(),
            summary_json(&b, "grep", "flexfetch", 42).to_pretty()
        );
    }

    #[test]
    fn summary_parses_and_counts_match_log() {
        let run = observe_run("xmms", "wnic", 7).unwrap();
        let s = summary_json(&run, "xmms", "wnic", 7);
        let reparsed = Value::parse(&s.to_pretty()).unwrap();
        assert_eq!(reparsed, s);
        let total = s
            .get("events")
            .and_then(|e| e.get("total"))
            .and_then(|v| v.as_u64())
            .unwrap();
        assert_eq!(total, run.log.len() as u64);
    }
}
