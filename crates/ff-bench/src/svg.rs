//! Minimal self-contained SVG line charts for the figure binaries — no
//! plotting dependency, just enough to render the §3.3 energy curves
//! (`results/*.svg`).

use crate::sweep::Row;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, any order; rendering sorts by x.
    pub points: Vec<(f64, f64)>,
}

/// Group sweep rows into one series per policy (insertion order kept).
pub fn rows_to_series(rows: &[Row]) -> Vec<Series> {
    let mut out: Vec<Series> = Vec::new();
    for r in rows {
        match out.iter_mut().find(|s| s.name == r.policy) {
            Some(s) => s.points.push((r.x, r.energy_j)),
            None => out.push(Series {
                name: r.policy.clone(),
                points: vec![(r.x, r.energy_j)],
            }),
        }
    }
    for s in &mut out {
        s.points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    out
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // left margin
const MR: f64 = 20.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| s >= raw)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v.abs() < 1e-12 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v).trim_end_matches(".0").to_string()
    } else {
        format!("{:.2}", v)
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Render a line chart. Y always starts at zero (energy comparisons are
/// only honest with a zero baseline).
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    let ymax = ys.iter().fold(0.0f64, |a, &v| a.max(v)) * 1.05;
    let (xmin, xmax) = if xmin.is_finite() {
        (xmin, xmax.max(xmin + 1e-9))
    } else {
        (0.0, 1.0)
    };
    let ymax = if ymax > 0.0 { ymax } else { 1.0 };

    let px = |x: f64| ML + (x - xmin) / (xmax - xmin) * (W - ML - MR);
    let py = |y: f64| H - MB - y / ymax * (H - MT - MB);

    let mut svg = String::with_capacity(8192);
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        W / 2.0,
        title
    ));

    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{ML}" y1="{0}" x2="{1}" y2="{0}" stroke="black"/>"#,
        H - MB,
        W - MR
    ));
    svg.push_str(&format!(
        r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
        H - MB
    ));
    for t in nice_ticks(xmin, xmax, 6) {
        let x = px(t);
        svg.push_str(&format!(
            r#"<line x1="{x:.1}" y1="{0}" x2="{x:.1}" y2="{1}" stroke="black"/>"#,
            H - MB,
            H - MB + 5.0
        ));
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
            H - MB + 18.0,
            fmt_num(t)
        ));
    }
    for t in nice_ticks(0.0, ymax, 6) {
        let y = py(t);
        svg.push_str(&format!(
            r#"<line x1="{0}" y1="{y:.1}" x2="{ML}" y2="{y:.1}" stroke="black"/>"#,
            ML - 5.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
            ML - 8.0,
            y + 4.0,
            fmt_num(t)
        ));
        svg.push_str(&format!(
            r##"<line x1="{ML}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#dddddd"/>"##,
            W - MR
        ));
    }
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 14.0,
        x_label
    ));
    svg.push_str(&format!(
        r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        y_label
    ));

    // Series lines + markers + legend.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        svg.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        ));
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            ));
        }
        let ly = MT + 8.0 + i as f64 * 18.0;
        svg.push_str(&format!(
            r#"<line x1="{0}" y1="{ly:.1}" x2="{1}" y2="{ly:.1}" stroke="{color}" stroke-width="3"/>"#,
            W - MR - 150.0,
            W - MR - 125.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{:.1}" font-size="12">{}</text>"#,
            W - MR - 118.0,
            ly + 4.0,
            s.name
        ));
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            Row {
                policy: "A".into(),
                x: 0.0,
                energy_j: 10.0,
                time_s: 1.0,
            },
            Row {
                policy: "B".into(),
                x: 0.0,
                energy_j: 20.0,
                time_s: 1.0,
            },
            Row {
                policy: "A".into(),
                x: 5.0,
                energy_j: 15.0,
                time_s: 1.0,
            },
            Row {
                policy: "B".into(),
                x: 5.0,
                energy_j: 12.0,
                time_s: 1.0,
            },
        ]
    }

    #[test]
    fn series_grouping_preserves_order_and_sorts_x() {
        let s = rows_to_series(&rows());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "A");
        assert_eq!(s[0].points, vec![(0.0, 10.0), (5.0, 15.0)]);
    }

    #[test]
    fn chart_is_valid_ish_svg() {
        let s = rows_to_series(&rows());
        let svg = line_chart("Fig X", "latency (ms)", "energy (J)", &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Fig X"));
        assert!(svg.contains("energy (J)"));
        // Every coordinate within the canvas.
        for cap in svg.split("cx=\"").skip(1) {
            let v: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=W).contains(&v));
        }
    }

    #[test]
    fn nice_ticks_cover_range() {
        let t = nice_ticks(0.0, 30.0, 6);
        assert!(t.len() >= 4 && t.len() <= 8, "{t:?}");
        assert!(t[0] >= 0.0 && *t.last().unwrap() <= 30.0 + 1e-9);
        // Degenerate range.
        assert_eq!(nice_ticks(5.0, 5.0, 6), vec![5.0]);
    }

    #[test]
    fn empty_series_renders() {
        let svg = line_chart("empty", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn single_point_series_renders() {
        let s = vec![Series {
            name: "solo".into(),
            points: vec![(2.0, 3.0)],
        }];
        let svg = line_chart("one", "x", "y", &s);
        assert!(svg.contains("circle"));
    }
}
