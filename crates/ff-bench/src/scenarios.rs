//! The five workload scenarios of §3.3.
//!
//! Each scenario bundles the replayed trace, the profile FlexFetch would
//! have recorded in a *prior* run (generated with a different seed — a
//! different execution of the same program, as §2.2 assumes), and any
//! disk-pinned files.

use ff_base::{Dur, Result};
use ff_profile::{Profile, Profiler};
use ff_sim::SimConfig;
use ff_trace::{Acroread, FileId, Grep, Make, Mplayer, Thunderbird, Trace, Workload, Xmms};

/// A ready-to-simulate experiment setup.
pub struct Scenario {
    /// Scenario name (figure caption).
    pub name: &'static str,
    /// The trace replayed in the experiment.
    pub trace: Trace,
    /// The prior-run profile FlexFetch starts from.
    pub profile: Profile,
    /// Files that exist only on the local disk (Fig. 4's xmms library).
    pub pinned: Vec<FileId>,
}

impl Scenario {
    /// Apply the scenario's pinned files to a config.
    pub fn configure(&self, cfg: SimConfig) -> SimConfig {
        cfg.with_disk_only_files(self.pinned.iter().copied())
    }

    /// §3.3.1 — the programming scenario: grep over the kernel tree, then
    /// a kernel build. Fails only if the workloads' inode namespaces ever
    /// overlap (a workload-generator bug).
    pub fn grep_make(seed: u64) -> Result<Scenario> {
        let build = |s: u64| -> Result<Trace> {
            let grep = Grep::default().build(s);
            let make = Make::default().build(s);
            grep.concat(&make, Dur::from_secs(2))
        };
        let trace = build(seed)?;
        // The profile comes from a previous execution: same program,
        // different run (seed), same shape.
        let profile = Profiler::standard().profile(&build(seed + 1)?);
        Ok(Scenario {
            name: "grep+make",
            trace,
            profile,
            pinned: Vec::new(),
        })
    }

    /// §3.3.2 — the media-streaming scenario.
    pub fn mplayer(seed: u64) -> Result<Scenario> {
        let trace = Mplayer::default().build(seed);
        let profile = Profiler::standard().profile(&Mplayer::default().build(seed + 1));
        Ok(Scenario {
            name: "mplayer",
            trace,
            profile,
            pinned: Vec::new(),
        })
    }

    /// §3.3.3 — the email search scenario.
    pub fn thunderbird(seed: u64) -> Result<Scenario> {
        let trace = Thunderbird::default().build(seed);
        let profile = Profiler::standard().profile(&Thunderbird::default().build(seed + 1));
        Ok(Scenario {
            name: "thunderbird",
            trace,
            profile,
            pinned: Vec::new(),
        })
    }

    /// §3.3.4 — grep+make with xmms running concurrently; the MP3 library
    /// exists only on the local disk, forcing it to spin.
    pub fn grep_make_xmms(seed: u64) -> Result<Scenario> {
        let gm = Scenario::grep_make(seed)?;
        // Play music for the whole programming session.
        let span = gm.trace.stats().span + Dur::from_secs(30);
        let xmms = Xmms {
            play_limit: Some(span),
            ..Xmms::default()
        }
        .build(seed);
        let pinned: Vec<FileId> = xmms.files.iter().map(|f| f.id).collect();
        let trace = gm.trace.merge(&xmms)?;
        Ok(Scenario {
            name: "grep+make||xmms",
            trace,
            profile: gm.profile,
            pinned,
        })
    }

    /// §3.3.5 — Acroread searching 20 MB PDFs every 10 s, driven by an
    /// out-of-date profile recorded over 2 MB PDFs read every 25 s.
    pub fn acroread_invalid(seed: u64) -> Result<Scenario> {
        let trace = Acroread::large_search().build(seed);
        let profile = Profiler::standard().profile(&Acroread::small_profile().build(seed + 1));
        Ok(Scenario {
            name: "acroread",
            trace,
            profile,
            pinned: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grep_make_scenario_is_consistent() {
        let s = Scenario::grep_make(1).unwrap();
        s.trace.validate().unwrap();
        assert!(!s.profile.is_empty());
        assert!(s.pinned.is_empty());
        // Profile differs from the replayed trace (different run) but has
        // the same order of magnitude of data.
        let replay = s.trace.total_bytes().get() as f64;
        let prof = s.profile.total_bytes().get() as f64;
        assert!((replay / prof - 1.0).abs() < 0.2);
    }

    #[test]
    fn xmms_scenario_pins_the_library() {
        let s = Scenario::grep_make_xmms(1).unwrap();
        s.trace.validate().unwrap();
        assert_eq!(s.pinned.len(), 116);
        // Pinned files must actually appear in the merged trace.
        assert!(s.trace.records.iter().any(|r| s.pinned.contains(&r.file)));
        // The profile covers only grep+make, not xmms.
        assert_eq!(s.profile.app, "grep+make");
    }

    #[test]
    fn acroread_profile_mismatch_is_real() {
        let s = Scenario::acroread_invalid(1).unwrap();
        // Current run requests 10× the profiled bytes (20 MB vs 2 MB files).
        let ratio = s.trace.total_bytes().get() as f64 / s.profile.total_bytes().get() as f64;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }
}
