//! The chaos matrix: scripted fault scenarios × policies × workloads.
//!
//! Backs the `benchfaults` binary (`bench/BENCH_faults.json`) and the
//! repo-level `tests/chaos.rs` harness. A *fault scenario* is a named,
//! deterministic [`FaultPlan`] scaled to the workload's recorded span,
//! so the same scenario stresses a 40 s grep and a 10 min mplayer run
//! at proportionate instants. [`check_invariants`] is the shared
//! robustness oracle: whatever the schedule does, every request must be
//! served, energy must stay finite and non-negative, device state
//! machines must stay legal, and the counters must be consistent with
//! the event log.

use crate::observe::{build_policy, build_workload, ObservedRun};
use crate::pool;
use ff_base::json::Value;
use ff_base::{Dur, Error, Result};
use ff_sim::{EventLog, FaultPlan, ProfileFaultMode, SimConfig, Simulation};
use ff_trace::Trace;

/// The named fault scenarios of the chaos matrix.
pub const FAULT_SCENARIOS: [&str; 6] = [
    "baseline",
    "link-outage",
    "bandwidth-fade",
    "server-flap",
    "disk-storm",
    "everything",
];

/// Build a named scenario's fault plan, scaled to a run of roughly
/// `span` simulated time. Deterministic: the same `(name, span)` always
/// yields the same plan.
///
/// ```
/// use ff_base::Dur;
/// let p = ff_bench::faults::fault_plan("link-outage", Dur::from_secs(120)).unwrap();
/// assert_eq!(p.faults.len(), 1);
/// assert!(ff_bench::faults::fault_plan("meteor-strike", Dur::from_secs(120)).is_err());
/// ```
pub fn fault_plan(name: &str, span: Dur) -> Result<FaultPlan> {
    // Keep every window meaningful even for very short runs.
    let span = span.max(Dur::from_secs(8));
    let plan = match name {
        "baseline" => FaultPlan::none(),
        "link-outage" => {
            FaultPlan::none().with_link_outage(span / 4, (span / 8).max(Dur::from_secs(2)))
        }
        "bandwidth-fade" => {
            FaultPlan::none().with_bandwidth_fade(span / 5, (span / 4).max(Dur::from_secs(2)), 1.0)
        }
        "server-flap" => FaultPlan::none()
            .with_server_outage(span / 6, (span / 10).max(Dur::from_secs(2)))
            .with_server_outage(span / 2, (span / 10).max(Dur::from_secs(2))),
        "disk-storm" => FaultPlan::none().with_disk_storm(
            span / 4,
            8,
            (span / 32).max(Dur::from_secs(1)),
            262_144,
        ),
        "everything" => FaultPlan::none()
            .with_bandwidth_fade(span / 8, (span / 8).max(Dur::from_secs(2)), 1.0)
            .with_link_outage(span / 3, (span / 8).max(Dur::from_secs(2)))
            .with_server_outage((span * 5) / 8, (span / 10).max(Dur::from_secs(2)))
            .with_disk_storm(span / 2, 6, (span / 24).max(Dur::from_secs(1)), 262_144)
            .with_profile_fault(span / 6, ProfileFaultMode::Corrupt),
        other => {
            return Err(Error::Config(format!(
                "unknown fault scenario '{other}' (expected one of {})",
                FAULT_SCENARIOS.join(", ")
            )))
        }
    };
    plan.validate()?;
    Ok(plan)
}

/// Replay `workload` under `policy` with the named fault scenario
/// injected and an [`EventLog`] attached.
pub fn fault_run(workload: &str, policy: &str, scenario: &str, seed: u64) -> Result<ObservedRun> {
    let trace = build_workload(workload, seed)?;
    let plan = fault_plan(scenario, trace.stats().span)?;
    let kind = build_policy(policy, workload, seed)?;
    let mut log = EventLog::new();
    let report = Simulation::new(SimConfig::default().with_faults(plan), &trace)
        .policy(kind)
        .run_recorded(&mut log)?;
    Ok(ObservedRun { report, log })
}

/// One evaluated chaos-matrix cell: identity, the observed run, and the
/// oracle's verdicts.
pub struct FaultCell {
    /// Workload axis value.
    pub workload: String,
    /// Policy axis value.
    pub policy: String,
    /// Fault-scenario axis value.
    pub scenario: String,
    /// The run's report and event log.
    pub run: ObservedRun,
    /// Robustness-oracle findings (empty = the cell survived).
    pub violations: Vec<String>,
}

/// Run the full workload × policy × scenario chaos matrix on `jobs`
/// pool workers (`0` = one per hardware thread). Cells come back in
/// canonical order (workload-major, then policy, then scenario) and are
/// byte-identical for any `jobs` — each cell is one independent,
/// seed-deterministic simulation and the pool merges in task order.
pub fn fault_matrix(
    workloads: &[&str],
    policies: &[&str],
    scenarios: &[&str],
    seed: u64,
    jobs: usize,
) -> Result<Vec<FaultCell>> {
    let mut specs: Vec<(&str, &str, &str)> = Vec::new();
    for &w in workloads {
        for &p in policies {
            for &s in scenarios {
                specs.push((w, p, s));
            }
        }
    }
    pool::run_ordered(jobs, &specs, |_, &(w, p, s)| -> Result<FaultCell> {
        let trace = build_workload(w, seed)?;
        let run = fault_run(w, p, s, seed)?;
        let violations = check_invariants(&trace, &run);
        Ok(FaultCell {
            workload: w.to_owned(),
            policy: p.to_owned(),
            scenario: s.to_owned(),
            run,
            violations,
        })
    })?
    .into_iter()
    .collect()
}

/// The chaos harness's robustness oracle. Returns one human-readable
/// string per violated invariant (empty = the run survived):
///
/// 1. every application request was served (none lost to a fault);
/// 2. the event log agrees with the report's request/retry counters;
/// 3. all energies are finite and non-negative, and the total adds up;
/// 4. the disk's spin FSM stayed legal (spin-ups and spin-downs
///    alternate, so their counts differ by at most one);
/// 5. a failover implies at least one timed-out attempt, and the
///    retry/failover counters are zero when no server outage ran;
/// 6. execution made progress (positive span, positive energy).
pub fn check_invariants(trace: &Trace, run: &ObservedRun) -> Vec<String> {
    let r = &run.report;
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };

    check(
        r.app_requests == trace.len() as u64,
        format!(
            "lost requests: {} served of {} traced",
            r.app_requests,
            trace.len()
        ),
    );
    check(
        run.log.count("app_call") == r.app_requests,
        format!(
            "event log disagrees: {} app_call events vs {} app_requests",
            run.log.count("app_call"),
            r.app_requests
        ),
    );
    check(
        run.log.count("request_retry") == r.retries,
        format!(
            "event log disagrees: {} request_retry events vs {} retries",
            run.log.count("request_retry"),
            r.retries
        ),
    );

    for (name, j) in [
        ("disk", r.disk_energy),
        ("wnic", r.wnic_energy),
        ("flash", r.flash_energy),
        ("total", r.total_energy()),
    ] {
        check(
            j.get().is_finite() && j.get() >= 0.0,
            format!("{name} energy is not a finite non-negative number: {j}"),
        );
    }
    let parts = (r.disk_energy + r.wnic_energy + r.flash_energy).get();
    check(
        (r.total_energy().get() - parts).abs() <= 1e-6 * parts.max(1.0),
        format!("total energy {} != sum of parts {parts}", r.total_energy()),
    );

    let ups = r.disk_meter.transition_count("spin_up");
    let downs = r.disk_meter.transition_count("spin_down");
    check(
        ups.abs_diff(downs) <= 1,
        format!("disk FSM illegal: {ups} spin-ups vs {downs} spin-downs"),
    );

    check(
        r.failovers == 0 || r.retries > 0,
        format!(
            "{} failovers without a single timed-out attempt",
            r.failovers
        ),
    );

    check(
        !r.exec_time.is_zero(),
        "run finished in zero simulated time".into(),
    );
    check(r.total_energy().get() > 0.0, "run drew zero energy".into());

    violations
}

/// One chaos-matrix cell as a JSON object (deterministic field order).
pub fn cell_json(
    workload: &str,
    policy: &str,
    scenario: &str,
    run: &ObservedRun,
    violations: &[String],
) -> Value {
    let r = &run.report;
    Value::Object(vec![
        ("workload".into(), Value::Str(workload.into())),
        ("policy".into(), Value::Str(policy.into())),
        ("scenario".into(), Value::Str(scenario.into())),
        ("total_j".into(), Value::Float(r.total_energy().get())),
        ("exec_time_us".into(), Value::UInt(r.exec_time.as_micros())),
        ("app_requests".into(), Value::UInt(r.app_requests)),
        ("faults_injected".into(), Value::UInt(r.faults_injected)),
        ("retries".into(), Value::UInt(r.retries)),
        ("failovers".into(), Value::UInt(r.failovers)),
        ("decisions".into(), Value::UInt(r.decisions.len() as u64)),
        ("events".into(), Value::UInt(run.log.len() as u64)),
        (
            "violations".into(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_resolves_and_scales() {
        for s in FAULT_SCENARIOS {
            let plan = fault_plan(s, Dur::from_secs(100)).unwrap();
            assert!(plan.validate().is_ok(), "{s}");
            // Even a degenerate span yields a valid plan.
            let tiny = fault_plan(s, Dur::ZERO).unwrap();
            assert!(tiny.validate().is_ok(), "{s} at zero span");
        }
        assert!(fault_plan("meteor-strike", Dur::from_secs(100)).is_err());
        assert_eq!(
            fault_plan("baseline", Dur::from_secs(100)).unwrap(),
            FaultPlan::none()
        );
    }

    #[test]
    fn clean_run_passes_the_oracle() {
        let trace = build_workload("grep", 42).unwrap();
        let run = fault_run("grep", "disk", "baseline", 42).unwrap();
        let violations = check_invariants(&trace, &run);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(run.report.faults_injected, 0);
    }

    #[test]
    fn faulted_run_passes_the_oracle() {
        let trace = build_workload("grep", 42).unwrap();
        let run = fault_run("grep", "flexfetch", "everything", 42).unwrap();
        let violations = check_invariants(&trace, &run);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(run.report.faults_injected > 0);
    }

    #[test]
    fn oracle_notices_a_lost_request() {
        let trace = build_workload("grep", 42).unwrap();
        let mut run = fault_run("grep", "disk", "baseline", 42).unwrap();
        run.report.app_requests -= 1;
        let violations = check_invariants(&trace, &run);
        assert!(violations.iter().any(|v| v.contains("lost requests")));
    }
}
