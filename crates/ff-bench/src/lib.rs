//! # ff-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§3):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `tables` | Tables 1–3 (device constants, workload inventory) |
//! | `fig1` | Fig. 1(a)/(b) — grep+make energy vs WNIC latency / bandwidth |
//! | `fig2` | Fig. 2(a)/(b) — mplayer |
//! | `fig3` | Fig. 3(a)/(b) — Thunderbird |
//! | `fig4` | Fig. 4(a)/(b) — grep+make ∥ xmms (forced spin-up) |
//! | `fig5` | Fig. 5(a)/(b) — Acroread with an invalid profile |
//! | `ablation` | design-knob studies (stage length, loss rate, …) |
//!
//! Each binary prints the figure's series as an aligned table and a CSV
//! block, so results can be diffed against EXPERIMENTS.md.

pub mod faults;
pub mod grid;
pub mod observe;
pub mod pool;
pub mod scenarios;
pub mod svg;
pub mod sweep;

pub use faults::{
    cell_json, check_invariants, fault_matrix, fault_plan, fault_run, FaultCell, FAULT_SCENARIOS,
};
pub use grid::{sim_matrix_json, Grid, GridCell, SimCell};
pub use pool::{default_jobs, resolve_jobs, run_ordered};
pub use scenarios::Scenario;
pub use svg::{line_chart, rows_to_series};
pub use sweep::{
    bandwidth_sweep, bandwidth_sweep_jobs, latency_sweep, latency_sweep_jobs, print_csv,
    print_table, standard_policies, Row, BANDWIDTHS_MBPS, LATENCIES_MS,
};
