//! `benchfaults` — the chaos matrix runner.
//!
//! Sweeps every named fault scenario over every policy for a set of
//! workloads on the work-stealing pool (`--jobs N`, default one worker
//! per hardware thread), runs the shared robustness oracle on each
//! cell, verifies one cell replays to a byte-identical event log, and
//! writes `bench/BENCH_faults.json` (schema documented in
//! `docs/benchmarks.md`). Every field of the artifact is deterministic
//! for a fixed seed — and identical for any `--jobs` value. Exits
//! non-zero if any cell violates an invariant or the replay diverges.
//!
//! ```text
//! cargo run --release -p ff-bench --bin benchfaults \
//!     [-- --seed 42 --jobs 8 --out bench/BENCH_faults.json]
//! ```

use ff_base::json::Value;
use ff_bench::faults::{cell_json, fault_matrix, fault_run, FAULT_SCENARIOS};
use ff_bench::observe::POLICIES;
use std::path::PathBuf;

/// The matrix's workload axis: the dense reader, the long sparse
/// streamer, and the bursty searcher — the three fault-response shapes.
const MATRIX_WORKLOADS: [&str; 3] = ["grep", "xmms", "thunderbird"];

fn main() {
    let mut seed: u64 = 42;
    let mut jobs: usize = 0;
    let mut out = PathBuf::from("bench/BENCH_faults.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--out" => out = PathBuf::from(args.next().expect("--out PATH")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: benchfaults [--seed N] [--jobs N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let matrix = fault_matrix(&MATRIX_WORKLOADS, &POLICIES, &FAULT_SCENARIOS, seed, jobs)
        .expect("matrix cells use validated names");

    let mut cells = Vec::new();
    let mut total_violations = 0usize;
    println!(
        "{:<13} {:<18} {:<15} {:>10} {:>7} {:>6} {:>6} {:>10}",
        "workload", "policy", "scenario", "total_j", "faults", "retry", "fail", "violations"
    );
    for cell in &matrix {
        let r = &cell.run.report;
        println!(
            "{:<13} {:<18} {:<15} {:>9.1}J {:>7} {:>6} {:>6} {:>10}",
            cell.workload,
            r.policy,
            cell.scenario,
            r.total_energy().get(),
            r.faults_injected,
            r.retries,
            r.failovers,
            cell.violations.len()
        );
        for v in &cell.violations {
            eprintln!(
                "  VIOLATION [{}/{}/{}]: {v}",
                cell.workload, cell.policy, cell.scenario
            );
        }
        total_violations += cell.violations.len();
        cells.push(cell_json(
            &cell.workload,
            &cell.policy,
            &cell.scenario,
            &cell.run,
            &cell.violations,
        ));
    }

    // Determinism spot check: the densest cell must replay to a
    // byte-identical event log.
    let a = fault_run("grep", "flexfetch", "everything", seed).expect("replay cell");
    let b = fault_run("grep", "flexfetch", "everything", seed).expect("replay cell");
    let replay_identical = a.log.to_jsonl() == b.log.to_jsonl();
    if !replay_identical {
        eprintln!("VIOLATION: replay of grep/flexfetch/everything diverged");
    }

    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("faults".into())),
        ("schema".into(), Value::UInt(1)),
        ("seed".into(), Value::UInt(seed)),
        (
            "command".into(),
            Value::Str("cargo run --release -p ff-bench --bin benchfaults".into()),
        ),
        ("replay_identical".into(), Value::Bool(replay_identical)),
        (
            "total_violations".into(),
            Value::UInt(total_violations as u64),
        ),
        ("cells".into(), Value::Array(cells)),
    ]);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create bench dir");
    }
    std::fs::write(&out, format!("{}\n", doc.to_pretty())).expect("write BENCH_faults.json");
    eprintln!("wrote {}", out.display());

    if total_violations > 0 || !replay_identical {
        std::process::exit(1);
    }
}
