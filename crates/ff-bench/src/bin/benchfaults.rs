//! `benchfaults` — the chaos matrix runner.
//!
//! Sweeps every named fault scenario over every policy for a set of
//! workloads, runs the shared robustness oracle on each cell, verifies
//! one cell replays to a byte-identical event log, and writes
//! `bench/BENCH_faults.json` (schema documented in EXPERIMENTS.md).
//! Exits non-zero if any cell violates an invariant or the replay
//! diverges.
//!
//! ```text
//! cargo run --release -p ff-bench --bin benchfaults \
//!     [-- --seed 42 --out bench/BENCH_faults.json]
//! ```

use ff_base::json::Value;
use ff_bench::faults::{cell_json, check_invariants, fault_run, FAULT_SCENARIOS};
use ff_bench::observe::{build_workload, POLICIES};
use std::path::PathBuf;

/// The matrix's workload axis: the dense reader, the long sparse
/// streamer, and the bursty searcher — the three fault-response shapes.
const MATRIX_WORKLOADS: [&str; 3] = ["grep", "xmms", "thunderbird"];

fn main() {
    let mut seed: u64 = 42;
    let mut out = PathBuf::from("bench/BENCH_faults.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out = PathBuf::from(args.next().expect("--out PATH")),
            other => {
                eprintln!("unknown flag {other}; usage: benchfaults [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut cells = Vec::new();
    let mut total_violations = 0usize;
    println!(
        "{:<13} {:<18} {:<15} {:>10} {:>7} {:>6} {:>6} {:>10}",
        "workload", "policy", "scenario", "total_j", "faults", "retry", "fail", "violations"
    );
    for workload in MATRIX_WORKLOADS {
        let trace = build_workload(workload, seed).expect("matrix workloads are fixed");
        for policy in POLICIES {
            for scenario in FAULT_SCENARIOS {
                let run = fault_run(workload, policy, scenario, seed)
                    .expect("matrix cells use validated names");
                let violations = check_invariants(&trace, &run);
                println!(
                    "{:<13} {:<18} {:<15} {:>9.1}J {:>7} {:>6} {:>6} {:>10}",
                    workload,
                    run.report.policy,
                    scenario,
                    run.report.total_energy().get(),
                    run.report.faults_injected,
                    run.report.retries,
                    run.report.failovers,
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  VIOLATION [{workload}/{policy}/{scenario}]: {v}");
                }
                total_violations += violations.len();
                cells.push(cell_json(workload, policy, scenario, &run, &violations));
            }
        }
    }

    // Determinism spot check: the densest cell must replay to a
    // byte-identical event log.
    let a = fault_run("grep", "flexfetch", "everything", seed).expect("replay cell");
    let b = fault_run("grep", "flexfetch", "everything", seed).expect("replay cell");
    let replay_identical = a.log.to_jsonl() == b.log.to_jsonl();
    if !replay_identical {
        eprintln!("VIOLATION: replay of grep/flexfetch/everything diverged");
    }

    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("faults".into())),
        ("schema".into(), Value::UInt(1)),
        ("seed".into(), Value::UInt(seed)),
        (
            "command".into(),
            Value::Str("cargo run --release -p ff-bench --bin benchfaults".into()),
        ),
        ("replay_identical".into(), Value::Bool(replay_identical)),
        (
            "total_violations".into(),
            Value::UInt(total_violations as u64),
        ),
        ("cells".into(), Value::Array(cells)),
    ]);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create bench dir");
    }
    std::fs::write(&out, format!("{}\n", doc.to_pretty())).expect("write BENCH_faults.json");
    eprintln!("wrote {}", out.display());

    if total_violations > 0 || !replay_identical {
        std::process::exit(1);
    }
}
