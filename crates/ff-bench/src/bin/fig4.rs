//! Figure 4 — *grep+make ∥ xmms* (forced disk spin-up), §3.3.4. The MP3
//! library exists only on the local disk, so the disk stays awake;
//! adaptive FlexFetch free-rides it while FlexFetch-static wastes the
//! WNIC. Expected shape: FlexFetch well below FlexFetch-static at low
//! latency; the curves merge as latency rises.

use ff_bench::{bandwidth_sweep, latency_sweep, print_csv, print_table};
use ff_bench::{Scenario, BANDWIDTHS_MBPS, LATENCIES_MS};
use ff_policy::PolicyKind;

fn main() {
    let scenario = Scenario::grep_make_xmms(42).expect("scenario builds");
    let policies = vec![
        PolicyKind::flexfetch(scenario.profile.clone()),
        PolicyKind::flexfetch_static(scenario.profile.clone()),
        PolicyKind::BlueFs,
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ];

    let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
    print_table(
        "Fig 4(a) grep+make||xmms: energy vs WNIC latency",
        "lat(ms)",
        &a,
    );
    print_csv(&a);

    let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
    print_table(
        "Fig 4(b) grep+make||xmms: energy vs WNIC bandwidth",
        "bw(Mbps)",
        &b,
    );
    print_csv(&b);
}
