//! Tables 1–3 of the paper: the device constants actually configured in
//! the models, and the Table 3 inventory measured from the generated
//! workloads.

use ff_device::{DiskParams, WnicParams};
use ff_trace::{Acroread, Grep, Make, Mplayer, Thunderbird, Workload, Xmms};

fn main() {
    let d = DiskParams::hitachi_dk23da();
    println!("== Table 1: Hitachi DK23DA hard disk ==");
    println!("{:<28} {}", "Active Power", d.active_power);
    println!("{:<28} {}", "Idle Power", d.idle_power);
    println!("{:<28} {}", "Standby Power", d.standby_power);
    println!("{:<28} {}", "Spin up Energy", d.spinup_energy);
    println!("{:<28} {}", "Spin down Energy", d.spindown_energy);
    println!("{:<28} {}", "Spin up Time", d.spinup_time);
    println!("{:<28} {}", "Spin down Time", d.spindown_time);
    println!("{:<28} {}", "Timeout (laptop mode)", d.timeout);
    println!("{:<28} {} / {}", "Avg seek / rotation", d.seek, d.rotation);
    println!("{:<28} {}", "Peak bandwidth", d.bandwidth);
    println!("{:<28} {}", "Break-even time", d.break_even());

    let w = WnicParams::cisco_aironet350();
    println!("\n== Table 2: Cisco Aironet 350 WNIC ==");
    println!(
        "{:<28} {} / {} / {}",
        "PSM (idle/recv/send)", w.psm_idle, w.psm_recv, w.psm_send
    );
    println!(
        "{:<28} {} / {} / {}",
        "CAM (idle/recv/send)", w.cam_idle, w.cam_recv, w.cam_send
    );
    println!(
        "{:<28} {} / {}",
        "CAM to PSM (delay/energy)", w.to_psm_time, w.to_psm_energy
    );
    println!(
        "{:<28} {} / {}",
        "PSM to CAM (delay/energy)", w.to_cam_time, w.to_cam_energy
    );
    println!("{:<28} {}", "PSM timeout", w.psm_timeout);
    println!("{:<28} {}", "Bandwidth", w.bandwidth);

    println!("\n== Table 3: trace inventory (generated, seed 42) ==");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>12}",
        "Name", "# File", "Size(MB)", "records", "requested MB"
    );
    let workloads: Vec<(Box<dyn Workload>, &str)> = vec![
        (Box::new(Thunderbird::default()), "email client"),
        (Box::new(Make::default()), "kernel build"),
        (Box::new(Grep::default()), "text search"),
        (Box::new(Xmms::default()), "mp3 player"),
        (Box::new(Mplayer::default()), "movie player"),
        (Box::new(Acroread::large_search()), "PDF reader"),
    ];
    for (w, _desc) in &workloads {
        let t = w.build(42);
        let s = t.stats();
        println!(
            "{:<14} {:>8} {:>10.1} {:>10} {:>12.1}",
            t.name,
            s.files,
            s.footprint.get() as f64 / 1e6,
            s.records,
            s.requested.get() as f64 / 1e6,
        );
    }
}
