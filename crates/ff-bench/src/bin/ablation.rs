//! Ablation studies over the design knobs DESIGN.md calls out: what do
//! the paper's parameter choices (20 ms burst threshold, 40 s stages,
//! 25 % loss rate, 20 s disk timeout, 2Q + 32-page readahead cache) buy?
//!
//! Each study holds everything else at the defaults and sweeps one knob
//! on the grep+make scenario (FlexFetch) — or, where noted, a baseline.

use ff_base::{Bytes, Dur, Joules};
use ff_bench::Scenario;
use ff_cache::CacheConfig;
use ff_policy::{BlueFs, FlexFetch, FlexFetchConfig, PolicyKind};
use ff_profile::BurstExtractor;
use ff_sim::{SimConfig, Simulation};
use ff_trace::Workload as _;

fn run_flexfetch(scenario: &Scenario, cfg: SimConfig, pcfg: FlexFetchConfig) -> (f64, f64) {
    let cfg = scenario.configure(cfg);
    let policy = FlexFetch::new(scenario.profile.clone(), pcfg);
    let r = Simulation::new(cfg, &scenario.trace)
        .policy_boxed(Box::new(policy))
        .run()
        .unwrap();
    (r.total_energy().get(), r.exec_time.as_secs_f64())
}

fn main() {
    let s = Scenario::grep_make(42).expect("scenario builds");
    println!("ablations on grep+make (seed 42); defaults marked *\n");

    println!("== loss rate (§2.2 rule 3; default 0.25) ==");
    println!("{:>10} {:>12} {:>10}", "loss", "energy", "time");
    for loss in [0.0, 0.10, 0.25, 0.50, 1.00] {
        let pcfg = FlexFetchConfig {
            loss_rate: loss,
            ..Default::default()
        };
        let (e, t) = run_flexfetch(&s, SimConfig::default(), pcfg);
        let mark = if (loss - 0.25).abs() < 1e-9 { "*" } else { " " };
        println!("{loss:>9}{mark} {e:>11.1}J {t:>9.1}s");
    }

    println!("\n== evaluation stage length (§2.2; default 40 s) ==");
    println!("{:>10} {:>12} {:>10}", "stage", "energy", "time");
    for secs in [10u64, 20, 40, 80, 160] {
        let pcfg = FlexFetchConfig {
            stage_len: Dur::from_secs(secs),
            ..Default::default()
        };
        let cfg = SimConfig {
            stage_len: Dur::from_secs(secs),
            ..Default::default()
        };
        let (e, t) = run_flexfetch(&s, cfg, pcfg);
        let mark = if secs == 40 { "*" } else { " " };
        println!("{:>9}{mark} {e:>11.1}J {t:>9.1}s", format!("{secs}s"));
    }

    println!("\n== burst threshold (§2.1; default 20 ms = disk access time) ==");
    println!("(the recorded profile is re-extracted with each threshold)");
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "thresh", "energy", "time", "bursts"
    );
    let prior = ff_trace::Grep::default()
        .build(43)
        .concat(&ff_trace::Make::default().build(43), Dur::from_secs(2))
        .unwrap();
    for ms in [2u64, 10, 20, 50, 200] {
        let extractor = BurstExtractor {
            threshold: Dur::from_millis(ms),
            ..Default::default()
        };
        let profile = ff_profile::Profile {
            app: prior.name.clone(),
            bursts: extractor.extract(&prior),
        };
        let pcfg = FlexFetchConfig {
            extractor,
            ..Default::default()
        };
        let policy = FlexFetch::new(profile.clone(), pcfg);
        let r = Simulation::new(s.configure(SimConfig::default()), &s.trace)
            .policy_boxed(Box::new(policy))
            .run()
            .unwrap();
        let mark = if ms == 20 { "*" } else { " " };
        println!(
            "{:>9}{mark} {:>11.1}J {:>9.1}s {:>8}",
            format!("{ms}ms"),
            r.total_energy().get(),
            r.exec_time.as_secs_f64(),
            profile.len()
        );
    }

    println!("\n== audit hysteresis margin (default 0.10) ==");
    println!("{:>10} {:>12} {:>10}", "margin", "energy", "time");
    for m in [0.0, 0.05, 0.10, 0.30] {
        let pcfg = FlexFetchConfig {
            audit_margin: m,
            ..Default::default()
        };
        let (e, t) = run_flexfetch(&s, SimConfig::default(), pcfg);
        let mark = if (m - 0.10).abs() < 1e-9 { "*" } else { " " };
        println!("{m:>9}{mark} {e:>11.1}J {t:>9.1}s");
    }

    println!("\n== disk spin-down timeout (laptop-mode default 20 s) ==");
    println!("{:>10} {:>12} {:>12}", "timeout", "FlexFetch", "Disk-only");
    for secs in [5u64, 10, 20, 40, 120] {
        let mut cfg = SimConfig::default();
        cfg.disk.timeout = Dur::from_secs(secs);
        let (e, _) = run_flexfetch(&s, cfg.clone(), FlexFetchConfig::default());
        let r = Simulation::new(s.configure(cfg), &s.trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        let mark = if secs == 20 { "*" } else { " " };
        println!(
            "{:>9}{mark} {e:>11.1}J {:>11.1}J",
            format!("{secs}s"),
            r.total_energy().get()
        );
    }

    println!("\n== buffer-cache capacity (default 32768 pages = 128 MiB) ==");
    println!("{:>10} {:>12} {:>8}", "pages", "energy", "hit%");
    for pages in [2048usize, 8192, 32_768, 131_072] {
        let mut cfg = SimConfig::default();
        cfg.cache.capacity_pages = pages;
        let cfgd = s.configure(cfg.clone());
        let r = Simulation::new(cfgd, &s.trace)
            .policy(PolicyKind::flexfetch(s.profile.clone()))
            .run()
            .unwrap();
        let mark = if pages == 32_768 { "*" } else { " " };
        println!(
            "{pages:>9}{mark} {:>11.1}J {:>7.1}%",
            r.total_energy().get(),
            r.hit_ratio() * 100.0
        );
    }

    println!("\n== readahead window (default 32 pages = 128 KiB; 0 = off) ==");
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "pages", "energy", "disk reqs", "wnic reqs"
    );
    for ra in [0u64, 8, 32, 128] {
        let cfg = SimConfig {
            cache: CacheConfig {
                readahead_max_pages: ra,
                ..CacheConfig::default()
            },
            ..Default::default()
        };
        let r = Simulation::new(s.configure(cfg), &s.trace)
            .policy(PolicyKind::flexfetch(s.profile.clone()))
            .run()
            .unwrap();
        let mark = if ra == 32 { "*" } else { " " };
        println!(
            "{ra:>9}{mark} {:>11.1}J {:>10} {:>10}",
            r.total_energy().get(),
            r.disk_requests,
            r.wnic_requests
        );
    }

    println!("\n== BlueFS ghost-hint threshold (default 7.94 J = spin round trip) ==");
    println!("{:>10} {:>12}", "threshold", "energy");
    for j in [2.0, 7.94, 20.0, 100.0] {
        let policy = BlueFs::with_threshold(Joules(j));
        let r = Simulation::new(s.configure(SimConfig::default()), &s.trace)
            .policy_boxed(Box::new(policy))
            .run()
            .unwrap();
        let mark = if (j - 7.94).abs() < 1e-9 { "*" } else { " " };
        println!("{j:>9}{mark} {:>11.1}J", r.total_energy().get());
    }

    println!("\n== BlueFS adaptive spin-down (default: none / 20 s system timeout) ==");
    println!("{:>10} {:>12}", "timeout", "energy");
    for secs in [2u64, 5, 20] {
        let policy = BlueFs::new().with_disk_timeout(Dur::from_secs(secs));
        let r = Simulation::new(s.configure(SimConfig::default()), &s.trace)
            .policy_boxed(Box::new(policy))
            .run()
            .unwrap();
        let mark = if secs == 20 { "*" } else { " " };
        println!(
            "{:>9}{mark} {:>11.1}J",
            format!("{secs}s"),
            r.total_energy().get()
        );
    }

    println!("\n== single-packet PSM service (Table 2 adaptive PM; default 1500 B) ==");
    println!("{:>10} {:>12}", "psm pkt", "energy");
    for bytes in [0u64, 1500, 4096] {
        let mut cfg = SimConfig::default();
        cfg.wnic.psm_packet_bytes = bytes;
        let r = Simulation::new(s.configure(cfg), &s.trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        let mark = if bytes == 1500 { "*" } else { " " };
        println!("{bytes:>9}{mark} {:>11.1}J", r.total_energy().get());
    }
    let _ = Bytes::ZERO;
}
