//! The disk/WNIC phase diagram (extension).
//!
//! §1.1 argues the network wins when *"a small amount of data is
//! requested"* intermittently and the disk wins bursts; this experiment
//! maps the whole plane. A synthetic paced workload sweeps request size
//! × think time; each cell shows which fixed device is cheaper, and
//! whether FlexFetch (given an accurate profile) picked the winner.
//!
//! Legend: `D` disk cheaper, `W` WNIC cheaper; lowercase = FlexFetch
//! missed the winner (paid >5 % over the better fixed device).

use ff_base::{Bytes, Dist};
use ff_policy::PolicyKind;
use ff_profile::Profiler;
use ff_sim::{SimConfig, Simulation};
use ff_trace::{AccessPattern, Synthetic, Workload};

fn workload(chunk_kib: u64, think_secs: f64) -> Synthetic {
    Synthetic {
        name: "phase",
        files: 8,
        total_bytes: 64_000_000,
        size_dist: Dist::Constant(1.0),
        chunk: Bytes::kib(chunk_kib),
        think_dist: Dist::Constant(think_secs),
        pattern: AccessPattern::PacedStream,
        requests: 120,
        base_inode: 90_000,
        pid: 900,
    }
}

fn main() {
    let chunks = [4u64, 16, 64, 256, 1024];
    let thinks = [0.05, 0.2, 1.0, 2.0, 5.0, 10.0, 30.0];

    println!("disk/WNIC phase diagram — paced reads, 120 requests, 11 Mbps / 1 ms");
    println!("rows: think time between requests; cols: request size\n");
    print!("{:>9}", "think\\req");
    for c in chunks {
        print!(" {:>7}", format!("{c}KiB"));
    }
    println!();

    for &think in &thinks {
        print!("{:>8}s", think);
        for &chunk in &chunks {
            let w = workload(chunk, think);
            let trace = w.build(42);
            let profile = Profiler::standard().profile(&w.build(43));
            let run = |kind: PolicyKind| {
                Simulation::new(SimConfig::default(), &trace)
                    .policy(kind)
                    .run()
                    .unwrap()
                    .total_energy()
                    .get()
            };
            let disk = run(PolicyKind::DiskOnly);
            let wnic = run(PolicyKind::WnicOnly);
            let ff = run(PolicyKind::flexfetch(profile));
            let winner = if disk <= wnic { 'D' } else { 'W' };
            let best = disk.min(wnic);
            let matched = ff <= best * 1.05;
            let cell = if matched {
                winner
            } else {
                winner.to_ascii_lowercase()
            };
            print!(" {cell:>7}");
        }
        println!();
    }
    println!("\nD/W = cheaper fixed device; lowercase = FlexFetch >5% above it");
}
