//! `benchpar` — the parallel engine's determinism-and-speedup gate.
//!
//! Runs the full `benchsim` grid twice — once serially (`jobs = 1`,
//! the reference path) and once on the work-stealing pool (`--jobs N`,
//! default one worker per hardware thread) — then:
//!
//! 1. asserts the two schema-2 documents are **byte-identical** (the
//!    parallel engine's determinism contract; exit 1 on any diff), and
//! 2. writes the measured wall-clock speedup to
//!    `bench/BENCH_parallel.json` (schema documented in
//!    `docs/benchmarks.md`).
//!
//! ```text
//! cargo run --release -p ff-bench --bin benchpar \
//!     [-- --seed 42 --jobs 8 --out bench/BENCH_parallel.json]
//! ```
//!
//! Wall times and the speedup vary with the host (a single-core
//! container cannot beat 1x; the artifact records `cores` so readers
//! can judge); the byte-identity verdict is portable and is what the
//! `parallel-determinism` check step gates on.

use ff_base::json::Value;
use ff_bench::grid::sim_matrix_json;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut seed: u64 = 42;
    let mut jobs: usize = 0;
    let mut out = PathBuf::from("bench/BENCH_parallel.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--out" => out = PathBuf::from(args.next().expect("--out PATH")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: benchpar [--seed N] [--jobs N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let jobs = ff_bench::resolve_jobs(jobs);
    let cores = ff_bench::default_jobs();

    let t0 = Instant::now();
    let serial = sim_matrix_json(seed, 1).expect("serial grid");
    let serial_wall = t0.elapsed().as_secs_f64().max(1e-9);

    let t1 = Instant::now();
    let parallel = sim_matrix_json(seed, jobs).expect("parallel grid");
    let parallel_wall = t1.elapsed().as_secs_f64().max(1e-9);

    let serial_text = serial.to_pretty();
    let parallel_text = parallel.to_pretty();
    let identical = serial_text == parallel_text;
    let speedup = serial_wall / parallel_wall;
    let cells = serial
        .get("cells")
        .and_then(|c| c.as_array())
        .map(|c| c.len())
        .unwrap_or(0);

    println!(
        "grid: {cells} cells | serial {:.1} ms | jobs={jobs} {:.1} ms | speedup {speedup:.2}x | cores {cores} | byte-identical: {identical}",
        serial_wall * 1e3,
        parallel_wall * 1e3,
    );
    if !identical {
        eprintln!("VIOLATION: jobs=1 and jobs={jobs} documents differ — the parallel engine broke determinism");
    }

    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("parallel".into())),
        ("schema".into(), Value::UInt(1)),
        ("seed".into(), Value::UInt(seed)),
        (
            "command".into(),
            Value::Str("cargo run --release -p ff-bench --bin benchpar".into()),
        ),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("cores".into(), Value::UInt(cores as u64)),
        ("cells".into(), Value::UInt(cells as u64)),
        ("serial_wall_s".into(), Value::Float(serial_wall)),
        ("parallel_wall_s".into(), Value::Float(parallel_wall)),
        ("speedup".into(), Value::Float(speedup)),
        ("identical".into(), Value::Bool(identical)),
    ]);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create bench dir");
    }
    std::fs::write(&out, format!("{}\n", doc.to_pretty())).expect("write BENCH_parallel.json");
    eprintln!("wrote {}", out.display());

    if !identical {
        std::process::exit(1);
    }
}
