//! Diagnostics: per-policy energy breakdown and the FlexFetch decision
//! timeline for the grep+make scenario. Usage: `debug_probe [latency_ms]`.

use ff_base::Dur;
use ff_bench::{standard_policies, Scenario};
use ff_sim::{SimConfig, Simulation};

fn main() {
    let lat_ms: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let scenario = Scenario::grep_make(42).expect("scenario builds");
    for kind in standard_policies(&scenario) {
        let cfg =
            scenario.configure(SimConfig::default().with_wnic_latency(Dur::from_millis(lat_ms)));
        let r = Simulation::new(cfg, &scenario.trace)
            .policy(kind)
            .run()
            .unwrap();
        println!("{}", r.summary());
        print!("  disk: ");
        for (s, d, e) in r.disk_meter.residencies() {
            print!("{s}={d}/{e} ");
        }
        for (s, n, e) in r.disk_meter.transitions() {
            print!("{s}x{n}={e} ");
        }
        println!();
        print!("  wnic: ");
        for (s, d, e) in r.wnic_meter.residencies() {
            print!("{s}={d}/{e} ");
        }
        for (s, n, e) in r.wnic_meter.transitions() {
            print!("{s}x{n}={e} ");
        }
        println!();
        if !r.decisions.is_empty() {
            println!("  decisions:");
            for (t, s, why) in &r.decisions {
                println!("    {t} -> {} ({why})", s.label());
            }
        }
        println!();
    }
}
