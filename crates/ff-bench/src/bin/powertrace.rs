//! Export a chronological power trace of one simulation as CSV
//! (`t_start_s,t_end_s,device,state,watts`), suitable for gnuplot — the
//! kind of power timeline energy papers plot.
//!
//! Usage: `powertrace [policy]` with policy one of
//! `flexfetch|bluefs|disk|wnic` (default flexfetch); the scenario is the
//! paper's mplayer streaming workload, whose disk/WNIC alternation is
//! the most visually instructive.

use ff_bench::Scenario;
use ff_device::PowerEvent;
use ff_policy::PolicyKind;
use ff_sim::{SimConfig, Simulation};

fn dump(device: &str, log: &[PowerEvent]) {
    let mut t = 0.0f64;
    for e in log {
        match e {
            PowerEvent::Dwell { state, power, dur } => {
                let end = t + dur.as_secs_f64();
                println!("{t:.6},{end:.6},{device},{state},{:.3}", power.get());
                t = end;
            }
            PowerEvent::Transition { name, energy } => {
                println!("{t:.6},{t:.6},{device},{name},{:.3}", energy.get());
            }
        }
    }
}

fn main() {
    let policy = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "flexfetch".into());
    let s = Scenario::mplayer(42).expect("scenario builds");
    let kind = match policy.as_str() {
        "flexfetch" => PolicyKind::flexfetch(s.profile.clone()),
        "bluefs" => PolicyKind::BlueFs,
        "disk" => PolicyKind::DiskOnly,
        "wnic" => PolicyKind::WnicOnly,
        other => {
            eprintln!("unknown policy {other}");
            std::process::exit(2);
        }
    };
    let mut cfg = s.configure(SimConfig::default());
    cfg.record_power_log = true;
    let report = Simulation::new(cfg, &s.trace).policy(kind).run().unwrap();
    eprintln!("# {}", report.summary());
    println!("t_start_s,t_end_s,device,state,watts_or_joules");
    dump("disk", report.disk_meter.power_log().expect("enabled"));
    dump("wnic", report.wnic_meter.power_log().expect("enabled"));
}
