//! Extension experiments beyond the paper's evaluation, covering its §5
//! future-work items:
//!
//! 1. **Partial hoarding** — the paper assumes the full working set is
//!    replicated locally. Here the hoard budget shrinks: the
//!    history-driven [`HoardPlanner`] keeps the hottest files on disk
//!    and everything else becomes WNIC-only, squeezing FlexFetch's
//!    freedom of choice.
//! 2. **Write synchronisation** — the paper defers sync to the hoarding
//!    system. With `sync_writes` every flushed dirty page is also
//!    uploaded to the server; the energy overhead is measured on the
//!    write-heavy kernel build.

use ff_base::{Bytes, Dur};
use ff_bench::Scenario;
use ff_policy::PolicyKind;
use ff_profile::HoardPlanner;
use ff_sim::{SimConfig, Simulation};
use ff_trace::Workload as _;

fn main() {
    hoarding_budget();
    write_sync();
    mobility();
    outage();
    flash_tier();
}

/// §4's SmartSaver, attached: a CompactFlash tier absorbs re-reads the
/// small RAM cache cannot hold and buffers writes for the sleeping
/// disk. Measured on a re-read-heavy session (grep twice) with a
/// deliberately small RAM cache.
fn flash_tier() {
    println!("== extension: flash tier (grep x2, 16 MiB RAM cache) ==");
    let one = ff_trace::Grep::default().build(42);
    let twice = one
        .concat(&ff_trace::Grep::default().build(42), Dur::from_secs(30))
        .unwrap();
    let profile = ff_profile::Profiler::standard().profile(
        &ff_trace::Grep::default()
            .build(43)
            .concat(&ff_trace::Grep::default().build(43), Dur::from_secs(30))
            .unwrap(),
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "flash", "FlexFetch", "Disk-only", "WNIC-only"
    );
    for flash_mb in [0usize, 64, 256] {
        let cfg = || {
            let mut c = SimConfig::default();
            c.cache.capacity_pages = 4096; // 16 MiB RAM
            if flash_mb > 0 {
                c = c.with_flash_mb(flash_mb);
            }
            c
        };
        let run = |kind: PolicyKind| {
            Simulation::new(cfg(), &twice)
                .policy(kind)
                .run()
                .unwrap()
                .total_energy()
                .get()
        };
        println!(
            "{:>7}MB {:>11.1}J {:>11.1}J {:>11.1}J",
            flash_mb,
            run(PolicyKind::flexfetch(profile.clone())),
            run(PolicyKind::DiskOnly),
            run(PolicyKind::WnicOnly),
        );
    }
    println!("(the second grep pass is served from flash at ~mW instead of a device)");
}

/// §2.3's "wireless network bandwidth changes due to … change of device
/// location", made concrete: the link degrades 11 → 1 Mbps mid-run.
/// Adaptive FlexFetch re-evaluates and abandons the crawling link; the
/// static variant keeps trusting its profile.
fn mobility() {
    println!("== extension: mid-run bandwidth degradation (mplayer, 11->1 Mbps at t=120 s) ==");
    let s = Scenario::mplayer(42).expect("scenario builds");
    let cfg = || {
        s.configure(SimConfig::default())
            .with_bandwidth_change(Dur::from_secs(120), 1.0)
    };
    println!("{:>18} {:>12} {:>10}", "policy", "energy", "time");
    for kind in [
        PolicyKind::flexfetch(s.profile.clone()),
        PolicyKind::flexfetch_static(s.profile.clone()),
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ] {
        let r = Simulation::new(cfg(), &s.trace).policy(kind).run().unwrap();
        println!(
            "{:>18} {:>11.1}J {:>9.1}s",
            r.policy,
            r.total_energy().get(),
            r.exec_time.as_secs_f64()
        );
    }
    println!();
}

/// Failure injection: a 3-minute wireless outage in the middle of the
/// kernel build. Requests fail over to the disk; FlexFetch's stage-end
/// audit sees the measured disk traffic and keeps functioning.
fn outage() {
    println!("== extension: 180 s wireless outage during grep+make (t=300..480 s) ==");
    let s = Scenario::grep_make(42).expect("scenario builds");
    let cfg = || {
        s.configure(SimConfig::default())
            .with_wnic_outage(Dur::from_secs(300), Dur::from_secs(480))
    };
    println!("{:>18} {:>12} {:>12}", "policy", "no outage", "with outage");
    for kind in [
        PolicyKind::flexfetch(s.profile.clone()),
        PolicyKind::WnicOnly,
        PolicyKind::DiskOnly,
    ] {
        let plain = Simulation::new(s.configure(SimConfig::default()), &s.trace)
            .policy(kind.clone())
            .run()
            .unwrap();
        let out = Simulation::new(cfg(), &s.trace)
            .policy(kind.clone())
            .run()
            .unwrap();
        println!(
            "{:>18} {:>11.1}J {:>11.1}J",
            kind.label(),
            plain.total_energy().get(),
            out.total_energy().get()
        );
    }
    println!("(Disk-only is untouched; network-leaning schemes absorb a disk detour)");
}

fn hoarding_budget() {
    println!("== extension: energy vs hoard budget (thunderbird, FlexFetch) ==");
    println!("(files that do not fit the budget are only reachable over the WNIC)");
    let s = Scenario::thunderbird(42).expect("scenario builds");
    let total = s.trace.files.total_size();
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "budget", "bytes%", "files", "FlexFetch", "WNIC-only", "wnic MB"
    );
    for pct in [100u64, 75, 50, 25, 10, 0] {
        let budget = Bytes(total.get() * pct / 100);
        let plan = HoardPlanner::new(budget).plan(&s.profile, &s.trace.files);
        let cfg = || {
            s.configure(SimConfig::default())
                .with_network_only_files(plan.missed.iter().copied())
        };
        let ff = Simulation::new(cfg(), &s.trace)
            .policy(PolicyKind::flexfetch(s.profile.clone()))
            .run()
            .unwrap();
        let wnic = Simulation::new(cfg(), &s.trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        println!(
            "{:>9}% {:>9.0}% {:>10} {:>11.1}J {:>11.1}J {:>10.1}",
            pct,
            plan.hoarded_bytes.get() as f64 / total.get() as f64 * 100.0,
            plan.hoarded.len(),
            ff.total_energy().get(),
            wnic.total_energy().get(),
            ff.wnic_bytes.get() as f64 / 1e6,
        );
    }
    println!("(at 0% every scheme degenerates to WNIC-only behaviour)\n");
}

fn write_sync() {
    println!("== extension: write-synchronisation overhead (grep+make) ==");
    let s = Scenario::grep_make(42).expect("scenario builds");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "policy", "no sync", "sync", "overhead"
    );
    for kind in [
        PolicyKind::flexfetch(s.profile.clone()),
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ] {
        let plain = Simulation::new(s.configure(SimConfig::default()), &s.trace)
            .policy(kind.clone())
            .run()
            .unwrap();
        let synced = Simulation::new(
            s.configure(SimConfig::default().with_sync_writes()),
            &s.trace,
        )
        .policy(kind.clone())
        .run()
        .unwrap();
        let over = synced.total_energy().get() - plain.total_energy().get();
        println!(
            "{:>12} {:>11.1}J {:>11.1}J {:>+11.1}J",
            kind.label(),
            plain.total_energy().get(),
            synced.total_energy().get(),
            over
        );
    }
    println!("(WNIC-writers pay nothing extra: their pages already go to the server)");
}
