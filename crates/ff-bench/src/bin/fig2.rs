//! Figure 2 — *mplayer*: energy consumption with various WNIC latencies
//! (a) and bandwidths (b), §3.3.2. Expected shape: FlexFetch tracks
//! WNIC-only across latency; BlueFS exceeds Disk-only; below ~2 Mbps
//! FlexFetch switches to the disk.

use ff_bench::{bandwidth_sweep, latency_sweep, print_csv, print_table, standard_policies};
use ff_bench::{Scenario, BANDWIDTHS_MBPS, LATENCIES_MS};

fn main() {
    let scenario = Scenario::mplayer(42).expect("scenario builds");
    let policies = standard_policies(&scenario);

    let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
    print_table("Fig 2(a) mplayer: energy vs WNIC latency", "lat(ms)", &a);
    print_csv(&a);

    let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
    print_table("Fig 2(b) mplayer: energy vs WNIC bandwidth", "bw(Mbps)", &b);
    print_csv(&b);
}
