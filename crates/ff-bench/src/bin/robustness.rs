//! Multi-seed robustness: every qualitative ordering pinned in
//! `tests/figures.rs` is re-checked across many workload seeds. A
//! reproduction that only holds for one random corpus is not a
//! reproduction; this sweeps the generators' randomness.

use ff_bench::Scenario;
use ff_policy::PolicyKind;
use ff_sim::{SimConfig, Simulation};

struct Tally {
    name: &'static str,
    held: usize,
    total: usize,
}

impl Tally {
    fn check(&mut self, ok: bool, seed: u64) {
        self.total += 1;
        if ok {
            self.held += 1;
        } else {
            println!("  !! {} violated at seed {seed}", self.name);
        }
    }
}

fn energy(s: &Scenario, kind: PolicyKind) -> f64 {
    Simulation::new(s.configure(SimConfig::default()), &s.trace)
        .policy(kind)
        .run()
        .unwrap()
        .total_energy()
        .get()
}

fn main() {
    let seeds: Vec<u64> = (0..10).map(|i| 1000 + i * 77).collect();
    let mut t1 = Tally {
        name: "fig1: FF < WNIC < Disk ≤ BlueFS·1.05",
        held: 0,
        total: 0,
    };
    let mut t2 = Tally {
        name: "fig2: FF within 10% of WNIC; BlueFS > Disk",
        held: 0,
        total: 0,
    };
    let mut t3 = Tally {
        name: "fig3: FF wins outright",
        held: 0,
        total: 0,
    };
    let mut t4 = Tally {
        name: "fig4: free-ride saves ≥10% vs static",
        held: 0,
        total: 0,
    };
    let mut t5 = Tally {
        name: "fig5: static/1.15 > FF > BlueFS",
        held: 0,
        total: 0,
    };

    for &seed in &seeds {
        let s = Scenario::grep_make(seed).expect("scenario builds");
        let ff = energy(&s, PolicyKind::flexfetch(s.profile.clone()));
        let bf = energy(&s, PolicyKind::BlueFs);
        let d = energy(&s, PolicyKind::DiskOnly);
        let w = energy(&s, PolicyKind::WnicOnly);
        t1.check(ff < w && w < d && bf > d * 0.95, seed);

        let s = Scenario::mplayer(seed).expect("scenario builds");
        let ff = energy(&s, PolicyKind::flexfetch(s.profile.clone()));
        let bf = energy(&s, PolicyKind::BlueFs);
        let d = energy(&s, PolicyKind::DiskOnly);
        let w = energy(&s, PolicyKind::WnicOnly);
        t2.check((ff - w).abs() / w < 0.10 && bf > d * 0.99, seed);

        let s = Scenario::thunderbird(seed).expect("scenario builds");
        let ff = energy(&s, PolicyKind::flexfetch(s.profile.clone()));
        let bf = energy(&s, PolicyKind::BlueFs);
        let d = energy(&s, PolicyKind::DiskOnly);
        let w = energy(&s, PolicyKind::WnicOnly);
        t3.check(ff < bf && ff < d && ff < w, seed);

        let s = Scenario::grep_make_xmms(seed).expect("scenario builds");
        let ff = energy(&s, PolicyKind::flexfetch(s.profile.clone()));
        let st = energy(&s, PolicyKind::flexfetch_static(s.profile.clone()));
        t4.check(ff < st * 0.90, seed);

        let s = Scenario::acroread_invalid(seed).expect("scenario builds");
        let ff = energy(&s, PolicyKind::flexfetch(s.profile.clone()));
        let st = energy(&s, PolicyKind::flexfetch_static(s.profile.clone()));
        let bf = energy(&s, PolicyKind::BlueFs);
        t5.check(ff < st * 0.90 && ff > bf, seed);
    }

    println!("\n{} seeds: {:?}\n", seeds.len(), seeds);
    for t in [&t1, &t2, &t3, &t4, &t5] {
        println!("{:<45} {}/{}", t.name, t.held, t.total);
    }
}
