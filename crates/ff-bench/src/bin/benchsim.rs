//! `benchsim` — the simulator's benchmark matrix.
//!
//! Runs all six Table-3 workloads under all five policies with a
//! counting recorder attached, fanned out over the work-stealing pool
//! (`--jobs N`, default one worker per hardware thread), and writes
//! `bench/BENCH_sim.json` (schema 2, documented in `docs/benchmarks.md`).
//!
//! ```text
//! cargo run --release -p ff-bench --bin benchsim \
//!     [-- --seed 42 --jobs 8 --out bench/BENCH_sim.json]
//! ```
//!
//! The JSON artifact contains **only deterministic fields** — it is
//! byte-identical for any `--jobs` value, which the
//! `parallel-determinism` check step relies on. Wall-clock numbers
//! (per-cell times below, whole-grid speedup) are host noise and live
//! on stdout and in `bench/BENCH_parallel.json` (`benchpar`).

use ff_bench::grid::{sim_cell, sim_doc, Grid};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut seed: u64 = 42;
    let mut jobs: usize = 0;
    let mut out = PathBuf::from("bench/BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--out" => out = PathBuf::from(args.next().expect("--out PATH")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: benchsim [--seed N] [--jobs N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let grid = Grid::sim_matrix(seed);
    let t0 = Instant::now();
    let cells = grid
        .run(jobs, |cell| {
            let cell_t0 = Instant::now();
            sim_cell(cell).map(|sc| (sc, cell_t0.elapsed()))
        })
        .expect("the fixed matrix uses validated names");
    let grid_wall = t0.elapsed();

    println!(
        "{:<14} {:<18} {:>9} {:>10} {:>9} {:>12} {:>10}",
        "workload", "policy", "events", "sim(s)", "wall(ms)", "events/s", "sim/wall"
    );
    for (cell, (sc, wall)) in &cells {
        let wall_s = wall.as_secs_f64().max(1e-9);
        println!(
            "{:<14} {:<18} {:>9} {:>10.1} {:>9.1} {:>12.0} {:>10.0}",
            cell.workload,
            cell.policy,
            sc.events,
            sc.sim_time_s,
            wall_s * 1e3,
            sc.events as f64 / wall_s,
            sc.sim_time_s / wall_s,
        );
    }
    let workers = ff_bench::resolve_jobs(jobs);
    eprintln!(
        "grid: {} cells on {} worker(s) in {:.1} ms",
        cells.len(),
        workers,
        grid_wall.as_secs_f64() * 1e3
    );

    let payload: Vec<_> = cells.into_iter().map(|(c, (sc, _))| (c, sc)).collect();
    let doc = sim_doc(seed, &payload);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create bench dir");
    }
    std::fs::write(&out, format!("{}\n", doc.to_pretty())).expect("write BENCH_sim.json");
    eprintln!("wrote {}", out.display());
}
