//! `benchsim` — the simulator's wall-clock benchmark matrix.
//!
//! Runs all six Table-3 workloads under all five policies with a
//! counting recorder attached and measures, per cell: total events,
//! wall-clock time, event throughput, and the ratio of simulated time
//! to wall time. Writes `bench/BENCH_sim.json` (schema documented in
//! EXPERIMENTS.md) so perf PRs have a measured baseline to beat.
//!
//! ```text
//! cargo run --release -p ff-bench --bin benchsim [-- --seed 42 --out bench/BENCH_sim.json]
//! ```
//!
//! Simulation results inside each cell are deterministic; the wall-time
//! and derived throughput fields vary with the host.

use ff_base::json::Value;
use ff_bench::observe::{recorded_run, POLICIES, WORKLOADS};
use ff_sim::CountingRecorder;
use std::path::PathBuf;
use std::time::Instant;

/// Peak resident-set proxy: VmHWM from /proc/self/status, in KiB
/// (0 where the file is unavailable, e.g. non-Linux hosts).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let mut seed: u64 = 42;
    let mut out = PathBuf::from("bench/BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out = PathBuf::from(args.next().expect("--out PATH")),
            other => {
                eprintln!("unknown flag {other}; usage: benchsim [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut cells = Vec::new();
    println!(
        "{:<14} {:<18} {:>9} {:>10} {:>9} {:>12} {:>10}",
        "workload", "policy", "events", "sim(s)", "wall(ms)", "events/s", "sim/wall"
    );
    for workload in WORKLOADS {
        for policy in POLICIES {
            let mut rec = CountingRecorder::new();
            let t0 = Instant::now();
            let report = recorded_run(workload, policy, seed, &mut rec)
                .expect("workload/policy names come from the fixed matrix");
            let wall = t0.elapsed();
            let wall_s = wall.as_secs_f64().max(1e-9);
            let sim_s = report.exec_time.as_secs_f64();
            let events = rec.total();
            let events_per_sec = events as f64 / wall_s;
            let ratio = sim_s / wall_s;
            println!(
                "{:<14} {:<18} {:>9} {:>10.1} {:>9.1} {:>12.0} {:>10.0}",
                workload,
                report.policy,
                events,
                sim_s,
                wall_s * 1e3,
                events_per_sec,
                ratio
            );
            cells.push(Value::Object(vec![
                ("workload".into(), Value::Str(workload.into())),
                ("policy".into(), Value::Str(policy.into())),
                ("events".into(), Value::UInt(events)),
                ("app_requests".into(), Value::UInt(report.app_requests)),
                ("sim_time_s".into(), Value::Float(sim_s)),
                ("wall_time_s".into(), Value::Float(wall_s)),
                ("events_per_sec".into(), Value::Float(events_per_sec)),
                ("sim_wall_ratio".into(), Value::Float(ratio)),
                ("total_j".into(), Value::Float(report.total_energy().get())),
            ]));
        }
    }

    let doc = Value::Object(vec![
        ("bench".into(), Value::Str("sim".into())),
        ("schema".into(), Value::UInt(1)),
        ("seed".into(), Value::UInt(seed)),
        (
            "command".into(),
            Value::Str("cargo run --release -p ff-bench --bin benchsim".into()),
        ),
        ("peak_rss_kb".into(), Value::UInt(peak_rss_kb())),
        ("cells".into(), Value::Array(cells)),
    ]);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create bench dir");
    }
    std::fs::write(&out, format!("{}\n", doc.to_pretty())).expect("write BENCH_sim.json");
    eprintln!("wrote {}", out.display());
}
