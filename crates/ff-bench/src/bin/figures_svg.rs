//! Render every §3.3 figure as an SVG chart into `results/` — the same
//! sweeps the `fig1`–`fig5` binaries print, drawn.

use ff_bench::{
    bandwidth_sweep, latency_sweep, line_chart, rows_to_series, standard_policies, Scenario,
    BANDWIDTHS_MBPS, LATENCIES_MS,
};
use ff_policy::PolicyKind;

fn save(name: &str, title: &str, x_label: &str, rows: &[ff_bench::Row]) {
    std::fs::create_dir_all("results").expect("results dir");
    let svg = line_chart(title, x_label, "energy (J)", &rows_to_series(rows));
    let path = format!("results/{name}.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("wrote {path}");
}

fn main() {
    for (i, scenario) in [
        Scenario::grep_make(42).expect("scenario builds"),
        Scenario::mplayer(42).expect("scenario builds"),
        Scenario::thunderbird(42).expect("scenario builds"),
    ]
    .iter()
    .enumerate()
    {
        let n = i + 1;
        let policies = standard_policies(scenario);
        let a = latency_sweep(scenario, &policies, &LATENCIES_MS).expect("sweep runs");
        save(
            &format!("fig{n}a"),
            &format!("Fig {n}(a) {}: energy vs WNIC latency", scenario.name),
            "WNIC latency (ms)",
            &a,
        );
        let b = bandwidth_sweep(scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
        save(
            &format!("fig{n}b"),
            &format!("Fig {n}(b) {}: energy vs WNIC bandwidth", scenario.name),
            "WNIC bandwidth (Mbps)",
            &b,
        );
    }
    for (n, scenario) in [
        (4, Scenario::grep_make_xmms(42).expect("scenario builds")),
        (5, Scenario::acroread_invalid(42).expect("scenario builds")),
    ] {
        let policies = vec![
            PolicyKind::flexfetch(scenario.profile.clone()),
            PolicyKind::flexfetch_static(scenario.profile.clone()),
            PolicyKind::BlueFs,
            PolicyKind::DiskOnly,
            PolicyKind::WnicOnly,
        ];
        let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
        save(
            &format!("fig{n}a"),
            &format!("Fig {n}(a) {}: energy vs WNIC latency", scenario.name),
            "WNIC latency (ms)",
            &a,
        );
        let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
        save(
            &format!("fig{n}b"),
            &format!("Fig {n}(b) {}: energy vs WNIC bandwidth", scenario.name),
            "WNIC bandwidth (Mbps)",
            &b,
        );
    }
}
