//! `observe` — export one run's structured event stream.
//!
//! Replays a Table-3 workload under a policy with an event recorder
//! attached, then writes two artefacts into `--out-dir` (default
//! `bench/`):
//!
//! * `observe_<workload>_<policy>.jsonl` — one JSON object per event,
//!   sorted by simulated time;
//! * `observe_<workload>_<policy>.summary.json` — headline report
//!   numbers plus per-kind event totals (also printed to stdout).
//!
//! Output is byte-identical across runs with the same seed.
//!
//! ```text
//! cargo run --release -p ff-bench --bin observe -- \
//!     --workload grep --policy flexfetch [--seed 42] [--out-dir bench]
//! ```

use ff_bench::observe::{observe_run, summary_json, POLICIES, WORKLOADS};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: observe --workload <{}> --policy <{}> [--seed N] [--out-dir DIR]",
        WORKLOADS.join("|"),
        POLICIES.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let mut workload: Option<String> = None;
    let mut policy: Option<String> = None;
    let mut seed: u64 = 42;
    let mut out_dir = PathBuf::from("bench");

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--workload" => workload = Some(value("--workload")),
            "--policy" => policy = Some(value("--policy")),
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    usage()
                })
            }
            "--out-dir" => out_dir = PathBuf::from(value("--out-dir")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let (Some(workload), Some(policy)) = (workload, policy) else {
        usage()
    };

    let run = observe_run(&workload, &policy, seed).unwrap_or_else(|e| {
        eprintln!("observe: {e}");
        std::process::exit(1);
    });

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let stem = format!("observe_{workload}_{policy}");
    let jsonl_path = out_dir.join(format!("{stem}.jsonl"));
    let summary_path = out_dir.join(format!("{stem}.summary.json"));

    std::fs::write(&jsonl_path, run.log.to_jsonl()).expect("write jsonl");
    let summary = summary_json(&run, &workload, &policy, seed).to_pretty();
    std::fs::write(&summary_path, format!("{summary}\n")).expect("write summary");

    println!("{summary}");
    eprintln!(
        "wrote {} ({} events) and {}",
        jsonl_path.display(),
        run.log.len(),
        summary_path.display()
    );
}
