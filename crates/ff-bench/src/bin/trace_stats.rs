//! Characterise every Table 3 workload: burstiness, think times,
//! sequentiality, request sizes, and access skew — the statistics
//! §1.2/§2.1 argue make program I/O predictable, measured over the
//! generated traces.

use ff_base::Dur;
use ff_trace::{analyze, Acroread, Grep, Make, Mplayer, Thunderbird, Trace, Workload, Xmms};

fn main() {
    let workloads: Vec<(&str, Trace)> = vec![
        ("grep", Grep::default().build(42)),
        ("make", Make::default().build(42)),
        (
            "xmms",
            Xmms {
                play_limit: Some(Dur::from_secs(600)),
                ..Default::default()
            }
            .build(42),
        ),
        ("mplayer", Mplayer::default().build(42)),
        ("thunderbird", Thunderbird::default().build(42)),
        ("acroread", Acroread::large_search().build(42)),
    ];
    println!(
        "{:<13} {:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "workload",
        "calls",
        "bursty%",
        "seq%",
        "read%",
        "think p50",
        "think p90",
        "avg req",
        "top10%"
    );
    for (name, trace) in &workloads {
        let a = analyze(trace);
        let think = a.think_times.expect("non-empty traces");
        println!(
            "{:<13} {:>8} {:>7.1}% {:>6.1}% {:>8.1}% {:>10} {:>10} {:>8} {:>7.1}%",
            name,
            trace.len(),
            a.burstiness * 100.0,
            a.sequentiality * 100.0,
            a.read_fraction * 100.0,
            think.p50.to_string(),
            think.p90.to_string(),
            a.mean_request.to_string(),
            a.top_decile_share * 100.0,
        );
    }
    println!("\nbursty% = inter-call gaps under the 20 ms burst threshold");
    println!("seq%    = requests sequentially extending the previous one on the same file");
    println!("top10%  = share of bytes in the hottest decile of files");
}
