//! Regret study (extension): how far is FlexFetch from an oracle that
//! *knows* the replayed run? The oracle gets the true profile of the
//! trace being replayed and plans per-stage choices by dynamic
//! programming; FlexFetch gets only the previous run's profile plus its
//! §2.3 run-time adaptation.

use ff_base::Dur;
use ff_bench::Scenario;
use ff_policy::{Oracle, PolicyKind};
use ff_profile::Profiler;
use ff_sim::{SimConfig, Simulation};
use ff_trace::DiskLayout;

fn main() {
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>8}",
        "scenario", "FlexFetch", "Oracle", "best fixed", "regret"
    );
    let scenarios = [
        Scenario::grep_make(42).expect("scenario builds"),
        Scenario::mplayer(42).expect("scenario builds"),
        Scenario::thunderbird(42).expect("scenario builds"),
        Scenario::acroread_invalid(42).expect("scenario builds"),
    ];
    for s in &scenarios {
        let cfg = || s.configure(SimConfig::default());
        let run = |kind: PolicyKind| {
            Simulation::new(cfg(), &s.trace)
                .policy(kind)
                .run()
                .unwrap()
                .total_energy()
                .get()
        };
        let ff = run(PolicyKind::flexfetch(s.profile.clone()));
        let disk = run(PolicyKind::DiskOnly);
        let wnic = run(PolicyKind::WnicOnly);

        // The oracle sees the profile of the *replayed* trace itself.
        let true_profile = Profiler::standard().profile(&s.trace);
        let layout = DiskLayout::build(&s.trace.files, cfg().layout_seed);
        let oracle_policy = Oracle::for_run(
            &true_profile,
            &layout,
            &cfg().disk,
            &cfg().wnic,
            Dur::from_secs(40),
            0.25,
        );
        let oracle = Simulation::new(cfg(), &s.trace)
            .policy_boxed(Box::new(oracle_policy))
            .run()
            .unwrap()
            .total_energy()
            .get();

        let best = oracle.min(disk).min(wnic);
        println!(
            "{:<18} {:>11.1}J {:>11.1}J {:>11.1}J {:>+7.1}%",
            s.name,
            ff,
            oracle,
            disk.min(wnic),
            (ff - best) / best * 100.0
        );
    }
    println!("\nregret = FlexFetch above the best of (oracle, fixed devices).");
    println!("The oracle plan is approximate (profile stages vs wall-clock stages,");
    println!("no cache filtering), so FlexFetch can occasionally beat it. The");
    println!("acroread row starts from a deliberately stale profile (§3.3.5): its");
    println!("regret is the single probing stage — the paper's own observation.");
}
