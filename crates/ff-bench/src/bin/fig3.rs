//! Figure 3 — *Thunderbird*: energy consumption with various WNIC
//! latencies (a) and bandwidths (b), §3.3.3. Expected shape: Disk-only
//! expensive (small interactive reads); WNIC-only crosses above it at
//! high latency; FlexFetch below BlueFS; both largely insensitive to
//! bandwidth (the WNIC carries only the small initial reads).

use ff_bench::{bandwidth_sweep, latency_sweep, print_csv, print_table, standard_policies};
use ff_bench::{Scenario, BANDWIDTHS_MBPS, LATENCIES_MS};

fn main() {
    let scenario = Scenario::thunderbird(42).expect("scenario builds");
    let policies = standard_policies(&scenario);

    let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
    print_table(
        "Fig 3(a) thunderbird: energy vs WNIC latency",
        "lat(ms)",
        &a,
    );
    print_csv(&a);

    let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
    print_table(
        "Fig 3(b) thunderbird: energy vs WNIC bandwidth",
        "bw(Mbps)",
        &b,
    );
    print_csv(&b);
}
