//! `chaostrace` — export fault-injection event streams for the
//! static↔dynamic conformance pass.
//!
//! Replays two seeded server-outage schedules with an event recorder
//! attached and writes one JSONL trace each into `--out-dir` (default
//! `bench/`):
//!
//! * `chaos_ladder.jsonl` — a server outage long enough for a fast
//!   retry ladder to exhaust, walking the server-path machine through
//!   `healthy → down → dead → healthy`;
//! * `chaos_outage.jsonl` — a short outage the default ladder rides
//!   out, walking `healthy → down → healthy`.
//!
//! Both runs use the WNIC-only policy so the Aironet 350 machine
//! cycles between CAM and PSM as well. `ff-lint`'s trace-conformance
//! family replays these files against the extracted state machines;
//! output is byte-identical across runs with the same seed.
//!
//! ```text
//! cargo run --release -p ff-bench --bin chaostrace -- [--seed 42] [--out-dir bench]
//! ```

use ff_base::Dur;
use ff_bench::observe::{build_policy, build_workload};
use ff_sim::{EventLog, FaultPlan, RetryPolicy, SimConfig, Simulation};
use std::path::PathBuf;

fn main() {
    let mut seed: u64 = 42;
    let mut out_dir = PathBuf::from("bench");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--out-dir" => out_dir = PathBuf::from(args.next().expect("--out-dir needs a path")),
            other => {
                eprintln!("unknown flag {other}; usage: chaostrace [--seed N] [--out-dir DIR]");
                std::process::exit(2);
            }
        }
    }

    // A 3 s outage from t=0 against a 300 ms/100 ms/3-attempt ladder:
    // the first request exhausts the ladder (dead), the outage end
    // recovers the path (healthy).
    let ladder_plan = FaultPlan::none().with_server_outage(Dur::ZERO, Dur::from_secs(3));
    let fast_ladder = RetryPolicy {
        timeout: Dur::from_millis(300),
        backoff: Dur::from_millis(100),
        max_retries: 3,
    };
    // A 2 s outage the default 15.5 s ladder rides out: the path goes
    // down and comes straight back without being marked dead.
    let outage_plan =
        FaultPlan::none().with_server_outage(Dur::from_millis(500), Dur::from_secs(2));

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let runs: [(&str, FaultPlan, Option<RetryPolicy>); 2] = [
        ("chaos_ladder", ladder_plan, Some(fast_ladder)),
        ("chaos_outage", outage_plan, None),
    ];
    for (name, plan, retry) in runs {
        let trace = build_workload("grep", seed).expect("grep workload builds");
        let policy = build_policy("wnic", "grep", seed).expect("wnic policy builds");
        let mut config = SimConfig::default().with_faults(plan);
        if let Some(retry) = retry {
            config = config.with_retry(retry);
        }
        let mut log = EventLog::new();
        let report = Simulation::new(config, &trace)
            .policy(policy)
            .run_recorded(&mut log)
            .expect("chaos runs must not fail");
        let path = out_dir.join(format!("{name}.jsonl"));
        std::fs::write(&path, log.to_jsonl()).expect("write jsonl");
        eprintln!(
            "wrote {} ({} events, {} retries, {} failovers)",
            path.display(),
            log.len(),
            report.retries,
            report.failovers
        );
    }
}
