//! Figure 1 — *grep+make*: energy consumption with various WNIC
//! latencies (a, 11 Mbps fixed) and bandwidths (b, 1 ms fixed), §3.3.1.

use ff_bench::{bandwidth_sweep, latency_sweep, print_csv, print_table, standard_policies};
use ff_bench::{Scenario, BANDWIDTHS_MBPS, LATENCIES_MS};

fn main() {
    let scenario = Scenario::grep_make(42).expect("scenario builds");
    let policies = standard_policies(&scenario);

    let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
    print_table("Fig 1(a) grep+make: energy vs WNIC latency", "lat(ms)", &a);
    print_csv(&a);

    let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
    print_table(
        "Fig 1(b) grep+make: energy vs WNIC bandwidth",
        "bw(Mbps)",
        &b,
    );
    print_csv(&b);
}
