//! Profile evolution across runs (§2.3.1: *"the new profile will be
//! recorded to replace the old profile for future use at the end of this
//! run"*). Starting from no history, each run of the "same program"
//! (fresh seed, same shape) is driven by the profile recorded in the
//! previous run — measuring how quickly FlexFetch converges to its
//! informed steady state, and that stale profiles heal.

use ff_base::Dur;
use ff_policy::PolicyKind;
use ff_profile::{Profile, Profiler};
use ff_sim::{SimConfig, Simulation};
use ff_trace::{Acroread, Grep, Make, Trace, Workload};

fn grep_make(seed: u64) -> Trace {
    Grep::default()
        .build(seed)
        .concat(&Make::default().build(seed), Dur::from_secs(2))
        .expect("disjoint inodes")
}

fn main() {
    println!("== profile evolution: grep+make, run after run ==");
    println!("(run 1 has no history; each run records the profile for the next)\n");
    println!(
        "{:>5} {:>12} {:>10} {:>8}",
        "run", "energy", "time", "bursts"
    );

    let mut profile = Profile::empty("grep+make");
    let mut energies = Vec::new();
    for run in 1..=6u64 {
        let trace = grep_make(100 + run);
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::flexfetch(profile.clone()))
            .run()
            .unwrap();
        energies.push(report.total_energy().get());
        println!(
            "{run:>5} {:>11.1}J {:>9.1}s {:>8}",
            report.total_energy().get(),
            report.exec_time.as_secs_f64(),
            profile.len(),
        );
        profile = report.recorded_profile.expect("FlexFetch records");
    }
    let first = energies[0];
    let steady: f64 = energies[1..].iter().sum::<f64>() / (energies.len() - 1) as f64;
    println!(
        "\nblind first run {first:.0} J -> informed steady state {steady:.0} J \
         ({:+.1}% from history)\n",
        (steady - first) / first * 100.0
    );

    println!("== stale-profile healing: Acroread (§3.3.5 continued) ==");
    println!("(run 1 uses the 2 MB/25 s profile against 20 MB/10 s searches)\n");
    println!("{:>5} {:>12} {:>24}", "run", "energy", "profile origin");
    let mut profile = Profiler::standard().profile(&Acroread::small_profile().build(7));
    let mut origin = "stale (2 MB / 25 s run)".to_string();
    for run in 1..=4u64 {
        let trace = Acroread::large_search().build(200 + run);
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::flexfetch(profile.clone()))
            .run()
            .unwrap();
        println!(
            "{run:>5} {:>11.1}J {:>24}",
            report.total_energy().get(),
            origin
        );
        profile = report.recorded_profile.expect("records");
        origin = format!("recorded in run {run}");
    }
    println!("\n(the stale profile costs one probing stage in run 1 only; from run 2");
    println!(" the recorded history matches reality and the probe disappears)");
}
