//! Spin-down timeout study (§4 related work, reproduced as a
//! supplementary experiment): fixed timeouts vs the break-even point vs
//! the Helmbold-style adaptive share algorithm vs the offline oracle, on
//! idle-period streams extracted from the Table 3 workloads.
//!
//! Expected classic results: the break-even timeout stays within 2× of
//! the oracle on every stream; the adaptive algorithm approaches the
//! best fixed timeout in hindsight without knowing the workload.

use ff_base::Dur;
use ff_device::spindown::{fixed_timeout_energy, idle_periods, oracle_energy, ShareSpindown};
use ff_device::DiskParams;
use ff_trace::{Acroread, Make, Mplayer, Thunderbird, Trace, Workload, Xmms};

fn idles_of(trace: &Trace) -> Vec<Dur> {
    idle_periods(trace.records.iter().map(|r| (r.ts, r.end())))
}

fn main() {
    let params = DiskParams::hitachi_dk23da();
    let be = params.break_even();
    println!("Hitachi DK23DA break-even time: {be}\n");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "workload", "periods", "t=1s", "t=break", "t=20s", "adaptive", "oracle", "be/oracle"
    );

    let workloads: Vec<(&str, Trace)> = vec![
        ("make", Make::default().build(42)),
        (
            "xmms",
            Xmms {
                play_limit: Some(Dur::from_secs(600)),
                ..Default::default()
            }
            .build(42),
        ),
        ("mplayer", Mplayer::default().build(42)),
        ("thunderbird", Thunderbird::default().build(42)),
        ("acroread", Acroread::large_search().build(42)),
        ("acroread-25s", Acroread::small_profile().build(42)),
    ];

    for (name, trace) in &workloads {
        let idles: Vec<Dur> = idles_of(trace)
            .into_iter()
            .filter(|d| *d >= Dur::from_millis(20)) // burst-internal gaps are not idle
            .collect();
        let fixed_1 = fixed_timeout_energy(&params, &idles, Dur::from_secs(1));
        let fixed_be = fixed_timeout_energy(&params, &idles, be);
        let fixed_20 = fixed_timeout_energy(&params, &idles, Dur::from_secs(20));
        let adaptive = ShareSpindown::for_disk(params.clone()).run(&idles);
        let oracle = oracle_energy(&params, &idles);
        println!(
            "{:<14} {:>8} {:>9.1}J {:>9.1}J {:>9.1}J {:>9.1}J {:>9.1}J {:>8.2}x",
            name,
            idles.len(),
            fixed_1.get(),
            fixed_be.get(),
            fixed_20.get(),
            adaptive.get(),
            oracle.get(),
            fixed_be.get() / oracle.get().max(1e-9),
        );
        assert!(
            fixed_be.get() <= 2.0 * oracle.get() + 1e-6,
            "2-competitiveness violated on {name}"
        );
    }
    println!("\n(assertion checked: break-even timeout ≤ 2 × oracle on every stream)");
}
