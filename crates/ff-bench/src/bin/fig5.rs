//! Figure 5 — *Acroread* with an invalid profile, §3.3.5. The recorded
//! profile (2 MB PDFs every 25 s → WNIC looks right) mispredicts the
//! current run (20 MB PDFs every 10 s → the disk is right). Expected
//! shape: FlexFetch corrects after one evaluation stage and lands well
//! below FlexFetch-static, but somewhat above BlueFS (which reacts
//! per-request and never trusted the profile).

use ff_bench::{bandwidth_sweep, latency_sweep, print_csv, print_table};
use ff_bench::{Scenario, BANDWIDTHS_MBPS, LATENCIES_MS};
use ff_policy::PolicyKind;

fn main() {
    let scenario = Scenario::acroread_invalid(42).expect("scenario builds");
    let policies = vec![
        PolicyKind::flexfetch(scenario.profile.clone()),
        PolicyKind::flexfetch_static(scenario.profile.clone()),
        PolicyKind::BlueFs,
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ];

    let a = latency_sweep(&scenario, &policies, &LATENCIES_MS).expect("sweep runs");
    print_table(
        "Fig 5(a) acroread (invalid profile): energy vs WNIC latency",
        "lat(ms)",
        &a,
    );
    print_csv(&a);

    let b = bandwidth_sweep(&scenario, &policies, &BANDWIDTHS_MBPS).expect("sweep runs");
    print_table(
        "Fig 5(b) acroread (invalid profile): energy vs WNIC bandwidth",
        "bw(Mbps)",
        &b,
    );
    print_csv(&b);
}
