//! The workload × policy × seed sweep-grid builder.
//!
//! Every batch experiment in this crate is some slice of the same cube:
//! workloads on one axis, policies on another, replication seeds on the
//! third. [`Grid`] names that cube once — canonical cell order is
//! workload-major, then policy, then seed — and [`Grid::run`] executes
//! it on the work-stealing pool ([`crate::pool`]) with results merged
//! back into canonical order, so a grid's output is byte-identical at
//! any `--jobs` setting.
//!
//! Each [`GridCell`] carries a `stream_seed` derived as
//! `derive_seed(base_seed, "workload/policy/seed")`
//! ([`ff_base::rng::derive_seed`]): a task that needs randomness beyond
//! its workload seed draws from its own stream, never from a shared RNG
//! whose consumption order would depend on scheduling. The streams are
//! pairwise non-colliding over the full grid (pinned by
//! `tests/parallel.rs`).

use crate::observe::{recorded_run, POLICIES, WORKLOADS};
use crate::pool;
use ff_base::json::Value;
use ff_base::rng::derive_seed;
use ff_base::Result;
use ff_sim::CountingRecorder;

/// One cell of a sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridCell {
    /// Workload name (as accepted by [`crate::observe::build_workload`]).
    pub workload: String,
    /// Policy name (as accepted by [`crate::observe::build_policy`]).
    pub policy: String,
    /// The replication seed this cell simulates with.
    pub seed: u64,
    /// The cell's private RNG stream seed: `derive_seed(base, key)`.
    pub stream_seed: u64,
}

impl GridCell {
    /// The canonical task key: `"workload/policy/seed"`. This string is
    /// the sole input (besides the base seed) to the cell's derived RNG
    /// stream, so it must uniquely identify the cell within the grid.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.policy, self.seed)
    }
}

/// Builder for a workload × policy × seed grid.
///
/// ```
/// use ff_bench::grid::Grid;
///
/// let grid = Grid::new(42)
///     .workloads(["grep", "make"])
///     .policies(["disk", "wnic"])
///     .seeds([42]);
/// assert_eq!(grid.len(), 4);
///
/// // The same grid produces the same cells — and `run` merges worker
/// // results back into this canonical order at any jobs count.
/// let keys: Vec<String> = grid.cells().iter().map(|c| c.key()).collect();
/// assert_eq!(keys[0], "grep/disk/42");
/// assert_eq!(keys[3], "make/wnic/42");
///
/// let serial = grid.run(1, |cell| Ok(cell.key())).unwrap();
/// let parallel = grid.run(8, |cell| Ok(cell.key())).unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    base_seed: u64,
    workloads: Vec<String>,
    policies: Vec<String>,
    seeds: Vec<u64>,
}

impl Grid {
    /// An empty grid over `base_seed` (the root of every derived task
    /// stream). Populate the axes with [`Grid::workloads`],
    /// [`Grid::policies`], and [`Grid::seeds`].
    pub fn new(base_seed: u64) -> Self {
        Grid {
            base_seed,
            workloads: Vec::new(),
            policies: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// The full `benchsim` matrix: all six Table-3 workloads × all five
    /// policies, one replication at `seed`.
    pub fn sim_matrix(seed: u64) -> Self {
        Grid::new(seed)
            .workloads(WORKLOADS)
            .policies(POLICIES)
            .seeds([seed])
    }

    /// Set the workload axis.
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Set the policy axis.
    pub fn policies<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.policies = names.into_iter().map(Into::into).collect();
        self
    }

    /// Set the replication-seed axis.
    pub fn seeds<I>(mut self, seeds: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The base seed every cell stream derives from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.workloads.len() * self.policies.len() * self.seeds.len()
    }

    /// True iff some axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialise the cells in canonical order: workload-major, then
    /// policy, then seed.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.len());
        for w in &self.workloads {
            for p in &self.policies {
                for &s in &self.seeds {
                    let key = format!("{w}/{p}/{s}");
                    out.push(GridCell {
                        workload: w.clone(),
                        policy: p.clone(),
                        seed: s,
                        stream_seed: derive_seed(self.base_seed, &key),
                    });
                }
            }
        }
        out
    }

    /// Run `work` over every cell on `jobs` pool workers (`0` = one per
    /// hardware thread) and return `(cell, result)` pairs in canonical
    /// order. The first failing cell (in canonical order) aborts the
    /// batch with its error.
    pub fn run<T, F>(&self, jobs: usize, work: F) -> Result<Vec<(GridCell, T)>>
    where
        T: Send,
        F: Fn(&GridCell) -> Result<T> + Sync,
    {
        let cells = self.cells();
        let results = pool::run_ordered(jobs, &cells, |_, cell| work(cell))?;
        cells
            .into_iter()
            .zip(results)
            .map(|(cell, r)| r.map(|t| (cell, t)))
            .collect()
    }
}

/// The deterministic measurements of one `benchsim` grid cell —
/// everything that belongs in `bench/BENCH_sim.json` (schema 2). Wall
/// times and throughput are host noise and live in
/// `bench/BENCH_parallel.json` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCell {
    /// Observability events the run emitted (counted, not stored).
    pub events: u64,
    /// Application system calls replayed.
    pub app_requests: u64,
    /// Simulated execution time in seconds.
    pub sim_time_s: f64,
    /// Policy decision-log entries.
    pub decisions: u64,
    /// Total I/O energy in joules.
    pub total_j: f64,
}

/// Simulate one grid cell with a counting recorder attached.
pub fn sim_cell(cell: &GridCell) -> Result<SimCell> {
    let mut rec = CountingRecorder::new();
    let report = recorded_run(&cell.workload, &cell.policy, cell.seed, &mut rec)?;
    Ok(SimCell {
        events: rec.total(),
        app_requests: report.app_requests,
        sim_time_s: report.exec_time.as_secs_f64(),
        decisions: report.decisions.len() as u64,
        total_j: report.total_energy().get(),
    })
}

/// Assemble the `bench/BENCH_sim.json` document (schema 2) from
/// evaluated cells. Deterministic field order; every field is a pure
/// function of `(seed, cells)`.
pub fn sim_doc(seed: u64, cells: &[(GridCell, SimCell)]) -> Value {
    let cell_nodes: Vec<Value> = cells
        .iter()
        .map(|(cell, sc)| {
            Value::Object(vec![
                ("workload".into(), Value::Str(cell.workload.clone())),
                ("policy".into(), Value::Str(cell.policy.clone())),
                ("events".into(), Value::UInt(sc.events)),
                ("app_requests".into(), Value::UInt(sc.app_requests)),
                ("sim_time_s".into(), Value::Float(sc.sim_time_s)),
                ("decisions".into(), Value::UInt(sc.decisions)),
                ("total_j".into(), Value::Float(sc.total_j)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("bench".into(), Value::Str("sim".into())),
        ("schema".into(), Value::UInt(2)),
        ("seed".into(), Value::UInt(seed)),
        (
            "command".into(),
            Value::Str("cargo run --release -p ff-bench --bin benchsim".into()),
        ),
        ("cells".into(), Value::Array(cell_nodes)),
    ])
}

/// Run the full `benchsim` matrix at `seed` on `jobs` workers and
/// return the schema-2 document. Byte-identical for any `jobs` — the
/// contract `tests/parallel.rs` pins and `scripts/check.sh`'s
/// `parallel-determinism` step re-checks at full scale.
pub fn sim_matrix_json(seed: u64, jobs: usize) -> Result<Value> {
    let cells = Grid::sim_matrix(seed).run(jobs, sim_cell)?;
    Ok(sim_doc(seed, &cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    // The rest of the Send-bounds audit lives in ff-sim; these are the
    // bench-side types the pool shares (by reference) or sends (by
    // value) across workers.
    #[test]
    fn pool_crossing_types_are_thread_safe() {
        assert_sync::<crate::Scenario>();
        assert_sync::<ff_policy::PolicyKind>();
        assert_sync::<ff_trace::Trace>();
        assert_send::<crate::Row>();
        assert_send::<crate::FaultCell>();
        assert_send::<crate::observe::ObservedRun>();
        assert_send::<GridCell>();
        assert_send::<SimCell>();
    }

    #[test]
    fn canonical_order_is_workload_major() {
        let g = Grid::new(1)
            .workloads(["a", "b"])
            .policies(["p", "q"])
            .seeds([1, 2]);
        let keys: Vec<String> = g.cells().iter().map(|c| c.key()).collect();
        assert_eq!(
            keys,
            ["a/p/1", "a/p/2", "a/q/1", "a/q/2", "b/p/1", "b/p/2", "b/q/1", "b/q/2"]
        );
    }

    #[test]
    fn stream_seeds_are_unique_within_a_grid() {
        let g = Grid::sim_matrix(42);
        let mut seeds: Vec<u64> = g.cells().iter().map(|c| c.stream_seed).collect();
        assert_eq!(seeds.len(), 30);
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 30, "derived task streams collide");
    }

    #[test]
    fn run_propagates_the_first_error_in_canonical_order() {
        let g = Grid::new(7)
            .workloads(["grep", "nethack", "zork"])
            .policies(["disk"])
            .seeds([7]);
        let err = g
            .run(4, |cell| {
                crate::observe::build_workload(&cell.workload, cell.seed)
            })
            .unwrap_err();
        assert!(err.to_string().contains("nethack"), "{err}");
    }

    #[test]
    fn sim_cell_matches_a_direct_run() {
        let cell = &Grid::new(42)
            .workloads(["grep"])
            .policies(["disk"])
            .seeds([42])
            .cells()[0];
        let a = sim_cell(cell).unwrap();
        let b = sim_cell(cell).unwrap();
        assert_eq!(a, b);
        assert!(a.events > 0 && a.total_j > 0.0);
    }
}
