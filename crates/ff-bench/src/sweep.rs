//! Parameter sweeps and result formatting.
//!
//! §3.3: *"We vary the WNIC latency with a fixed 11 Mbps bandwidth and
//! vary the WNIC bandwidth with a fixed 1 msec latency."* Each sweep
//! point × policy is an independent single-threaded simulation; points
//! fan out over the work-stealing pool ([`crate::pool`]) and merge back
//! in canonical point order, so sweep output is byte-identical at any
//! `--jobs` setting.

use crate::pool;
use crate::scenarios::Scenario;
use ff_base::checked;
use ff_base::{Dur, Result};
use ff_policy::PolicyKind;
use ff_sim::{SimConfig, Simulation};

/// WNIC latencies of the Fig. x(a) sweeps (ms).
pub const LATENCIES_MS: [u64; 9] = [0, 1, 3, 5, 9, 12, 15, 20, 30];

/// 802.11b bandwidths of the Fig. x(b) sweeps (Mbps).
pub const BANDWIDTHS_MBPS: [f64; 4] = [1.0, 2.0, 5.5, 11.0];

/// One figure data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Policy label (series).
    pub policy: String,
    /// Sweep coordinate (latency in ms, or bandwidth in Mbps).
    pub x: f64,
    /// Total I/O energy in joules (the figures' y-axis).
    pub energy_j: f64,
    /// Execution time in seconds.
    pub time_s: f64,
}

fn run_point(scenario: &Scenario, kind: &PolicyKind, cfg: SimConfig, x: f64) -> Result<Row> {
    let cfg = scenario.configure(cfg);
    let report = Simulation::new(cfg, &scenario.trace)
        .policy(kind.clone())
        .run()?;
    Ok(Row {
        policy: report.policy.clone(),
        x,
        energy_j: report.total_energy().get(),
        time_s: report.exec_time.as_secs_f64(),
    })
}

/// Run `policies` over a sweep of WNIC latencies at 11 Mbps, on one
/// pool worker per hardware thread.
pub fn latency_sweep(
    scenario: &Scenario,
    policies: &[PolicyKind],
    latencies_ms: &[u64],
) -> Result<Vec<Row>> {
    latency_sweep_jobs(scenario, policies, latencies_ms, 0)
}

/// [`latency_sweep`] with an explicit `--jobs` worker count (`0` = one
/// per hardware thread). Results are identical for any `jobs`.
pub fn latency_sweep_jobs(
    scenario: &Scenario,
    policies: &[PolicyKind],
    latencies_ms: &[u64],
    jobs: usize,
) -> Result<Vec<Row>> {
    let points: Vec<(usize, u64)> = policies
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| latencies_ms.iter().map(move |&l| (pi, l)))
        .collect();
    run_points(scenario, policies, &points, jobs, |l| {
        (
            SimConfig::default().with_wnic_latency(Dur::from_millis(l)),
            l as f64,
        )
    })
}

/// Run `policies` over a sweep of WNIC bandwidths at 1 ms latency, on
/// one pool worker per hardware thread.
pub fn bandwidth_sweep(
    scenario: &Scenario,
    policies: &[PolicyKind],
    bandwidths_mbps: &[f64],
) -> Result<Vec<Row>> {
    bandwidth_sweep_jobs(scenario, policies, bandwidths_mbps, 0)
}

/// [`bandwidth_sweep`] with an explicit `--jobs` worker count (`0` =
/// one per hardware thread). Results are identical for any `jobs`.
pub fn bandwidth_sweep_jobs(
    scenario: &Scenario,
    policies: &[PolicyKind],
    bandwidths_mbps: &[f64],
    jobs: usize,
) -> Result<Vec<Row>> {
    let points: Vec<(usize, u64)> = policies
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            bandwidths_mbps
                .iter()
                .map(move |&b| (pi, checked::f64_to_u64(b * 1000.0)))
        })
        .collect();
    run_points(scenario, policies, &points, jobs, |milli_mbps| {
        let mbps = milli_mbps as f64 / 1000.0;
        (
            SimConfig::default()
                .with_wnic_latency(Dur::from_millis(1))
                .with_wnic_bandwidth_mbps(mbps),
            mbps,
        )
    })
}

/// Fan the sweep points out over the pool; each point is one
/// independent simulation, and the pool's ordered merge returns rows in
/// canonical point order.
fn run_points(
    scenario: &Scenario,
    policies: &[PolicyKind],
    points: &[(usize, u64)],
    jobs: usize,
    make_cfg: impl Fn(u64) -> (SimConfig, f64) + Sync,
) -> Result<Vec<Row>> {
    pool::run_ordered(jobs, points, |_, &(pi, raw)| {
        let (cfg, x) = make_cfg(raw);
        run_point(scenario, &policies[pi], cfg, x)
    })?
    .into_iter()
    .collect()
}

/// Print a figure as an aligned table: one row per x, one column per
/// policy.
pub fn print_table(title: &str, x_label: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    let mut policies: Vec<String> = Vec::new();
    for r in rows {
        if !policies.contains(&r.policy) {
            policies.push(r.policy.clone());
        }
    }
    let mut xs: Vec<f64> = Vec::new();
    for r in rows {
        if !xs.iter().any(|&x| (x - r.x).abs() < 1e-9) {
            xs.push(r.x);
        }
    }
    xs.sort_by(f64::total_cmp);

    print!("{x_label:>10}");
    for p in &policies {
        print!(" {p:>16}");
    }
    println!();
    for &x in &xs {
        print!("{x:>10}");
        for p in &policies {
            let v = rows
                .iter()
                .find(|r| r.policy == *p && (r.x - x).abs() < 1e-9)
                .map(|r| r.energy_j);
            match v {
                Some(e) => print!(" {e:>15.1}J"),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }
}

/// Print the same data as CSV (`policy,x,energy_j,time_s`).
pub fn print_csv(rows: &[Row]) {
    println!("policy,x,energy_j,time_s");
    for r in rows {
        println!("{},{},{:.3},{:.3}", r.policy, r.x, r.energy_j, r.time_s);
    }
}

/// The standard four-policy lineup of Figs. 1–3.
pub fn standard_policies(scenario: &Scenario) -> Vec<PolicyKind> {
    vec![
        PolicyKind::flexfetch(scenario.profile.clone()),
        PolicyKind::BlueFs,
        PolicyKind::DiskOnly,
        PolicyKind::WnicOnly,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::Workload;

    #[test]
    fn sweep_covers_every_policy_and_point() {
        let mut s = Scenario::grep_make(1).unwrap();
        // Shrink the workload so the test is quick.
        s.trace = ff_trace::Grep {
            files: 30,
            total_bytes: 1_500_000,
            ..Default::default()
        }
        .build(2);
        s.profile = ff_profile::Profiler::standard().profile(
            &ff_trace::Grep {
                files: 30,
                total_bytes: 1_500_000,
                ..Default::default()
            }
            .build(3),
        );
        let policies = [PolicyKind::DiskOnly, PolicyKind::WnicOnly];
        let rows = latency_sweep(&s, &policies, &[0, 10]).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.energy_j > 0.0));
        let rows = bandwidth_sweep(&s, &policies, &[1.0, 11.0]).unwrap();
        assert_eq!(rows.len(), 4);
        // WNIC-only at 1 Mbps must cost more than at 11 Mbps.
        let w1 = rows
            .iter()
            .find(|r| r.policy == "WNIC-only" && r.x == 1.0)
            .unwrap();
        let w11 = rows
            .iter()
            .find(|r| r.policy == "WNIC-only" && r.x == 11.0)
            .unwrap();
        assert!(w1.energy_j > w11.energy_j);
    }

    #[test]
    fn rows_are_identical_at_any_job_count() {
        let mut s = Scenario::grep_make(1).unwrap();
        s.trace = ff_trace::Grep {
            files: 30,
            total_bytes: 1_500_000,
            ..Default::default()
        }
        .build(2);
        let policies = [PolicyKind::DiskOnly, PolicyKind::WnicOnly];
        let serial = latency_sweep_jobs(&s, &policies, &[0, 5, 10], 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = latency_sweep_jobs(&s, &policies, &[0, 5, 10], jobs).unwrap();
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }
}
