//! Microbenchmarks of the device power models — the inner loop of both
//! the replayer and FlexFetch's on-line estimator (§2.2 claims the
//! estimator's overhead is minimal; these benches quantify ours).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_base::{Bytes, SimTime};
use ff_device::{DeviceRequest, DiskModel, DiskParams, PowerModel, WnicModel, WnicParams};

fn bench_disk_service(c: &mut Criterion) {
    c.bench_function("disk/service_sequential_64k", |b| {
        b.iter_batched(
            || DiskModel::new(DiskParams::hitachi_dk23da()),
            |mut disk| {
                let mut t = SimTime::ZERO;
                for i in 0..100u64 {
                    let req = DeviceRequest::read(Bytes::kib(64), Some(i * 16));
                    let out = disk.service(t, &req);
                    t = out.complete;
                }
                black_box(disk.energy())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("disk/service_random_4k", |b| {
        b.iter_batched(
            || DiskModel::new(DiskParams::hitachi_dk23da()),
            |mut disk| {
                let mut t = SimTime::ZERO;
                for i in 0..100u64 {
                    let req = DeviceRequest::read(Bytes(4096), Some((i * 7919) % 100_000));
                    let out = disk.service(t, &req);
                    t = out.complete;
                }
                black_box(disk.energy())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("disk/advance_through_spindown", |b| {
        b.iter_batched(
            || DiskModel::new(DiskParams::hitachi_dk23da()),
            |mut disk| {
                disk.advance_to(SimTime::from_secs(60));
                black_box(disk.energy())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("disk/estimate_is_cheap", |b| {
        let disk = DiskModel::new(DiskParams::hitachi_dk23da());
        let req = DeviceRequest::read(Bytes::kib(128), Some(42));
        b.iter(|| black_box(disk.estimate(SimTime::from_secs(1), &req)))
    });
}

fn bench_wnic_service(c: &mut Criterion) {
    c.bench_function("wnic/service_64k_from_psm", |b| {
        b.iter_batched(
            || WnicModel::new(WnicParams::cisco_aironet350()),
            |mut wnic| {
                let mut t = SimTime::ZERO;
                for _ in 0..100 {
                    let req = DeviceRequest::read(Bytes::kib(64), None);
                    let out = wnic.service(t, &req);
                    t = out.complete + ff_base::Dur::from_secs(3);
                }
                black_box(wnic.energy())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("wnic/estimate_is_cheap", |b| {
        let wnic = WnicModel::new(WnicParams::cisco_aironet350());
        let req = DeviceRequest::read(Bytes::kib(128), None);
        b.iter(|| black_box(wnic.estimate(SimTime::from_secs(1), &req)))
    });
}

criterion_group!(benches, bench_disk_service, bench_wnic_service);
criterion_main!(benches);
