//! End-to-end simulation benchmarks: one bench per paper experiment,
//! regenerating the default data point of each figure (Fig. 1–5) plus a
//! per-policy comparison on the grep workload. `cargo bench` therefore
//! exercises every evaluation scenario; the full sweeps live in the
//! `fig1`–`fig5` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_bench::Scenario;
use ff_policy::PolicyKind;
use ff_sim::{SimConfig, Simulation};
use ff_trace::{Grep, Workload};

fn run(scenario: &Scenario, kind: PolicyKind) -> f64 {
    let cfg = scenario.configure(SimConfig::default());
    Simulation::new(cfg, &scenario.trace)
        .policy(kind)
        .run()
        .unwrap()
        .total_energy()
        .get()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let fig1 = Scenario::grep_make(42).unwrap();
    g.bench_function("fig1_grep_make_flexfetch", |b| {
        b.iter(|| black_box(run(&fig1, PolicyKind::flexfetch(fig1.profile.clone()))))
    });
    let fig2 = Scenario::mplayer(42).unwrap();
    g.bench_function("fig2_mplayer_flexfetch", |b| {
        b.iter(|| black_box(run(&fig2, PolicyKind::flexfetch(fig2.profile.clone()))))
    });
    let fig3 = Scenario::thunderbird(42).unwrap();
    g.bench_function("fig3_thunderbird_flexfetch", |b| {
        b.iter(|| black_box(run(&fig3, PolicyKind::flexfetch(fig3.profile.clone()))))
    });
    let fig4 = Scenario::grep_make_xmms(42).unwrap();
    g.bench_function("fig4_forced_spinup_flexfetch", |b| {
        b.iter(|| black_box(run(&fig4, PolicyKind::flexfetch(fig4.profile.clone()))))
    });
    let fig5 = Scenario::acroread_invalid(42).unwrap();
    g.bench_function("fig5_invalid_profile_flexfetch", |b| {
        b.iter(|| black_box(run(&fig5, PolicyKind::flexfetch(fig5.profile.clone()))))
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies_on_grep");
    g.sample_size(20);
    let trace = Grep::default().build(9);
    let profile = ff_profile::Profiler::standard().profile(&Grep::default().build(10));
    for (name, kind) in [
        ("disk_only", PolicyKind::DiskOnly),
        ("wnic_only", PolicyKind::WnicOnly),
        ("bluefs", PolicyKind::BlueFs),
        ("flexfetch", PolicyKind::flexfetch(profile)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Simulation::new(SimConfig::default(), &trace)
                        .policy(kind.clone())
                        .run()
                        .unwrap()
                        .total_energy(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures, bench_policies);
criterion_main!(benches);
