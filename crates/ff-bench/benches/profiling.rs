//! Benchmarks of the profiling layer: burst extraction over real
//! workload traces and the §2.2 on-line estimator (the paper asserts
//! "such simulation causes minimal overhead" — quantified here).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_device::{DiskModel, DiskParams, WnicModel, WnicParams};
use ff_profile::{BurstExtractor, Estimator, Profiler};
use ff_trace::{DiskLayout, Make, Workload};

fn bench_extraction(c: &mut Criterion) {
    let trace = Make::default().build(1);
    c.bench_function("profile/extract_make_trace", |b| {
        let x = BurstExtractor::default();
        b.iter(|| black_box(x.extract(&trace).len()))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let trace = Make::default().build(1);
    let profile = Profiler::standard().profile(&trace);
    let layout = DiskLayout::build(&trace.files, 7);
    // One 40 s stage — exactly what FlexFetch evaluates at each decision.
    let stage = profile.stages(ff_base::Dur::from_secs(40)).remove(0);
    c.bench_function("profile/estimate_stage_disk", |b| {
        let est = Estimator::new(&layout);
        b.iter(|| {
            black_box(est.disk_cost(&stage.bursts, DiskModel::new(DiskParams::hitachi_dk23da())))
        })
    });
    c.bench_function("profile/estimate_stage_wnic", |b| {
        let est = Estimator::new(&layout);
        b.iter(|| {
            black_box(est.wnic_cost(
                &stage.bursts,
                WnicModel::new(WnicParams::cisco_aironet350()),
            ))
        })
    });
    c.bench_function("profile/splice_and_stage", |b| {
        let observed = profile.bursts[..20].to_vec();
        b.iter(|| {
            let spliced = profile.splice(&observed, 20);
            black_box(spliced.stages(ff_base::Dur::from_secs(40)).len())
        })
    });
}

criterion_group!(benches, bench_extraction, bench_estimator);
criterion_main!(benches);
