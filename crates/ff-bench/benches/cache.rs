//! Microbenchmarks of the buffer-cache substrate (§3.1 policies).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_base::{Bytes, SimTime};
use ff_cache::{BufferCache, CacheConfig, PageKey, TwoQ};
use ff_trace::FileId;

fn bench_twoq(c: &mut Criterion) {
    c.bench_function("twoq/touch_hit", |b| {
        let mut q = TwoQ::new(4096);
        let mut ev = Vec::new();
        for i in 0..1000u64 {
            q.touch(
                PageKey {
                    file: FileId(1),
                    index: i,
                },
                &mut ev,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1000;
            let mut ev = Vec::new();
            black_box(q.touch(
                PageKey {
                    file: FileId(1),
                    index: i,
                },
                &mut ev,
            ))
        })
    });
    c.bench_function("twoq/scan_with_evictions", |b| {
        b.iter_batched(
            || TwoQ::new(1024),
            |mut q| {
                let mut ev = Vec::new();
                for i in 0..10_000u64 {
                    q.touch(
                        PageKey {
                            file: FileId(2),
                            index: i,
                        },
                        &mut ev,
                    );
                }
                black_box(ev.len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_buffer_cache(c: &mut Criterion) {
    let size = Bytes::mib(64);
    c.bench_function("cache/sequential_read_64k_calls", |b| {
        b.iter_batched(
            || BufferCache::new(CacheConfig::default()),
            |mut cache| {
                let mut fetched = 0u64;
                for i in 0..512u64 {
                    let out =
                        cache.read(SimTime::ZERO, FileId(3), i * 65_536, Bytes::kib(64), size);
                    fetched += out.fetch_pages();
                }
                black_box(fetched)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("cache/write_and_flush", |b| {
        b.iter_batched(
            || BufferCache::new(CacheConfig::default()),
            |mut cache| {
                for i in 0..256u64 {
                    cache.write(SimTime::from_secs(i), FileId(4), i * 4096, Bytes(4096));
                }
                black_box(cache.flush_all().len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("cache/resident_fraction_probe", |b| {
        let mut cache = BufferCache::new(CacheConfig::default());
        cache.read(SimTime::ZERO, FileId(5), 0, Bytes::mib(1), size);
        b.iter(|| black_box(cache.resident_fraction(FileId(5), 0, Bytes::mib(1))))
    });
}

criterion_group!(benches, bench_twoq, bench_buffer_cache);
criterion_main!(benches);
