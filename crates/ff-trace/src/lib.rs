//! # ff-trace — I/O trace model and synthetic workloads
//!
//! The FlexFetch paper drives its simulator with system-call traces
//! collected by a modified `strace` (§3.2). This crate provides:
//!
//! * the canonical in-memory trace model ([`Trace`], [`TraceRecord`],
//!   [`FileSet`]) — pid, inode, offset, size, type, timestamp, duration,
//!   exactly the fields the paper's collector records;
//! * a text serialisation ([`strace`]) so traces can be persisted and
//!   inspected, plus an importer for raw `strace -f -ttt -T` output
//!   ([`strace_import`]) that rebuilds per-fd offsets the way the
//!   paper's modified strace post-processor did;
//! * the on-disk block layout model ([`layout`]) — files mapped
//!   sequentially with a small random inter-file gap (§3.2);
//! * deterministic generators for the six applications of Table 3
//!   ([`workloads`]), plus combinators ([`Trace::concat`],
//!   [`Trace::merge`]) used to build the paper's composite scenarios
//!   (grep→make, grep+make ∥ xmms).

//! ```
//! use ff_trace::{Grep, Workload, analyze};
//!
//! // Generate the paper's grep workload and check its Table 3 row.
//! let trace = Grep::default().build(42);
//! let stats = trace.stats();
//! assert_eq!(stats.files, 1332);
//! assert!((stats.footprint.get() as f64 / 1e6 - 50.4).abs() < 1.0);
//!
//! // grep replays as one dense burst: nearly every gap is sub-threshold.
//! assert!(analyze(&trace).burstiness > 0.95);
//! ```

pub mod analysis;
pub mod layout;
pub mod model;
pub mod strace;
pub mod strace_import;
pub mod workloads;

pub use analysis::{analyze, TraceAnalysis};
pub use layout::DiskLayout;
pub use model::{FileId, FileMeta, FileSet, IoOp, Trace, TraceRecord, TraceStats};
pub use strace_import::{ImportStats, StraceImporter};
pub use workloads::{
    AccessPattern, Acroread, Grep, Make, Mplayer, Synthetic, Thunderbird, Workload, Xmms,
};
