//! Canonical in-memory trace model.
//!
//! A [`Trace`] is a time-ordered sequence of read/write system calls
//! ([`TraceRecord`]) over a set of files ([`FileSet`]). Timestamps and
//! durations come from the *collection* run; the replayer preserves only
//! the **think times** between calls (the paper argues these are
//! device-independent, §2.1) and re-derives service times from the device
//! models.

use ff_base::{Bytes, Dur, Error, Result, SimTime};
use std::collections::BTreeMap;

/// A file identity — the inode number recorded by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// Read or write — the two call types the scheme profiles (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A `read()` system call.
    Read,
    /// A `write()` system call.
    Write,
}

/// Metadata for one traced file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Inode number.
    pub id: FileId,
    /// Path name as recorded by the collector.
    pub name: String,
    /// File size in bytes.
    pub size: Bytes,
}

/// The set of files referenced by a trace, keyed by inode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSet {
    files: BTreeMap<FileId, FileMeta>,
}

impl FileSet {
    /// Empty file set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a file's metadata.
    pub fn insert(&mut self, meta: FileMeta) {
        self.files.insert(meta.id, meta);
    }

    /// Look up a file by inode.
    pub fn get(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True iff no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Sum of all file sizes.
    pub fn total_size(&self) -> Bytes {
        self.files.values().map(|f| f.size).sum()
    }

    /// Iterate files in inode order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.values()
    }

    /// Merge another file set in. Colliding inodes must describe the same
    /// file (same size); otherwise the merge is rejected, because two
    /// different files sharing an inode would corrupt the disk layout.
    pub fn merge(&mut self, other: &FileSet) -> Result<()> {
        for meta in other.files.values() {
            match self.files.get(&meta.id) {
                Some(existing) if existing.size != meta.size => {
                    return Err(Error::Config(format!(
                        "inode {} maps to files of different sizes ({} vs {})",
                        meta.id.0, existing.size, meta.size
                    )));
                }
                _ => {
                    self.files.insert(meta.id, meta.clone());
                }
            }
        }
        Ok(())
    }
}

/// One read/write system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Process id.
    pub pid: u32,
    /// Process group id (§2.1: all processes of one program — e.g. make
    /// and its gcc children — share a group; the replayer runs one
    /// closed loop per group).
    pub pgid: u32,
    /// File accessed.
    pub file: FileId,
    /// Call type.
    pub op: IoOp,
    /// Byte offset within the file.
    pub offset: u64,
    /// Request length.
    pub len: Bytes,
    /// Issue timestamp in the collection run.
    pub ts: SimTime,
    /// Observed service duration in the collection run. Used only to
    /// compute think times (gap to the *next* call); replay re-derives
    /// service times from the simulated device.
    pub dur: Dur,
}

impl TraceRecord {
    /// Instant the call completed in the collection run.
    pub fn end(&self) -> SimTime {
        self.ts + self.dur
    }

    /// Exclusive end offset of the byte range touched.
    pub fn end_offset(&self) -> u64 {
        self.offset + self.len.get()
    }
}

/// Aggregate statistics, matching the columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of distinct files (Table 3 "# File").
    pub files: usize,
    /// Total size of the file set (Table 3 "Size(MB)").
    pub footprint: Bytes,
    /// Number of read/write records.
    pub records: usize,
    /// Total bytes requested (reads + writes, before cache effects).
    pub requested: Bytes,
    /// Bytes read.
    pub read_bytes: Bytes,
    /// Bytes written.
    pub written_bytes: Bytes,
    /// Wall-clock span of the collection run.
    pub span: Dur,
}

/// A complete application trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Human-readable workload name ("grep", "make", …).
    pub name: String,
    /// Files referenced.
    pub files: FileSet,
    /// Time-ordered records.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// New empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            files: FileSet::new(),
            records: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Completion instant of the last record (epoch for an empty trace).
    pub fn end_time(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.end())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total bytes requested across all records.
    pub fn total_bytes(&self) -> Bytes {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Table-3-style statistics.
    pub fn stats(&self) -> TraceStats {
        let read_bytes = self
            .records
            .iter()
            .filter(|r| r.op == IoOp::Read)
            .map(|r| r.len)
            .sum();
        let written_bytes = self
            .records
            .iter()
            .filter(|r| r.op == IoOp::Write)
            .map(|r| r.len)
            .sum();
        let start = self.records.first().map(|r| r.ts).unwrap_or(SimTime::ZERO);
        TraceStats {
            files: self.files.len(),
            footprint: self.files.total_size(),
            records: self.records.len(),
            requested: self.total_bytes(),
            read_bytes,
            written_bytes,
            span: self.end_time().saturating_since(start),
        }
    }

    /// Validate internal consistency: timestamps non-decreasing, every
    /// record references a known file and stays within its bounds, and no
    /// zero-length requests.
    pub fn validate(&self) -> Result<()> {
        let mut prev = SimTime::ZERO;
        for (i, r) in self.records.iter().enumerate() {
            if r.ts < prev {
                return Err(Error::Parse {
                    line: i + 1,
                    msg: format!("timestamp goes backwards: {} after {}", r.ts, prev),
                });
            }
            prev = r.ts;
            if r.len.is_zero() {
                return Err(Error::Parse {
                    line: i + 1,
                    msg: "zero-length request".into(),
                });
            }
            let meta = self.files.get(r.file).ok_or(Error::UnknownFile(r.file.0))?;
            if r.end_offset() > meta.size.get() {
                return Err(Error::OutOfBounds {
                    inode: r.file.0,
                    end: r.end_offset(),
                    size: meta.size.get(),
                });
            }
        }
        Ok(())
    }

    /// Sequential composition: run `other` after `self`, separated by
    /// `gap` of think time (the paper's grep→make programming scenario).
    /// File sets are merged; colliding inodes must agree.
    pub fn concat(&self, other: &Trace, gap: Dur) -> Result<Trace> {
        let mut files = self.files.clone();
        files.merge(&other.files)?;
        let shift = self.end_time() + gap;
        let mut records = self.records.clone();
        records.extend(other.records.iter().map(|r| TraceRecord {
            ts: SimTime(shift.as_micros() + r.ts.as_micros()),
            ..*r
        }));
        let t = Trace {
            name: format!("{}+{}", self.name, other.name),
            files,
            records,
        };
        Ok(t)
    }

    /// Concurrent composition: interleave two traces on their original
    /// timestamps (the paper's grep+make ∥ xmms scenario). Record order is
    /// stable on ties (records of `self` first).
    pub fn merge(&self, other: &Trace) -> Result<Trace> {
        let mut files = self.files.clone();
        files.merge(&other.files)?;
        let mut records = Vec::with_capacity(self.records.len() + other.records.len());
        let (mut i, mut j) = (0, 0);
        while i < self.records.len() && j < other.records.len() {
            if other.records[j].ts < self.records[i].ts {
                records.push(other.records[j]);
                j += 1;
            } else {
                records.push(self.records[i]);
                i += 1;
            }
        }
        records.extend_from_slice(&self.records[i..]);
        records.extend_from_slice(&other.records[j..]);
        Ok(Trace {
            name: format!("{}||{}", self.name, other.name),
            files,
            records,
        })
    }

    /// The set of pids appearing in the trace, in first-appearance order.
    pub fn pids(&self) -> Vec<u32> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.pid) {
                seen.push(r.pid);
            }
        }
        seen
    }

    /// The set of process groups, in first-appearance order. Each group
    /// is one program (§2.1) and replays as one closed loop.
    pub fn groups(&self) -> Vec<u32> {
        let mut seen = Vec::new();
        for r in &self.records {
            if !seen.contains(&r.pgid) {
                seen.push(r.pgid);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, size: u64) -> FileMeta {
        FileMeta {
            id: FileId(id),
            name: format!("f{id}"),
            size: Bytes(size),
        }
    }

    fn rec(pid: u32, id: u64, off: u64, len: u64, ts_us: u64, dur_us: u64) -> TraceRecord {
        TraceRecord {
            pid,
            pgid: pid / 100 * 100,
            file: FileId(id),
            op: IoOp::Read,
            offset: off,
            len: Bytes(len),
            ts: SimTime(ts_us),
            dur: Dur(dur_us),
        }
    }

    fn tiny_trace() -> Trace {
        let mut t = Trace::new("t");
        t.files.insert(file(1, 1000));
        t.files.insert(file(2, 500));
        t.records.push(rec(10, 1, 0, 100, 0, 50));
        t.records.push(rec(10, 2, 0, 500, 1_000, 30));
        t
    }

    #[test]
    fn stats_count_table3_columns() {
        let t = tiny_trace();
        let s = t.stats();
        assert_eq!(s.files, 2);
        assert_eq!(s.footprint, Bytes(1500));
        assert_eq!(s.records, 2);
        assert_eq!(s.requested, Bytes(600));
        assert_eq!(s.read_bytes, Bytes(600));
        assert_eq!(s.written_bytes, Bytes::ZERO);
        assert_eq!(s.span, Dur(1_030));
    }

    #[test]
    fn validate_accepts_good_trace() {
        tiny_trace().validate().unwrap();
    }

    #[test]
    fn validate_rejects_unknown_file() {
        let mut t = tiny_trace();
        t.records.push(rec(10, 99, 0, 1, 2_000, 1));
        assert!(matches!(t.validate(), Err(Error::UnknownFile(99))));
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let mut t = tiny_trace();
        t.records.push(rec(10, 2, 400, 200, 2_000, 1));
        assert!(matches!(
            t.validate(),
            Err(Error::OutOfBounds { inode: 2, .. })
        ));
    }

    #[test]
    fn validate_rejects_time_reversal() {
        let mut t = tiny_trace();
        t.records.push(rec(10, 1, 0, 1, 500, 1)); // before previous ts 1000
        assert!(matches!(t.validate(), Err(Error::Parse { line: 3, .. })));
    }

    #[test]
    fn validate_rejects_zero_length() {
        let mut t = tiny_trace();
        t.records.push(rec(10, 1, 0, 0, 2_000, 1));
        assert!(t.validate().is_err());
    }

    #[test]
    fn concat_shifts_second_trace() {
        let a = tiny_trace();
        let mut b = Trace::new("b");
        b.files.insert(file(3, 100));
        b.records.push(rec(20, 3, 0, 100, 0, 10));
        let c = a.concat(&b, Dur::from_secs(1)).unwrap();
        assert_eq!(c.records.len(), 3);
        // a ends at 1030us; gap 1s; b's record lands at 1_001_030us.
        assert_eq!(c.records[2].ts, SimTime(1_001_030));
        assert_eq!(c.files.len(), 3);
        c.validate().unwrap();
        assert_eq!(c.name, "t+b");
    }

    #[test]
    fn concat_rejects_conflicting_inodes() {
        let a = tiny_trace();
        let mut b = Trace::new("b");
        b.files.insert(file(1, 42)); // inode 1 already size 1000
        assert!(a.concat(&b, Dur::ZERO).is_err());
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let a = tiny_trace(); // ts 0, 1000
        let mut b = Trace::new("b");
        b.files.insert(file(3, 100));
        b.records.push(rec(20, 3, 0, 50, 500, 10));
        b.records.push(rec(20, 3, 50, 50, 1_500, 10));
        let m = a.merge(&b).unwrap();
        let ts: Vec<u64> = m.records.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![0, 500, 1_000, 1_500]);
        m.validate().unwrap();
    }

    #[test]
    fn merge_is_stable_on_ties() {
        let a = tiny_trace();
        let mut b = Trace::new("b");
        b.files.insert(file(3, 100));
        b.records.push(rec(20, 3, 0, 50, 0, 10)); // tie with a's first record
        let m = a.merge(&b).unwrap();
        assert_eq!(m.records[0].pid, 10, "self's record wins ties");
        assert_eq!(m.records[1].pid, 20);
    }

    #[test]
    fn pids_in_first_appearance_order() {
        let mut t = tiny_trace();
        t.records.push(rec(99, 1, 0, 1, 2_000, 1));
        t.records.push(rec(10, 1, 0, 1, 3_000, 1));
        assert_eq!(t.pids(), vec![10, 99]);
    }

    #[test]
    fn fileset_total_and_merge() {
        let mut fs = FileSet::new();
        fs.insert(file(1, 10));
        let mut fs2 = FileSet::new();
        fs2.insert(file(1, 10)); // identical duplicate is fine
        fs2.insert(file(2, 20));
        fs.merge(&fs2).unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.total_size(), Bytes(30));
    }

    #[test]
    fn record_end_helpers() {
        let r = rec(1, 1, 100, 50, 7, 3);
        assert_eq!(r.end(), SimTime(10));
        assert_eq!(r.end_offset(), 150);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.end_time(), SimTime::ZERO);
        assert_eq!(t.total_bytes(), Bytes::ZERO);
        t.validate().unwrap();
    }
}
