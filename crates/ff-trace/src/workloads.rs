//! Synthetic workload generators for the six applications of Table 3.
//!
//! The paper drives its simulator with real `strace` traces we do not
//! have. Each generator below reproduces the *statistics that the
//! FlexFetch scheme actually depends on* — file counts and footprints
//! (Table 3), burst sizes, think-time distribution, sequentiality, and
//! the access-pattern narrative of §3.3 — while being fully deterministic
//! for a given seed. See DESIGN.md §2 for the substitution argument.
//!
//! | Generator | Table 3 row | Pattern (§3.3) |
//! |---|---|---|
//! | [`Grep`] | 1332 files, 50.4 MB | dense small-file scan, one long burst |
//! | [`Make`] | 2579 files, 72.5 MB | minutes of small reads/writes with compile think times |
//! | [`Xmms`] | 116 files, 47.9 MB | periodic small streaming reads (MP3 bitrate) |
//! | [`Mplayer`] | 121 files, 136.3 MB | continuous small reads of large movie files |
//! | [`Thunderbird`] | 283 files, 188.1 MB | interactive reads w/ think time, then bulk search |
//! | [`Acroread`] | 10 files, 200 MB | periodic whole-file reads (two profile variants, §3.3.5) |

mod acroread;
mod builder;
mod grep;
mod make;
mod mplayer;
pub mod synthetic;
mod thunderbird;
mod xmms;

pub use acroread::Acroread;
pub use builder::TraceBuilder;
pub use grep::Grep;
pub use make::Make;
pub use mplayer::Mplayer;
pub use synthetic::{AccessPattern, Synthetic};
pub use thunderbird::Thunderbird;
pub use xmms::Xmms;

use crate::model::Trace;

/// A deterministic trace generator.
pub trait Workload {
    /// Short workload name ("grep", "make", …).
    fn name(&self) -> &'static str;

    /// Generate the trace. The same `(self, seed)` always yields the same
    /// trace, bit for bit.
    fn build(&self, seed: u64) -> Trace;
}

/// Split `total` bytes into `n` file sizes that sum exactly to `total`,
/// each at least `min`, with mild random variation (uniform weights in
/// [0.5, 1.5]). Deterministic in the RNG state.
pub(crate) fn partition_sizes(
    rng: &mut ff_base::SimRng,
    total: u64,
    n: usize,
    min: u64,
) -> Vec<u64> {
    use rand::Rng;
    assert!(n > 0, "cannot partition into zero files");
    assert!(
        total >= min * n as u64,
        "total too small for {n} files of at least {min}"
    );
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
    let wsum: f64 = weights.iter().sum();
    let spread = total - min * n as u64;
    let mut sizes: Vec<u64> = weights
        .iter()
        .map(|w| min + ff_base::checked::f64_to_u64(w / wsum * spread as f64))
        .collect();
    // Hand the integer-truncation remainder to the first file.
    let assigned: u64 = sizes.iter().sum();
    sizes[0] += total - assigned;
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::seeded_rng;

    #[test]
    fn partition_sums_exactly() {
        let mut rng = seeded_rng(1);
        let sizes = partition_sizes(&mut rng, 52_848_230, 1332, 512);
        assert_eq!(sizes.len(), 1332);
        assert_eq!(sizes.iter().sum::<u64>(), 52_848_230);
        assert!(sizes.iter().all(|&s| s >= 512));
    }

    #[test]
    fn partition_varies_sizes() {
        let mut rng = seeded_rng(2);
        let sizes = partition_sizes(&mut rng, 1_000_000, 100, 100);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "all sizes equal — no variation");
    }

    #[test]
    fn partition_single_file() {
        let mut rng = seeded_rng(3);
        let sizes = partition_sizes(&mut rng, 777, 1, 1);
        assert_eq!(sizes, vec![777]);
    }

    #[test]
    #[should_panic(expected = "total too small")]
    fn partition_rejects_impossible_request() {
        let mut rng = seeded_rng(4);
        partition_sizes(&mut rng, 10, 100, 1);
    }

    /// Every generator must satisfy its Table 3 row and pass validation.
    #[test]
    fn all_generators_match_table3() {
        // (name, #files, footprint MB from Table 3, tolerance MB)
        let cases: Vec<(Box<dyn Workload>, usize, f64)> = vec![
            (Box::new(Grep::default()), 1332, 50.4),
            (Box::new(Make::default()), 2579, 72.5),
            (Box::new(Xmms::default()), 116, 47.9),
            (Box::new(Mplayer::default()), 121, 136.3),
            (Box::new(Thunderbird::default()), 283, 188.1),
            (Box::new(Acroread::large_search()), 10, 200.0),
        ];
        for (w, files, mb) in cases {
            let t = w.build(42);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            let s = t.stats();
            assert_eq!(s.files, files, "{} file count", w.name());
            let got_mb = s.footprint.get() as f64 / 1e6;
            assert!(
                (got_mb - mb).abs() / mb < 0.02,
                "{} footprint {got_mb:.1} MB != {mb} MB",
                w.name()
            );
            assert!(!t.is_empty(), "{} generated no records", w.name());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for w in [
            &Grep::default() as &dyn Workload,
            &Make::default(),
            &Xmms::default(),
        ] {
            let a = w.build(7);
            let b = w.build(7);
            assert_eq!(a, b, "{} not deterministic", w.name());
            let c = w.build(8);
            assert_ne!(a.records, c.records, "{} ignores seed", w.name());
        }
    }

    #[test]
    fn inode_namespaces_do_not_collide() {
        let grep = Grep::default().build(1);
        let make = Make::default().build(1);
        let xmms = Xmms::default().build(1);
        let both = grep.concat(&make, ff_base::Dur::from_secs(2)).unwrap();
        let all = both.merge(&xmms).unwrap();
        all.validate().unwrap();
        assert_eq!(all.files.len(), 1332 + 2579 + 116);
    }
}
