//! `xmms` — "a mp3 player" (Table 3: 116 files, 47.9 MB).
//!
//! §3.3.4 uses xmms as the *forced-spin-up* agitator: it keeps issuing
//! requests at intervals **shorter than the disk spin-down timeout**
//! (20 s), so a disk servicing xmms never spins down. The decoder pulls a
//! buffer's worth of data every few seconds — a classic intermittent,
//! low-rate stream.

use super::{builder::TraceBuilder, partition_sizes, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::Rng;

/// Generator for the MP3-playback workload.
#[derive(Debug, Clone)]
pub struct Xmms {
    /// Number of MP3 files in the library (Table 3: 116).
    pub files: usize,
    /// Library footprint (Table 3: 47.9 MB).
    pub total_bytes: u64,
    /// Bytes pulled per decoder refill.
    pub chunk: Bytes,
    /// MP3 bit rate in bits/second (drives the refill interval:
    /// interval = chunk / (bitrate/8)).
    pub bitrate: u64,
    /// Stop after this much played time (`None` = play the whole library).
    pub play_limit: Option<Dur>,
}

impl Default for Xmms {
    fn default() -> Self {
        Xmms {
            files: 116,
            total_bytes: 47_900_000,
            chunk: Bytes::kib(64),
            bitrate: 128_000,
            play_limit: None,
        }
    }
}

/// Inode namespace base for xmms files.
pub const XMMS_INODE_BASE: u64 = 30_000;
/// Pid of the xmms process.
pub const XMMS_PID: u32 = 300;

impl Xmms {
    /// Refill interval implied by chunk size and bit rate.
    pub fn refill_interval(&self) -> Dur {
        Dur::from_secs_f64(self.chunk.get() as f64 / (self.bitrate as f64 / 8.0))
    }
}

impl Workload for Xmms {
    fn name(&self) -> &'static str {
        "xmms"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0x3333));
        let mut b = TraceBuilder::new(self.name(), XMMS_INODE_BASE);
        let sizes = partition_sizes(&mut rng, self.total_bytes, self.files, 64 * 1024);
        let songs: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("music/track_{i:03}.mp3"), Bytes(s)))
            .collect();
        let interval = self.refill_interval();
        'play: for &song in &songs {
            let size = b.file_size(song).get();
            let mut off = 0;
            while off < size {
                if let Some(limit) = self.play_limit {
                    if b.now().saturating_since(ff_base::SimTime::ZERO) >= limit {
                        break 'play;
                    }
                }
                let n = self.chunk.get().min(size - off);
                b.read(XMMS_PID, song, off, Bytes(n));
                off += n;
                // Decoder consumes the buffer in real time.
                b.think(interval + Dur::from_micros(rng.gen_range(0..20_000)));
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_interval_matches_bitrate() {
        // 64 KiB at 128 kbit/s = 65536 / 16000 B/s = 4.096 s.
        let x = Xmms::default();
        let i = x.refill_interval();
        assert!((i.as_secs_f64() - 4.096).abs() < 0.001, "{i}");
    }

    #[test]
    fn requests_are_spaced_below_disk_timeout() {
        let x = Xmms {
            play_limit: Some(Dur::from_secs(120)),
            ..Xmms::default()
        };
        let t = x.build(1);
        // Gaps keep the disk alive (< 20 s) yet are long enough to break
        // I/O bursts (> 20 ms).
        for w in t.records.windows(2) {
            let gap = w[1].ts.saturating_since(w[0].end());
            assert!(
                gap < Dur::from_secs(20),
                "gap {gap} would let the disk spin down"
            );
            assert!(
                gap > Dur::from_millis(20),
                "gap {gap} merges refills into one burst"
            );
        }
    }

    #[test]
    fn play_limit_bounds_the_run() {
        let x = Xmms {
            play_limit: Some(Dur::from_secs(60)),
            ..Xmms::default()
        };
        let t = x.build(2);
        let span = t.stats().span;
        assert!(
            span >= Dur::from_secs(55) && span < Dur::from_secs(75),
            "span {span}"
        );
    }

    #[test]
    fn full_library_footprint_matches_table3() {
        let t = Xmms::default().build(3);
        assert_eq!(t.files.len(), 116);
        let mb = t.files.total_size().get() as f64 / 1e6;
        assert!((mb - 47.9).abs() < 1.0, "{mb} MB");
    }

    #[test]
    fn songs_are_read_sequentially() {
        let x = Xmms {
            files: 2,
            total_bytes: 400_000,
            play_limit: None,
            ..Xmms::default()
        };
        let t = x.build(4);
        // Within one file, offsets must be non-decreasing.
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        for r in &t.records {
            let e = last.entry(r.file.0).or_insert(0);
            assert_eq!(r.offset, *e, "stream must be strictly sequential");
            *e = r.end_offset();
        }
    }
}
