//! `Thunderbird` — "an email client" (Table 3: 283 files, 188.1 MB).
//!
//! §3.3.3: *"It first reads several emails one after another with
//! considerable think time in between, and then quickly searches the
//! entire email files to locate user-specified emails."* The mail store
//! is *"several large email files"* (mbox format); the small initial
//! reads are energy-hostile for the disk, while the search phase is one
//! huge sequential burst that favours disk bandwidth.

use super::{builder::TraceBuilder, partition_sizes, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::Rng;

/// Generator for the email-client workload.
#[derive(Debug, Clone)]
pub struct Thunderbird {
    /// Number of large mbox files holding the mail.
    pub mboxes: usize,
    /// Total size of the mbox store.
    pub mbox_bytes: u64,
    /// Small support files (prefs, indices, address book…).
    pub support_files: usize,
    /// Total size of the support files.
    pub support_bytes: u64,
    /// Emails the user reads before searching.
    pub emails_read: usize,
    /// Size range of one displayed email.
    pub email_size: (u64, u64),
    /// Reading think time between emails (min, max).
    pub read_think: (Dur, Dur),
}

impl Default for Thunderbird {
    fn default() -> Self {
        Thunderbird {
            mboxes: 8,
            mbox_bytes: 180_000_000,
            support_files: 275,
            support_bytes: 8_100_000,
            emails_read: 30,
            email_size: (20_000, 90_000),
            read_think: (Dur::from_secs(8), Dur::from_secs(20)),
        }
    }
}

/// Inode namespace base for Thunderbird files.
pub const TBIRD_INODE_BASE: u64 = 50_000;
/// Pid of the Thunderbird process.
pub const TBIRD_PID: u32 = 500;

impl Workload for Thunderbird {
    fn name(&self) -> &'static str {
        "thunderbird"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0x7b1d));
        let mut b = TraceBuilder::new(self.name(), TBIRD_INODE_BASE);
        let mbox_sizes = partition_sizes(&mut rng, self.mbox_bytes, self.mboxes, 1 << 20);
        let mboxes: Vec<_> = mbox_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("mail/folder_{i}.mbox"), Bytes(s)))
            .collect();
        let sup_sizes = partition_sizes(&mut rng, self.support_bytes, self.support_files, 512);
        let support: Vec<_> = sup_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("profile/pref_{i}"), Bytes(s)))
            .collect();

        // Startup: read prefs and folder indices (small burst).
        for &f in support.iter().take(40) {
            b.read_file(TBIRD_PID, f, Bytes::kib(32));
        }
        b.think(Dur::from_secs(3));

        // Phase 1: read emails with considerable think time.
        for i in 0..self.emails_read {
            let mbox = mboxes[i % mboxes.len()];
            let size = b.file_size(mbox).get();
            let len = rng.gen_range(self.email_size.0..=self.email_size.1);
            let max_start = size.saturating_sub(len);
            // Emails live at 4 KiB-aligned offsets — close enough to mbox
            // reality and keeps page-cache behaviour clean.
            let offset = (rng.gen_range(0..=max_start) / 4096) * 4096;
            b.read_range(
                TBIRD_PID,
                mbox,
                offset,
                Bytes(len),
                Bytes::kib(16),
                Dur::ZERO,
            );
            let lo = self.read_think.0.as_micros();
            let hi = self.read_think.1.as_micros();
            b.think(Dur::from_micros(rng.gen_range(lo..=hi)));
        }

        // Phase 2: full-text search across the whole store (one big burst).
        for &mbox in &mboxes {
            b.read_file(TBIRD_PID, mbox, Bytes::kib(64));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_table3() {
        let t = Thunderbird::default().build(1);
        assert_eq!(t.files.len(), 283);
        let mb = t.files.total_size().get() as f64 / 1e6;
        assert!((mb - 188.1).abs() < 1.0, "{mb} MB");
    }

    #[test]
    fn two_phase_structure() {
        let cfg = Thunderbird::default();
        let t = cfg.build(2);
        let threshold = Dur::from_secs(5);
        // Long think pauses appear only in the email-reading phase.
        let long_gaps: Vec<usize> = t
            .records
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[1].ts.saturating_since(w[0].end()) >= threshold)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(long_gaps.len(), cfg.emails_read, "one pause per email");
        // And the search phase (after the last pause) reads the bulk of
        // the data in one dense run.
        let last_pause = *long_gaps.last().unwrap();
        let search_bytes: u64 = t.records[last_pause + 1..]
            .iter()
            .map(|r| r.len.get())
            .sum();
        assert!(
            search_bytes as f64 > 0.9 * cfg.mbox_bytes as f64,
            "search re-reads the whole store"
        );
    }

    #[test]
    fn search_phase_is_one_burst() {
        let t = Thunderbird::default().build(3);
        // After the final long pause, every gap is below the burst
        // threshold.
        let mut last_long = 0;
        for (i, w) in t.records.windows(2).enumerate() {
            if w[1].ts.saturating_since(w[0].end()) >= Dur::from_secs(5) {
                last_long = i + 1;
            }
        }
        for w in t.records[last_long..].windows(2) {
            let gap = w[1].ts.saturating_since(w[0].end());
            assert!(
                gap < Dur::from_millis(20),
                "gap {gap} splits the search burst"
            );
        }
    }

    #[test]
    fn email_reads_are_small() {
        let cfg = Thunderbird::default();
        let t = cfg.build(4);
        // Bytes read before the search phase ≈ startup + emails — a small
        // slice of the footprint (this is why Disk-only wastes energy).
        let mut phase1 = 0u64;
        let mut seen_long_gap_then_data = 0u64;
        let mut after_last_pause = false;
        let mut last_end = ff_base::SimTime::ZERO;
        for r in &t.records {
            if r.ts.saturating_since(last_end) >= Dur::from_secs(5) {
                after_last_pause = true;
                seen_long_gap_then_data = 0;
            }
            if after_last_pause {
                seen_long_gap_then_data += r.len.get();
            } else {
                phase1 += r.len.get();
            }
            last_end = r.end();
        }
        assert!(phase1 + seen_long_gap_then_data > 0);
        assert!(
            phase1 < 20_000_000,
            "interactive phase should be small, got {phase1} bytes"
        );
    }
}
