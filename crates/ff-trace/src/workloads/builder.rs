//! Shared machinery for trace generators.

use crate::model::{FileId, FileMeta, IoOp, Trace, TraceRecord};
use ff_base::{Bytes, BytesPerSec, Dur, SimTime};

/// Incremental trace construction with a virtual clock.
///
/// Timestamps/durations emitted here describe the *collection run* — the
/// run on which the profile was recorded. We assume collection happened on
/// the local disk (the common case for a hoarding setup), so read service
/// times are `seek+rotation` for the first access of a file plus transfer
/// at the disk's peak bandwidth; writes land in the page cache and take
/// ~1 µs/page. What the replayer later consumes are the **gaps** between
/// calls, which are device-independent think times (§2.1).
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    /// Process group all emitted records belong to (one program).
    pgid: u32,
    /// Virtual collection-run clock.
    now: SimTime,
    /// Next inode to hand out.
    next_inode: u64,
    /// File whose last byte was the previous read's end (sequential run
    /// detection for collection durations).
    last_read: Option<(FileId, u64)>,
}

/// Collection-run disk characteristics (Hitachi DK23DA, Table 1 text).
const COLLECT_SEEK_ROT: Dur = Dur::from_millis(20);
const COLLECT_BW_MB_S: f64 = 35.0;
/// Collection-run write cost: page-cache memcpy, ~1 µs per 4 KiB page.
const WRITE_US_PER_PAGE: u64 = 1;

impl TraceBuilder {
    /// Start a trace named `name`, handing out inodes from `base_inode`.
    ///
    /// Each workload uses a disjoint inode namespace so composite
    /// scenarios (grep+make ∥ xmms) can merge file sets without
    /// collisions.
    pub fn new(name: impl Into<String>, base_inode: u64) -> Self {
        TraceBuilder {
            trace: Trace::new(name),
            pgid: 0,
            now: SimTime::ZERO,
            next_inode: base_inode,
            last_read: None,
        }
    }

    /// Set the process group id stamped on subsequent records (defaults
    /// to the first pid seen when left at zero).
    pub fn with_pgid(mut self, pgid: u32) -> Self {
        self.pgid = pgid;
        self
    }

    /// Current virtual clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a file and return its id.
    pub fn add_file(&mut self, name: impl Into<String>, size: Bytes) -> FileId {
        let id = FileId(self.next_inode);
        self.next_inode += 1;
        self.trace.files.insert(FileMeta {
            id,
            name: name.into(),
            size,
        });
        id
    }

    /// Size of a registered file. Asking for an id this builder never
    /// handed out is a workload-generator bug: debug builds assert,
    /// release builds degrade to zero (the caller then emits no I/O for
    /// the phantom file instead of aborting the simulation).
    pub fn file_size(&self, id: FileId) -> Bytes {
        let size = self.trace.files.get(id).map(|m| m.size);
        debug_assert!(size.is_some(), "unregistered file {id:?}");
        size.unwrap_or(Bytes::ZERO)
    }

    /// Advance the clock without I/O (application think/compute time).
    pub fn think(&mut self, d: Dur) {
        self.now += d;
    }

    /// Emit one read; advances the clock by the collection-run service
    /// time (seek+rotation unless sequential with the previous read, plus
    /// transfer at peak disk bandwidth).
    pub fn read(&mut self, pid: u32, file: FileId, offset: u64, len: Bytes) {
        debug_assert!(!len.is_zero(), "zero-length read");
        let sequential = self.last_read == Some((file, offset));
        let mut dur = BytesPerSec::from_mb_per_sec(COLLECT_BW_MB_S).transfer_time(len);
        if !sequential {
            dur += COLLECT_SEEK_ROT;
        }
        self.push(pid, file, IoOp::Read, offset, len, dur);
        self.last_read = Some((file, offset + len.get()));
    }

    /// Emit one write; advances the clock by the page-cache copy time.
    pub fn write(&mut self, pid: u32, file: FileId, offset: u64, len: Bytes) {
        debug_assert!(!len.is_zero(), "zero-length write");
        let dur = Dur::from_micros(len.pages().max(1) * WRITE_US_PER_PAGE);
        self.push(pid, file, IoOp::Write, offset, len, dur);
    }

    fn push(&mut self, pid: u32, file: FileId, op: IoOp, offset: u64, len: Bytes, dur: Dur) {
        if self.pgid == 0 {
            self.pgid = pid;
        }
        let pgid = self.pgid;
        self.trace.records.push(TraceRecord {
            pid,
            pgid,
            file,
            op,
            offset,
            len,
            ts: self.now,
            dur,
        });
        self.now += dur;
    }

    /// Read a whole byte range sequentially in `chunk`-sized calls with
    /// `inter_chunk_think` between them (zero keeps the range in one
    /// burst).
    pub fn read_range(
        &mut self,
        pid: u32,
        file: FileId,
        start: u64,
        len: Bytes,
        chunk: Bytes,
        inter_chunk_think: Dur,
    ) {
        debug_assert!(!chunk.is_zero());
        let mut off = start;
        let end = start + len.get();
        while off < end {
            let n = chunk.get().min(end - off);
            self.read(pid, file, off, Bytes(n));
            off += n;
            if off < end && !inter_chunk_think.is_zero() {
                self.think(inter_chunk_think);
            }
        }
    }

    /// Read an entire file sequentially in one burst.
    pub fn read_file(&mut self, pid: u32, file: FileId, chunk: Bytes) {
        let size = self.file_size(file);
        self.read_range(pid, file, 0, size, chunk, Dur::ZERO);
    }

    /// Finish and return the trace (debug-asserts validity).
    pub fn finish(self) -> Trace {
        debug_assert!(
            self.trace.validate().is_ok(),
            "builder produced invalid trace"
        );
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_service_time_and_think() {
        let mut b = TraceBuilder::new("t", 100);
        let f = b.add_file("a", Bytes::kib(64));
        b.read(1, f, 0, Bytes::kib(32));
        let after_first = b.now();
        // Random access: 20 ms + 32 KiB / 35 MB/s (~0.94 ms).
        assert!(after_first > SimTime::from_millis(20));
        assert!(after_first < SimTime::from_millis(22));
        b.think(Dur::from_secs(1));
        b.read(1, f, 32 * 1024, Bytes::kib(32));
        let t = b.finish();
        assert_eq!(t.records.len(), 2);
        // Second read is sequential with the first: no seek component.
        assert!(
            t.records[1].dur < Dur::from_millis(2),
            "dur {}",
            t.records[1].dur
        );
        // Gap between records is at least the think time.
        let gap = t.records[1].ts - t.records[0].end();
        assert_eq!(gap, Dur::from_secs(1));
    }

    #[test]
    fn non_contiguous_read_pays_seek_again() {
        let mut b = TraceBuilder::new("t", 100);
        let f = b.add_file("a", Bytes::mib(1));
        b.read(1, f, 0, Bytes::kib(4));
        b.read(1, f, 512 * 1024, Bytes::kib(4)); // jump
        let t = b.finish();
        assert!(t.records[1].dur >= Dur::from_millis(20));
    }

    #[test]
    fn read_range_covers_exactly_and_stays_in_bounds() {
        let mut b = TraceBuilder::new("t", 100);
        let f = b.add_file("a", Bytes(100_000));
        b.read_range(1, f, 0, Bytes(100_000), Bytes::kib(32), Dur::ZERO);
        let t = b.finish();
        let total: u64 = t.records.iter().map(|r| r.len.get()).sum();
        assert_eq!(total, 100_000);
        // Last chunk is the remainder, not a full chunk.
        assert_eq!(t.records.last().unwrap().len, Bytes(100_000 % (32 * 1024)));
        t.validate().unwrap();
    }

    #[test]
    fn read_file_reads_whole_file() {
        let mut b = TraceBuilder::new("t", 100);
        let f = b.add_file("a", Bytes::kib(100));
        b.read_file(1, f, Bytes::kib(32));
        let t = b.finish();
        assert_eq!(t.total_bytes(), Bytes::kib(100));
    }

    #[test]
    fn inodes_are_handed_out_from_base() {
        let mut b = TraceBuilder::new("t", 5_000);
        let a = b.add_file("a", Bytes(1));
        let c = b.add_file("c", Bytes(1));
        assert_eq!(a, FileId(5_000));
        assert_eq!(c, FileId(5_001));
    }

    #[test]
    fn writes_are_cheap_in_collection_run() {
        let mut b = TraceBuilder::new("t", 100);
        let f = b.add_file("a", Bytes::mib(1));
        b.write(1, f, 0, Bytes::kib(40));
        let t = b.finish();
        assert!(t.records[0].dur <= Dur::from_micros(10));
    }
}
