//! Configurable synthetic workloads (extension).
//!
//! The six Table 3 generators reproduce the paper's applications; this
//! builder explores the *space around them*: arbitrary combinations of
//! file-size distribution, think-time distribution, request size, and
//! access pattern — the knobs the paper's §3.3 narratives identify as
//! what actually drives the disk/WNIC decision (burst size and
//! think-time structure).
//!
//! ```
//! use ff_base::{Bytes, Dist, Dur};
//! use ff_trace::workloads::synthetic::{AccessPattern, Synthetic};
//! use ff_trace::Workload;
//!
//! // A sparse hot/cold random-read workload with log-normal files.
//! let w = Synthetic {
//!     name: "hotcold",
//!     files: 50,
//!     total_bytes: 5_000_000,
//!     size_dist: Dist::log_normal(60_000.0, 1.0),
//!     chunk: Bytes::kib(32),
//!     think_dist: Dist::exponential(2.0),
//!     pattern: AccessPattern::RandomHotCold { hot_fraction: 0.2, hot_weight: 0.8 },
//!     requests: 200,
//!     base_inode: 90_000,
//!     pid: 900,
//! };
//! let t = w.build(1);
//! assert_eq!(t.len(), 200);
//! t.validate().unwrap();
//! ```

use super::{builder::TraceBuilder, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dist, Dur, Sample};
use rand::Rng;

/// How requests pick their targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Scan every file front to back, file after file (grep-like).
    SequentialScan,
    /// Each request picks a file at random; a `hot_fraction` of the
    /// files receives `hot_weight` of the accesses (skewed re-reads).
    RandomHotCold {
        /// Fraction of files in the hot set (0, 1].
        hot_fraction: f64,
        /// Probability an access lands in the hot set [0, 1].
        hot_weight: f64,
    },
    /// One file consumed sequentially at the think-time pace, wrapping
    /// across files when exhausted (streaming-like).
    PacedStream,
}

/// The configurable generator.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Trace name.
    pub name: &'static str,
    /// Number of files.
    pub files: usize,
    /// Total corpus size (sizes drawn from `size_dist` are scaled to it).
    pub total_bytes: u64,
    /// File-size shape (values are relative weights, rescaled to
    /// `total_bytes`).
    pub size_dist: Dist,
    /// Bytes per read() call.
    pub chunk: Bytes,
    /// Think time between requests, in seconds.
    pub think_dist: Dist,
    /// Target selection.
    pub pattern: AccessPattern,
    /// Number of read requests to emit (SequentialScan stops early when
    /// the corpus is exhausted).
    pub requests: usize,
    /// Inode namespace base.
    pub base_inode: u64,
    /// Process id / group.
    pub pid: u32,
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        self.name
    }

    fn build(&self, seed: u64) -> Trace {
        assert!(self.files > 0 && self.requests > 0);
        let mut rng = seeded_rng(split_seed(seed, 0x5f17));
        let mut b = TraceBuilder::new(self.name, self.base_inode);

        // Draw relative sizes, rescale to the corpus total, floor at one
        // chunk so every file is addressable.
        let weights: Vec<f64> = (0..self.files)
            .map(|_| self.size_dist.sample(&mut rng).max(1e-9))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let min_size = self.chunk.get().max(4096);
        let sizes: Vec<u64> = weights
            .iter()
            .map(|w| ff_base::checked::f64_to_u64((w / wsum) * self.total_bytes as f64))
            .map(|s| s.max(min_size))
            .collect();
        let files: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("{}/f{i}", self.name), Bytes(s)))
            .collect();

        let think = |b: &mut TraceBuilder, rng: &mut ff_base::SimRng| {
            let secs = self.think_dist.sample(rng).max(0.0);
            b.think(Dur::from_secs_f64(secs));
        };

        match self.pattern {
            AccessPattern::SequentialScan => {
                let mut emitted = 0;
                'outer: for (fi, &f) in files.iter().enumerate() {
                    let size = sizes[fi];
                    let mut off = 0;
                    while off < size {
                        if emitted >= self.requests {
                            break 'outer;
                        }
                        let n = self.chunk.get().min(size - off);
                        b.read(self.pid, f, off, Bytes(n));
                        off += n;
                        emitted += 1;
                        think(&mut b, &mut rng);
                    }
                }
            }
            AccessPattern::RandomHotCold {
                hot_fraction,
                hot_weight,
            } => {
                let hot_n =
                    ((self.files as f64 * hot_fraction).ceil() as usize).clamp(1, self.files);
                for _ in 0..self.requests {
                    let fi = if rng.gen_bool(hot_weight.clamp(0.0, 1.0)) {
                        rng.gen_range(0..hot_n)
                    } else {
                        rng.gen_range(0..self.files)
                    };
                    let size = sizes[fi];
                    let n = self.chunk.get().min(size);
                    let max_start = size - n;
                    let off = if max_start == 0 {
                        0
                    } else {
                        (rng.gen_range(0..=max_start) / 4096) * 4096
                    };
                    b.read(self.pid, files[fi], off, Bytes(n));
                    think(&mut b, &mut rng);
                }
            }
            AccessPattern::PacedStream => {
                let mut fi = 0;
                let mut off = 0u64;
                for _ in 0..self.requests {
                    if off >= sizes[fi] {
                        fi = (fi + 1) % self.files;
                        off = 0;
                    }
                    let n = self.chunk.get().min(sizes[fi] - off);
                    b.read(self.pid, files[fi], off, Bytes(n));
                    off += n;
                    think(&mut b, &mut rng);
                }
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Synthetic {
        Synthetic {
            name: "synth",
            files: 20,
            total_bytes: 2_000_000,
            size_dist: Dist::log_normal(100_000.0, 1.0),
            chunk: Bytes::kib(32),
            think_dist: Dist::exponential(0.5),
            pattern: AccessPattern::SequentialScan,
            requests: 100,
            base_inode: 90_000,
            pid: 900,
        }
    }

    #[test]
    fn scan_emits_requested_count_and_validates() {
        let w = Synthetic {
            requests: 50,
            ..base()
        };
        let t = w.build(1);
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
        // Deterministic.
        assert_eq!(t, w.build(1));
        assert_ne!(t.records, w.build(2).records);
    }

    #[test]
    fn scan_stops_when_the_corpus_is_exhausted() {
        // 2 MB corpus in 32 KiB chunks ≈ 70 calls < the 10 000 requested.
        let w = Synthetic {
            requests: 10_000,
            ..base()
        };
        let t = w.build(1);
        assert!(t.len() < 10_000);
        assert_eq!(t.total_bytes().get(), t.files.total_size().get());
        t.validate().unwrap();
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let w = Synthetic {
            pattern: AccessPattern::RandomHotCold {
                hot_fraction: 0.1,
                hot_weight: 0.9,
            },
            requests: 2_000,
            ..base()
        };
        let t = w.build(3);
        t.validate().unwrap();
        // ≥80 % of accesses land on the two hottest inodes.
        let hot: usize = t.records.iter().filter(|r| r.file.0 < 90_000 + 2).count();
        assert!(
            hot as f64 / 2_000.0 > 0.8,
            "hot share {}",
            hot as f64 / 2_000.0
        );
    }

    #[test]
    fn paced_stream_is_sequential_per_file() {
        let w = Synthetic {
            pattern: AccessPattern::PacedStream,
            think_dist: Dist::Constant(2.0),
            ..base()
        };
        let t = w.build(4);
        t.validate().unwrap();
        // Offsets within a file never move backwards.
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        for r in &t.records {
            let e = last.entry(r.file.0).or_insert(0);
            assert!(r.offset >= *e || r.offset == 0);
            *e = r.end_offset();
        }
        // Gaps track the constant think time.
        let gap = t.records[1].ts.saturating_since(t.records[0].end());
        assert!((gap.as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn exponential_thinks_are_memorylessly_spread() {
        let w = Synthetic {
            think_dist: Dist::exponential(1.0),
            requests: 500,
            total_bytes: 40_000_000, // plenty of corpus for 500 calls
            ..base()
        };
        let t = w.build(5);
        let gaps: Vec<f64> = t
            .records
            .windows(2)
            .map(|p| p[1].ts.saturating_since(p[0].end()).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 1.0).abs() < 0.2, "mean think {mean}");
    }

    #[test]
    fn synthetic_drives_the_full_pipeline() {
        // End-to-end: the synthetic trace profiles and replays.
        let w = Synthetic {
            pattern: AccessPattern::RandomHotCold {
                hot_fraction: 0.2,
                hot_weight: 0.7,
            },
            think_dist: Dist::exponential(3.0),
            requests: 150,
            ..base()
        };
        let t = w.build(6);
        let bursts = crate::Workload::name(&w);
        assert_eq!(bursts, "synth");
        t.validate().unwrap();
        assert!(t.stats().span > Dur::from_secs(100));
    }
}
