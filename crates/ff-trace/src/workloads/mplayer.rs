//! `mplayer` — "a movie player" (Table 3: 121 files, 136.3 MB).
//!
//! §3.3.2: *"Mplayer continuously accesses data, but only a small amount
//! of data at a time"* and the inter-request gaps are *"sparsely
//! distributed — an access pattern that makes accessing the disk energy
//! inefficient."* The generator models a startup burst (codecs, fonts,
//! config) followed by paced streaming of a large movie file at the video
//! bit rate.

use super::{builder::TraceBuilder, partition_sizes, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::Rng;

/// Generator for the movie-playback workload.
#[derive(Debug, Clone)]
pub struct Mplayer {
    /// Size of the movie file itself.
    pub movie_bytes: u64,
    /// Support files read at startup (codecs, fonts, config).
    pub support_files: usize,
    /// Total size of the support files.
    pub support_bytes: u64,
    /// Demuxer read size per refill.
    pub chunk: Bytes,
    /// Video bit rate in bits/second (sets the refill pace).
    pub bitrate: u64,
    /// Stop after this much played time (`None` = play to the end).
    pub play_limit: Option<Dur>,
}

impl Default for Mplayer {
    fn default() -> Self {
        Mplayer {
            movie_bytes: 120_000_000,
            support_files: 120,
            support_bytes: 16_300_000,
            chunk: Bytes::kib(128),
            bitrate: 445_000,
            play_limit: Some(Dur::from_secs(600)),
        }
    }
}

/// Inode namespace base for mplayer files.
pub const MPLAYER_INODE_BASE: u64 = 40_000;
/// Pid of the mplayer process.
pub const MPLAYER_PID: u32 = 400;

impl Mplayer {
    /// Refill interval implied by chunk size and bit rate.
    pub fn refill_interval(&self) -> Dur {
        Dur::from_secs_f64(self.chunk.get() as f64 / (self.bitrate as f64 / 8.0))
    }
}

impl Workload for Mplayer {
    fn name(&self) -> &'static str {
        "mplayer"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0x4455));
        let mut b = TraceBuilder::new(self.name(), MPLAYER_INODE_BASE);
        let sizes = partition_sizes(&mut rng, self.support_bytes, self.support_files, 512);
        let support: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("mplayer/support_{i}"), Bytes(s)))
            .collect();
        let movie = b.add_file("movies/feature.avi", Bytes(self.movie_bytes));

        // Startup burst: read config/codecs/fonts back to back.
        for &f in &support {
            b.read_file(MPLAYER_PID, f, Bytes::kib(32));
        }
        b.think(Dur::from_millis(900)); // decoder init

        // Paced streaming of the movie.
        let interval = self.refill_interval();
        let mut off = 0;
        let start = b.now();
        while off < self.movie_bytes {
            if let Some(limit) = self.play_limit {
                if b.now().saturating_since(start) >= limit {
                    break;
                }
            }
            let n = self.chunk.get().min(self.movie_bytes - off);
            b.read(MPLAYER_PID, movie, off, Bytes(n));
            off += n;
            b.think(interval + Dur::from_micros(rng.gen_range(0..5_000)));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_table3() {
        let t = Mplayer::default().build(1);
        assert_eq!(t.files.len(), 121);
        let mb = t.files.total_size().get() as f64 / 1e6;
        assert!((mb - 136.3).abs() < 1.0, "{mb} MB");
    }

    #[test]
    fn streaming_is_paced_not_bursty() {
        let t = Mplayer::default().build(2);
        let interval = Mplayer::default().refill_interval();
        // 128 KiB at 445 kbit/s ≈ 2.36 s between refills (2007-era MPEG4).
        assert!((interval.as_secs_f64() - 2.356).abs() < 0.01);
        // After the startup burst, gaps sit near the refill interval:
        // large enough to end a burst, far too short to spin the disk down.
        // The movie file is the last inode handed out; find its first read.
        let movie = t.files.iter().map(|f| f.id).max().unwrap();
        let stream_start = t.records.iter().position(|r| r.file == movie).unwrap();
        let stream_gaps: Vec<Dur> = t.records[stream_start..]
            .windows(2)
            .map(|w| w[1].ts.saturating_since(w[0].end()))
            .collect();
        assert!(!stream_gaps.is_empty());
        for gap in &stream_gaps {
            assert!(*gap < Dur::from_secs(5), "gap {gap}");
            assert!(*gap > Dur::from_millis(20), "gap {gap} not sparse");
        }
    }

    #[test]
    fn play_limit_truncates_movie() {
        let m = Mplayer {
            play_limit: Some(Dur::from_secs(60)),
            ..Mplayer::default()
        };
        let t = m.build(3);
        // ~60 s at 55 KB/s ≈ 3.5 MB of movie + startup; far below full size.
        let read = t.stats().read_bytes.get();
        assert!(read < 30_000_000, "read {read} bytes, limit ignored");
    }

    #[test]
    fn startup_burst_then_stream() {
        let t = Mplayer::default().build(4);
        // First ~support_files reads happen within a second of each other.
        let first = t.records.first().unwrap().ts;
        let startup_end = t.records[119].ts;
        assert!(startup_end.saturating_since(first) < Dur::from_secs(30));
    }
}
