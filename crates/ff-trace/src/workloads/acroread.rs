//! `Acroread` — "a PDF file reader" (Table 3: 10 files, 200 MB).
//!
//! §3.3.5 uses Acroread to test **invalid profiles**: the recorded
//! profile comes from a run over *2 MB PDFs read every 25 s* (interval
//! longer than the 20 s disk timeout → network looks good), but the
//! current run searches *20 MB PDFs every 10 s* (bursty → disk is
//! better). Two constructors produce the two variants.

use super::{builder::TraceBuilder, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::Rng;

/// Generator for the PDF-search workload.
#[derive(Debug, Clone)]
pub struct Acroread {
    /// Number of PDF files.
    pub files: usize,
    /// Size of each PDF.
    pub file_bytes: u64,
    /// Keyword searches performed (each scans one whole file).
    pub searches: usize,
    /// User think time between searches.
    pub interval: Dur,
    /// Read size per call.
    pub chunk: Bytes,
}

/// Inode namespace base for Acroread files.
pub const ACROREAD_INODE_BASE: u64 = 60_000;
/// Pid of the Acroread process.
pub const ACROREAD_PID: u32 = 600;

impl Acroread {
    /// The *current run* of §3.3.5 and the Table 3 row: ten 20 MB PDFs
    /// searched continuously with a 10 s interval.
    pub fn large_search() -> Self {
        Acroread {
            files: 10,
            file_bytes: 20_000_000,
            searches: 10,
            interval: Dur::from_secs(10),
            chunk: Bytes::kib(64),
        }
    }

    /// The *out-of-date profile* run of §3.3.5: 2 MB PDFs read with a
    /// 25 s interval — longer than the 20 s disk spin-down timeout.
    pub fn small_profile() -> Self {
        Acroread {
            files: 10,
            file_bytes: 2_000_000,
            searches: 10,
            interval: Dur::from_secs(25),
            chunk: Bytes::kib(64),
        }
    }
}

impl Default for Acroread {
    fn default() -> Self {
        Acroread::large_search()
    }
}

impl Workload for Acroread {
    fn name(&self) -> &'static str {
        "acroread"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0xacc0));
        let mut b = TraceBuilder::new(self.name(), ACROREAD_INODE_BASE);
        let pdfs: Vec<_> = (0..self.files)
            .map(|i| b.add_file(format!("docs/spec_{i}.pdf"), Bytes(self.file_bytes)))
            .collect();
        for s in 0..self.searches {
            let pdf = pdfs[s % pdfs.len()];
            // A keyword search scans the whole document.
            b.read_file(ACROREAD_PID, pdf, self.chunk);
            // User examines the hits, types the next keyword.
            let jitter = rng.gen_range(0..500_000);
            b.think(self.interval + Dur::from_micros(jitter));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_variant_matches_table3() {
        let t = Acroread::large_search().build(1);
        assert_eq!(t.files.len(), 10);
        assert_eq!(t.files.total_size(), Bytes(200_000_000));
        t.validate().unwrap();
    }

    #[test]
    fn small_profile_interval_exceeds_disk_timeout() {
        let a = Acroread::small_profile();
        assert!(
            a.interval > Dur::from_secs(20),
            "must out-wait the spin-down timeout"
        );
        let t = a.build(2);
        // Between two searches the gap is > 20 s.
        let mut gaps = vec![];
        for w in t.records.windows(2) {
            let gap = w[1].ts.saturating_since(w[0].end());
            if gap > Dur::from_secs(1) {
                gaps.push(gap);
            }
        }
        assert_eq!(
            gaps.len(),
            a.searches - 1 + 1 - 1,
            "one think gap per search boundary"
        );
        assert!(gaps.iter().all(|g| *g > Dur::from_secs(20)));
    }

    #[test]
    fn large_variant_interval_is_within_disk_timeout() {
        let a = Acroread::large_search();
        let t = a.build(3);
        let mut inter_search: Vec<Dur> = vec![];
        for w in t.records.windows(2) {
            let gap = w[1].ts.saturating_since(w[0].end());
            if gap > Dur::from_secs(1) {
                inter_search.push(gap);
            }
        }
        assert!(inter_search.iter().all(|g| *g < Dur::from_secs(15)));
    }

    #[test]
    fn each_search_scans_one_whole_file() {
        let a = Acroread {
            files: 3,
            file_bytes: 1_000_000,
            searches: 4,
            ..Acroread::large_search()
        };
        let t = a.build(4);
        assert_eq!(t.stats().read_bytes, Bytes(4_000_000));
    }

    #[test]
    fn variants_differ_in_burst_size() {
        let small = Acroread::small_profile().build(5);
        let large = Acroread::large_search().build(5);
        assert_eq!(
            small.stats().read_bytes.get() * 10,
            large.stats().read_bytes.get()
        );
    }
}
