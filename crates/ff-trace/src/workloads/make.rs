//! `make` — "building Linux kernel" (Table 3: 2579 files, 72.5 MB).
//!
//! §3.3.1: the build *"takes several minutes"* and is the canonical
//! **non-bursty** workload: each compilation unit reads a source file and
//! a handful of headers (many shared across units, so the buffer cache
//! absorbs repeats), computes for a while, and writes a small object
//! file. The paper notes make *"could generate multiple gcc processes
//! concurrently"* — units are attributed to a small pool of pids in one
//! process group (§2.1).

use super::{builder::TraceBuilder, partition_sizes, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generator for the kernel-build workload.
#[derive(Debug, Clone)]
pub struct Make {
    /// Compilation units (source files compiled). Each unit contributes a
    /// source file and an object file to the file population.
    pub units: usize,
    /// Shared header pool size.
    pub headers: usize,
    /// Extra metadata files (Makefiles, Kconfig, linker scripts…).
    pub misc: usize,
    /// Total size of the source+header+misc inputs.
    pub input_bytes: u64,
    /// Headers included per unit (min, max).
    pub includes: (usize, usize),
    /// Compile think time per unit (min, max).
    pub compile_think: (Dur, Dur),
    /// Object file size range.
    pub obj_size: (u64, u64),
}

impl Default for Make {
    fn default() -> Self {
        // 620 sources + 620 objects + 1300 headers + 38 misc + vmlinux
        // = 2579 files (Table 3). Objects average 32 KiB (~20.3 MB) and
        // vmlinux is half the object total (~10.2 MB), so 42 MB of inputs
        // lands the footprint on Table 3's 72.5 MB.
        Make {
            units: 620,
            headers: 1300,
            misc: 38,
            input_bytes: 42_000_000,
            includes: (3, 9),
            compile_think: (Dur::from_millis(1_800), Dur::from_millis(4_500)),
            obj_size: (8_192, 57_344),
        }
    }
}

/// Inode namespace base for make files.
pub const MAKE_INODE_BASE: u64 = 20_000;
/// First pid of the gcc pool.
pub const MAKE_PID_BASE: u32 = 200;
/// Size of the concurrent-gcc pid pool.
pub const MAKE_PID_POOL: u32 = 4;

impl Workload for Make {
    fn name(&self) -> &'static str {
        "make"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0x3a4e));
        let mut b = TraceBuilder::new(self.name(), MAKE_INODE_BASE);

        let n_inputs = self.units + self.headers + self.misc;
        let sizes = partition_sizes(&mut rng, self.input_bytes, n_inputs, 512);
        let (src_sizes, rest) = sizes.split_at(self.units);
        let (hdr_sizes, misc_sizes) = rest.split_at(self.headers);

        let sources: Vec<_> = src_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("kernel/unit_{i}.c"), Bytes(s)))
            .collect();
        let headers: Vec<_> = hdr_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("include/h_{i}.h"), Bytes(s)))
            .collect();
        let miscs: Vec<_> = misc_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("build/meta_{i}"), Bytes(s)))
            .collect();
        // Pre-size the object files so validate() sees writes in bounds.
        let objects: Vec<_> = (0..self.units)
            .map(|i| {
                let s = rng.gen_range(self.obj_size.0..=self.obj_size.1);
                (b.add_file(format!("kernel/unit_{i}.o"), Bytes(s)), s)
            })
            .collect();

        // Startup: make parses its metadata files (one small burst).
        for &m in &miscs {
            b.read_file(MAKE_PID_BASE, m, Bytes::kib(32));
        }
        b.think(Dur::from_millis(400));

        // Compile loop.
        for (i, &src) in sources.iter().enumerate() {
            let pid = MAKE_PID_BASE + (ff_base::checked::u64_to_u32(i as u64) % MAKE_PID_POOL);
            b.read_file(pid, src, Bytes::kib(32));
            let n_inc = rng.gen_range(self.includes.0..=self.includes.1);
            for &h in headers.choose_multiple(&mut rng, n_inc) {
                b.read_file(pid, h, Bytes::kib(32));
            }
            let lo = self.compile_think.0.as_micros();
            let hi = self.compile_think.1.as_micros();
            b.think(Dur::from_micros(rng.gen_range(lo..=hi)));
            let (obj, size) = objects[i];
            b.write(pid, obj, 0, Bytes(size));
            // Brief make bookkeeping before the next unit.
            b.think(Dur::from_millis(rng.gen_range(5..40)));
        }

        // Link phase: read all objects back to back, write the image into
        // the last misc slot's... no — the image is a fresh file.
        let image_size: u64 = objects.iter().map(|&(_, s)| s).sum::<u64>() / 2;
        let image = b.add_file("vmlinux", Bytes(image_size));
        b.think(Dur::from_millis(300));
        for &(obj, _) in &objects {
            b.read_file(MAKE_PID_BASE, obj, Bytes::kib(64));
        }
        b.think(Dur::from_millis(800));
        let mut off = 0;
        while off < image_size {
            let n = (image_size - off).min(128 * 1024);
            b.write(MAKE_PID_BASE, image, off, Bytes(n));
            off += n;
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IoOp;

    fn small() -> Make {
        Make {
            units: 20,
            headers: 40,
            misc: 3,
            input_bytes: 2_000_000,
            ..Make::default()
        }
    }

    #[test]
    fn file_population_matches_formula() {
        let m = small();
        let t = m.build(1);
        // sources + objects + headers + misc + vmlinux
        assert_eq!(t.files.len(), 20 + 20 + 40 + 3 + 1);
        t.validate().unwrap();
    }

    #[test]
    fn default_matches_table3() {
        let m = Make::default();
        // 620 + 620 + 1300 + 38 + vmlinux = 2579 files (Table 3).
        assert_eq!(m.units * 2 + m.headers + m.misc + 1, 2579);
    }

    #[test]
    fn run_spans_minutes_with_compile_gaps() {
        let t = Make::default().build(2);
        let span = t.stats().span;
        assert!(
            span > Dur::from_secs(180),
            "kernel build should take minutes, got {span}"
        );
        // And it must not be one giant burst: count gaps above the 20 ms
        // burst threshold.
        let threshold = Dur::from_millis(20);
        let breaks = t
            .records
            .windows(2)
            .filter(|w| w[1].ts.saturating_since(w[0].end()) >= threshold)
            .count();
        assert!(
            breaks > 500,
            "make should be non-bursty, got {breaks} breaks"
        );
    }

    #[test]
    fn mixes_reads_and_writes() {
        let t = small().build(3);
        let s = t.stats();
        assert!(s.read_bytes > Bytes::ZERO);
        assert!(s.written_bytes > Bytes::ZERO);
        // Object writes happen throughout, not only at the end.
        let first_write = t.records.iter().position(|r| r.op == IoOp::Write).unwrap();
        assert!(first_write < t.records.len() / 2);
    }

    #[test]
    fn headers_are_reaccessed_across_units() {
        let t = small().build(4);
        use std::collections::HashMap;
        let mut reads_per_file: HashMap<u64, usize> = HashMap::new();
        for r in t.records.iter().filter(|r| r.op == IoOp::Read) {
            *reads_per_file.entry(r.file.0).or_default() += 1;
        }
        // With 20 units × ≥3 includes over 40 headers, some header must be
        // read in more than one unit (cache-hit fodder, §2.3.2).
        let header_hit = reads_per_file.values().any(|&n| n > 4);
        assert!(header_hit, "no header reuse generated");
    }

    #[test]
    fn uses_a_pid_pool() {
        let t = small().build(5);
        assert!(t.pids().len() > 1, "expected multiple gcc pids");
        assert!(t.pids().len() <= 1 + MAKE_PID_POOL as usize);
    }
}
