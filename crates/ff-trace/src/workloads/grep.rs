//! `grep` — "a text search tool" (Table 3: 1332 files, 50.4 MB).
//!
//! §3.3.1: *"a large number of small files are first accessed in a very
//! short period (grep)"* — a kernel programmer searching the Linux source
//! tree. The whole run is essentially one long I/O burst: every file is
//! read back to back with sub-millisecond pattern-matching think time
//! between calls.

use super::{builder::TraceBuilder, partition_sizes, Workload};
use crate::model::Trace;
use ff_base::{seeded_rng, split_seed, Bytes, Dur};
use rand::Rng;

/// Generator for the grep workload.
#[derive(Debug, Clone)]
pub struct Grep {
    /// Number of source files scanned (Table 3: 1332).
    pub files: usize,
    /// Total bytes across all files (Table 3: 50.4 MB).
    pub total_bytes: u64,
    /// Read buffer size per `read()` call (GNU grep uses 32 KiB).
    pub chunk: Bytes,
    /// Upper bound on per-call matching think time.
    pub max_think: Dur,
}

impl Default for Grep {
    fn default() -> Self {
        Grep {
            files: 1332,
            total_bytes: 50_400_000,
            chunk: Bytes::kib(32),
            max_think: Dur::from_micros(800),
        }
    }
}

/// Inode namespace base for grep files.
pub const GREP_INODE_BASE: u64 = 10_000;
/// Pid of the grep process.
pub const GREP_PID: u32 = 100;

impl Workload for Grep {
    fn name(&self) -> &'static str {
        "grep"
    }

    fn build(&self, seed: u64) -> Trace {
        let mut rng = seeded_rng(split_seed(seed, 0x67e9));
        let mut b = TraceBuilder::new(self.name(), GREP_INODE_BASE);
        let sizes = partition_sizes(&mut rng, self.total_bytes, self.files, 512);
        let files: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| b.add_file(format!("linux/src_{i}.c"), Bytes(s)))
            .collect();
        for f in files {
            b.read_file(GREP_PID, f, self.chunk);
            // Pattern matching on the buffer just read: far below the
            // 20 ms burst threshold, so the scan stays one burst.
            let think = rng.gen_range(0..=self.max_think.as_micros());
            b.think(Dur::from_micros(think));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_one_dense_burst() {
        let t = Grep::default().build(1);
        // Every inter-call gap must be below the 20 ms burst threshold.
        let threshold = Dur::from_millis(20);
        for w in t.records.windows(2) {
            let gap = w[1].ts.saturating_since(w[0].end());
            assert!(gap < threshold, "gap {gap} splits the grep burst");
        }
    }

    #[test]
    fn reads_every_file_completely() {
        let g = Grep {
            files: 10,
            total_bytes: 1_000_000,
            ..Grep::default()
        };
        let t = g.build(3);
        assert_eq!(t.total_bytes(), Bytes(1_000_000));
        assert_eq!(t.files.len(), 10);
        t.validate().unwrap();
    }

    #[test]
    fn only_reads_no_writes() {
        let t = Grep {
            files: 20,
            total_bytes: 200_000,
            ..Grep::default()
        }
        .build(1);
        assert_eq!(t.stats().written_bytes, Bytes::ZERO);
    }

    #[test]
    fn small_files_dominate() {
        let t = Grep::default().build(5);
        let avg = t.files.total_size().get() / t.files.len() as u64;
        // ~38 KiB average source file.
        assert!(
            avg < 80_000,
            "avg file size {avg} too large for grep corpus"
        );
    }
}
