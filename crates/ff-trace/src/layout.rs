//! On-disk block layout.
//!
//! §3.2: *"The blocks of the traced files are sequentially mapped to the
//! local hard disk with a small random distance between files to simulate
//! a real layout of files on the disk."* §2.1 additionally assumes
//! *"sequential data in a file are usually contiguously laid out on
//! disk"* (FFS-style allocation).
//!
//! The layout assigns every file a contiguous extent of 4 KiB blocks; the
//! disk model uses global block addresses to decide whether a request is
//! sequential with the previous one (no seek) or random (seek + rotation).

use crate::model::{FileId, FileSet};
use ff_base::{split_seed, Bytes};
use rand::Rng;
use std::collections::BTreeMap;

/// Block size used for layout addressing (matches the cache page size).
pub const BLOCK_SIZE: u64 = 4096;

/// A contiguous extent of blocks assigned to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First block of the file.
    pub start: u64,
    /// Number of blocks.
    pub blocks: u64,
}

impl Extent {
    /// Exclusive end block.
    pub fn end(&self) -> u64 {
        self.start + self.blocks
    }
}

/// Sequential-with-gaps mapping of a [`FileSet`] onto disk blocks.
#[derive(Debug, Clone, Default)]
pub struct DiskLayout {
    extents: BTreeMap<FileId, Extent>,
    total_blocks: u64,
}

impl DiskLayout {
    /// Maximum random gap between consecutive files, in blocks ("a small
    /// random distance"): up to 64 blocks = 256 KiB.
    pub const MAX_GAP_BLOCKS: u64 = 64;

    /// Lay out `files` in inode order, separated by a deterministic random
    /// gap derived from `seed`.
    pub fn build(files: &FileSet, seed: u64) -> Self {
        let mut rng = ff_base::seeded_rng(split_seed(seed, 0xD15C));
        let mut extents = BTreeMap::new();
        let mut cursor = 0u64;
        for meta in files.iter() {
            let blocks = meta.size.pages().max(1);
            extents.insert(
                meta.id,
                Extent {
                    start: cursor,
                    blocks,
                },
            );
            cursor += blocks + rng.gen_range(1..=Self::MAX_GAP_BLOCKS);
        }
        DiskLayout {
            extents,
            total_blocks: cursor,
        }
    }

    /// Extent of a file, if laid out.
    pub fn extent(&self, file: FileId) -> Option<Extent> {
        self.extents.get(&file).copied()
    }

    /// Global block address of byte `offset` within `file`.
    /// Returns `None` for unknown files or offsets past the extent.
    pub fn block_of(&self, file: FileId, offset: u64) -> Option<u64> {
        let e = self.extents.get(&file)?;
        let rel = offset / BLOCK_SIZE;
        (rel < e.blocks).then_some(e.start + rel)
    }

    /// Global block range `[first, last]` touched by `len` bytes at
    /// `offset` in `file`; clamps to the file's extent.
    pub fn block_range(&self, file: FileId, offset: u64, len: Bytes) -> Option<(u64, u64)> {
        if len.is_zero() {
            return None;
        }
        let e = self.extents.get(&file)?;
        let first_rel = offset / BLOCK_SIZE;
        let last_rel = ((offset + len.get() - 1) / BLOCK_SIZE).min(e.blocks.saturating_sub(1));
        if first_rel >= e.blocks {
            return None;
        }
        Some((e.start + first_rel, e.start + last_rel))
    }

    /// Total blocks spanned including gaps (disk capacity consumed).
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Number of laid-out files.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// True iff no files are laid out.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileMeta;

    fn files(sizes: &[u64]) -> FileSet {
        let mut fs = FileSet::new();
        for (i, &s) in sizes.iter().enumerate() {
            fs.insert(FileMeta {
                id: FileId(i as u64 + 1),
                name: format!("f{i}"),
                size: Bytes(s),
            });
        }
        fs
    }

    #[test]
    fn extents_do_not_overlap_and_are_ordered() {
        let fs = files(&[10_000, 5_000, 123, 4096 * 8]);
        let l = DiskLayout::build(&fs, 7);
        let mut prev_end = 0;
        for i in 1..=4u64 {
            let e = l.extent(FileId(i)).unwrap();
            assert!(e.start >= prev_end, "file {i} overlaps previous");
            assert!(e.start > prev_end || prev_end == 0, "gap must exist");
            prev_end = e.end();
        }
    }

    #[test]
    fn layout_is_deterministic_per_seed() {
        let fs = files(&[10_000, 5_000]);
        let a = DiskLayout::build(&fs, 42);
        let b = DiskLayout::build(&fs, 42);
        let c = DiskLayout::build(&fs, 43);
        assert_eq!(a.extent(FileId(2)), b.extent(FileId(2)));
        // Different seed gives a different gap (overwhelmingly likely).
        assert_ne!(a.extent(FileId(2)), c.extent(FileId(2)));
    }

    #[test]
    fn block_math_within_a_file_is_contiguous() {
        let fs = files(&[BLOCK_SIZE * 10]);
        let l = DiskLayout::build(&fs, 1);
        let b0 = l.block_of(FileId(1), 0).unwrap();
        let b1 = l.block_of(FileId(1), BLOCK_SIZE).unwrap();
        let b9 = l.block_of(FileId(1), BLOCK_SIZE * 9 + 100).unwrap();
        assert_eq!(b1, b0 + 1);
        assert_eq!(b9, b0 + 9);
    }

    #[test]
    fn block_range_spans_request() {
        let fs = files(&[BLOCK_SIZE * 10]);
        let l = DiskLayout::build(&fs, 1);
        let e = l.extent(FileId(1)).unwrap();
        // 1 byte in the middle of block 3.
        let (a, b) = l
            .block_range(FileId(1), BLOCK_SIZE * 3 + 5, Bytes(1))
            .unwrap();
        assert_eq!((a, b), (e.start + 3, e.start + 3));
        // Crossing a block boundary.
        let (a, b) = l.block_range(FileId(1), BLOCK_SIZE - 1, Bytes(2)).unwrap();
        assert_eq!((a, b), (e.start, e.start + 1));
        // Zero length has no range.
        assert!(l.block_range(FileId(1), 0, Bytes(0)).is_none());
    }

    #[test]
    fn unknown_file_and_past_extent() {
        let fs = files(&[100]);
        let l = DiskLayout::build(&fs, 1);
        assert!(l.block_of(FileId(99), 0).is_none());
        assert!(l.block_of(FileId(1), BLOCK_SIZE * 5).is_none());
    }

    #[test]
    fn tiny_file_occupies_one_block() {
        let fs = files(&[1]);
        let l = DiskLayout::build(&fs, 1);
        assert_eq!(l.extent(FileId(1)).unwrap().blocks, 1);
    }

    #[test]
    fn gaps_are_small() {
        let fs = files(&[4096; 100]);
        let l = DiskLayout::build(&fs, 3);
        // 100 one-block files plus gaps of at most 64 blocks each.
        assert!(l.total_blocks() <= 100 + 100 * DiskLayout::MAX_GAP_BLOCKS);
        assert!(l.total_blocks() > 100);
        assert_eq!(l.len(), 100);
    }
}
