//! Workload characterisation.
//!
//! The quantities §1.2/§2.1 argue make I/O behaviour predictable — burst
//! sizes, think-time distribution, sequentiality, file-access skew — as
//! measurable statistics over any [`Trace`]. Used by the `trace_stats`
//! binary and handy for validating imported real-world traces against
//! the synthetic generators.

use crate::model::{IoOp, Trace};
use ff_base::{Bytes, Dur};
use std::collections::BTreeMap;

/// Distribution summary of a set of durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurStats {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: Dur,
    /// Median (p50).
    pub p50: Dur,
    /// 90th percentile.
    pub p90: Dur,
    /// Largest sample.
    pub max: Dur,
    /// Arithmetic mean.
    pub mean: Dur,
}

impl DurStats {
    /// Summarise `samples` (returns `None` when empty).
    pub fn of(mut samples: Vec<Dur>) -> Option<DurStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let pick = |q: f64| samples[ff_base::checked::f64_to_u64((count - 1) as f64 * q) as usize];
        let sum: u64 = samples.iter().map(|d| d.as_micros()).sum();
        Some(DurStats {
            count,
            min: samples[0],
            p50: pick(0.5),
            p90: pick(0.9),
            max: samples[count - 1],
            mean: Dur::from_micros(sum / count.max(1) as u64),
        })
    }
}

/// Full characterisation of a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Think-time distribution (gaps between a call's completion and the
    /// same process group's next call).
    pub think_times: Option<DurStats>,
    /// Fraction of gaps below the 20 ms burst threshold — how "bursty"
    /// the workload is (grep ≈ 1.0, xmms ≈ 0.0).
    pub burstiness: f64,
    /// Fraction of requests that sequentially extend the previous
    /// request on the same file.
    pub sequentiality: f64,
    /// Mean request size.
    pub mean_request: Bytes,
    /// Read fraction of requested bytes.
    pub read_fraction: f64,
    /// Bytes requested per distinct file, sorted descending — the skew
    /// §1.2's predictability rests on.
    pub file_bytes_ranked: Vec<(u64, Bytes)>,
    /// Fraction of all bytes landing in the hottest 10 % of files.
    pub top_decile_share: f64,
}

/// Analyse a trace.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let mut gaps = Vec::new();
    let mut last_end: BTreeMap<u32, ff_base::SimTime> = BTreeMap::new();
    let mut last_extent: BTreeMap<u64, u64> = BTreeMap::new();
    let mut sequential = 0usize;
    let mut per_file: BTreeMap<u64, u64> = BTreeMap::new();
    let mut read_bytes = 0u64;
    let mut total_bytes = 0u64;

    for r in &trace.records {
        if let Some(&pe) = last_end.get(&r.pgid) {
            gaps.push(r.ts.saturating_since(pe));
        }
        last_end.insert(r.pgid, r.end());
        if last_extent.get(&r.file.0) == Some(&r.offset) {
            sequential += 1;
        }
        last_extent.insert(r.file.0, r.end_offset());
        *per_file.entry(r.file.0).or_default() += r.len.get();
        total_bytes = total_bytes.saturating_add(r.len.get());
        if r.op == IoOp::Read {
            read_bytes = read_bytes.saturating_add(r.len.get());
        }
    }

    let burstiness = if gaps.is_empty() {
        1.0
    } else {
        gaps.iter().filter(|g| **g < Dur::from_millis(20)).count() as f64 / gaps.len() as f64
    };
    let mut ranked: Vec<(u64, Bytes)> = per_file.into_iter().map(|(f, b)| (f, Bytes(b))).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let top_n = (ranked.len() / 10).max(1);
    let top_bytes: u64 = ranked.iter().take(top_n).map(|&(_, b)| b.get()).sum();

    TraceAnalysis {
        think_times: DurStats::of(gaps),
        burstiness,
        sequentiality: if trace.is_empty() {
            0.0
        } else {
            sequential as f64 / trace.len() as f64
        },
        mean_request: Bytes(total_bytes / trace.len().max(1) as u64),
        read_fraction: if total_bytes == 0 {
            0.0
        } else {
            read_bytes as f64 / total_bytes as f64
        },
        top_decile_share: if total_bytes == 0 {
            0.0
        } else {
            top_bytes as f64 / total_bytes as f64
        },
        file_bytes_ranked: ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{Grep, Make, Workload, Xmms};

    #[test]
    fn grep_is_bursty_and_sequential() {
        let t = Grep {
            files: 50,
            total_bytes: 3_000_000,
            ..Default::default()
        }
        .build(1);
        let a = analyze(&t);
        assert!(a.burstiness > 0.95, "grep burstiness {}", a.burstiness);
        assert!(
            a.sequentiality > 0.4,
            "grep sequentiality {}",
            a.sequentiality
        );
        assert!((a.read_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xmms_is_paced() {
        let t = Xmms {
            play_limit: Some(ff_base::Dur::from_secs(120)),
            ..Default::default()
        }
        .build(1);
        let a = analyze(&t);
        assert!(a.burstiness < 0.1, "xmms burstiness {}", a.burstiness);
        let think = a.think_times.unwrap();
        assert!(
            think.p50 > Dur::from_secs(3),
            "xmms median think {}",
            think.p50
        );
    }

    #[test]
    fn make_mixes_reads_and_writes() {
        let t = Make {
            units: 20,
            headers: 40,
            misc: 3,
            input_bytes: 2_000_000,
            ..Default::default()
        }
        .build(1);
        let a = analyze(&t);
        assert!(
            a.read_fraction > 0.5 && a.read_fraction < 1.0,
            "{}",
            a.read_fraction
        );
        assert!(
            a.burstiness > 0.3 && a.burstiness < 0.98,
            "{}",
            a.burstiness
        );
    }

    #[test]
    fn skew_is_captured() {
        let t = crate::workloads::Thunderbird::default().build(2);
        let a = analyze(&t);
        // Thunderbird touches ~48 files; the hottest decile of them (a
        // few of the 8 mboxes) still carries well over half the bytes.
        assert!(a.top_decile_share > 0.5, "{}", a.top_decile_share);
        assert!(!a.file_bytes_ranked.is_empty());
        // Ranked descending.
        for w in a.file_bytes_ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let a = analyze(&Trace::new("empty"));
        assert!(a.think_times.is_none());
        assert_eq!(a.sequentiality, 0.0);
        assert_eq!(a.mean_request, Bytes::ZERO);
        assert_eq!(a.top_decile_share, 0.0);
    }

    #[test]
    fn durstats_percentiles() {
        let s = DurStats::of((1..=100).map(Dur::from_millis).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, Dur::from_millis(1));
        assert_eq!(s.max, Dur::from_millis(100));
        assert_eq!(s.p50, Dur::from_millis(50));
        assert_eq!(s.p90, Dur::from_millis(90));
        assert!(DurStats::of(vec![]).is_none());
    }
}
