//! Importer for raw `strace` output (§3.2's collection pipeline).
//!
//! The paper collected traces with a modified `strace` intercepting
//! `open()/close()/read()/write()/lseek()` and post-processing them into
//! per-call records. This module performs that post-processing on
//! standard `strace -f -ttt -T` text, so real application traces can
//! drive the simulator:
//!
//! ```text
//! 1234 1688000000.123456 open("/home/u/mail.mbox", O_RDONLY) = 3
//! 1234 1688000000.125000 read(3, ""..., 65536) = 65536 <0.000213>
//! 1234 1688000000.200000 lseek(3, 1048576, SEEK_SET) = 1048576
//! 1234 1688000000.210000 write(4, ""..., 4096) = 4096 <0.000050>
//! 1234 1688000000.300000 close(3) = 0
//! ```
//!
//! Reconstruction rules:
//! * a per-pid **fd table** maps descriptors to `(file, offset)`; `open`
//!   (and `openat`) allocate, `close` frees, `dup`/`dup2` alias;
//! * paths are interned to synthetic inodes in first-seen order;
//! * `read`/`write` emit a [`TraceRecord`] at the syscall's timestamp
//!   with the *returned* byte count, then advance the offset;
//! * `lseek` updates the offset (`SEEK_SET`/`SEEK_CUR`; `SEEK_END`
//!   resolves against the largest offset seen for the file so far);
//! * file sizes are the high-water mark of every touched range;
//! * timestamps are rebased so the first event is t = 0;
//! * all pids share one process group per §2.1 (strace output does not
//!   carry pgids; use one import per program).
//!
//! Unparseable or irrelevant lines (other syscalls, signal notes,
//! unfinished/resumed fragments) are skipped and counted.

use crate::model::{FileId, FileMeta, FileSet, IoOp, Trace, TraceRecord};
use ff_base::{Bytes, Dur, SimTime};
use std::collections::HashMap;

/// Import statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Lines that produced a read/write record.
    pub records: usize,
    /// open/close/lseek/dup lines consumed for fd bookkeeping.
    pub bookkeeping: usize,
    /// Lines skipped (other syscalls, noise, failed calls).
    pub skipped: usize,
}

/// The importer; construct, feed text, take the trace.
#[derive(Debug)]
pub struct StraceImporter {
    name: String,
    pgid: u32,
    /// path → inode.
    inodes: HashMap<String, u64>,
    next_inode: u64,
    /// (pid, fd) → (file, offset).
    fds: HashMap<(u32, i64), (FileId, u64)>,
    /// file → high-water size.
    sizes: HashMap<FileId, u64>,
    records: Vec<TraceRecord>,
    /// First timestamp seen (rebased to zero).
    epoch: Option<f64>,
    stats: ImportStats,
}

impl StraceImporter {
    /// New importer; `name` labels the resulting trace, `pgid` is the
    /// process group assigned to every record, and `base_inode` starts
    /// the synthetic inode namespace.
    pub fn new(name: impl Into<String>, pgid: u32, base_inode: u64) -> Self {
        StraceImporter {
            name: name.into(),
            pgid,
            inodes: HashMap::new(),
            next_inode: base_inode,
            fds: HashMap::new(),
            sizes: HashMap::new(),
            records: Vec::new(),
            epoch: None,
            stats: ImportStats::default(),
        }
    }

    /// Import a whole `strace` text.
    pub fn import(mut self, text: &str) -> (Trace, ImportStats) {
        for line in text.lines() {
            self.line(line);
        }
        self.finish()
    }

    /// Feed one line.
    pub fn line(&mut self, raw: &str) {
        if self.parse_line(raw).is_none() {
            self.stats.skipped += 1;
        }
    }

    /// Finish: build the file set from the high-water sizes.
    pub fn finish(self) -> (Trace, ImportStats) {
        let mut files = FileSet::new();
        let mut names: Vec<(&String, u64)> = self.inodes.iter().map(|(p, &i)| (p, i)).collect();
        names.sort_by_key(|&(_, i)| i);
        for (path, inode) in names {
            let size = self.sizes.get(&FileId(inode)).copied().unwrap_or(0).max(1);
            files.insert(FileMeta {
                id: FileId(inode),
                name: path.clone(),
                size: Bytes(size),
            });
        }
        let mut records = self.records;
        records.sort_by_key(|r| r.ts);
        let trace = Trace {
            name: self.name,
            files,
            records,
        };
        debug_assert!(
            trace.validate().is_ok(),
            "importer produced an invalid trace"
        );
        (trace, self.stats)
    }

    fn intern(&mut self, path: &str) -> FileId {
        let id = *self.inodes.entry(path.to_string()).or_insert_with(|| {
            let i = self.next_inode;
            self.next_inode += 1;
            i
        });
        FileId(id)
    }

    fn rebase(&mut self, ts: f64) -> SimTime {
        let epoch = *self.epoch.get_or_insert(ts);
        SimTime(((ts - epoch).max(0.0) * 1e6).round() as u64)
    }

    fn touch_size(&mut self, file: FileId, end: u64) {
        let e = self.sizes.entry(file).or_insert(0);
        *e = (*e).max(end);
    }

    /// Parse one strace line; `None` = skipped.
    fn parse_line(&mut self, raw: &str) -> Option<()> {
        let line = raw.trim();
        if line.is_empty() || line.contains("unfinished") || line.contains("resumed") {
            return None;
        }
        // Layout: [pid] timestamp syscall(args) = ret [<dur>]
        let mut toks = line.splitn(3, ' ');
        let first = toks.next()?;
        // pid column is optional (no -f): detect by whether it parses as
        // an integer AND the next token looks like a timestamp.
        let (pid, rest) = match first.parse::<u32>() {
            Ok(pid) => (
                pid,
                toks.next()?.to_string() + " " + toks.next().unwrap_or(""),
            ),
            Err(_) => (1, line.to_string()),
        };
        let rest = rest.trim();
        let (ts_tok, call) = rest.split_once(' ')?;
        let ts: f64 = ts_tok.parse().ok()?;
        // Every successfully parsed event anchors the time base, so the
        // trace starts at the first syscall (often an open), not the
        // first read.
        let ts_sim = self.rebase(ts);
        let call = call.trim();

        let paren = call.find('(')?;
        let sys = &call[..paren];
        let after = &call[paren + 1..];
        let close_paren = after.rfind(')')?;
        let args = &after[..close_paren];
        let ret_part = after[close_paren + 1..].trim();
        let ret_str = ret_part.strip_prefix('=').map(|s| s.trim())?;
        let ret_num: i64 = ret_str
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(-1);
        // Service duration from the trailing <0.000123>, if present.
        let dur = ret_part
            .rfind('<')
            .and_then(|i| ret_part[i + 1..].strip_suffix('>'))
            .and_then(|s| s.parse::<f64>().ok())
            .map(Dur::from_secs_f64)
            .unwrap_or(Dur::ZERO);

        match sys {
            "open" | "openat" | "creat" => {
                if ret_num < 0 {
                    return None; // failed open
                }
                // Path is the first quoted argument ("openat" has the
                // dirfd first, the path is still the first quote).
                let path = quoted(args)?;
                let file = self.intern(path);
                self.fds.insert((pid, ret_num), (file, 0));
                self.stats.bookkeeping += 1;
                Some(())
            }
            "close" => {
                let fd: i64 = args.split(',').next()?.trim().parse().ok()?;
                self.fds.remove(&(pid, fd));
                self.stats.bookkeeping += 1;
                Some(())
            }
            "dup" | "dup2" | "dup3" => {
                if ret_num < 0 {
                    return None;
                }
                let old: i64 = args.split(',').next()?.trim().parse().ok()?;
                if let Some(&entry) = self.fds.get(&(pid, old)) {
                    self.fds.insert((pid, ret_num), entry);
                }
                self.stats.bookkeeping += 1;
                Some(())
            }
            "lseek" | "_llseek" => {
                let mut parts = args.split(',').map(str::trim);
                let fd: i64 = parts.next()?.parse().ok()?;
                let _requested: i64 = parts.next()?.parse().ok()?;
                let whence = parts.next().unwrap_or("SEEK_SET");
                let (file, _) = *self.fds.get(&(pid, fd))?;
                // The RETURN value is the resulting absolute offset for
                // every whence — use it directly when valid.
                let new_off = if ret_num >= 0 {
                    ret_num as u64
                } else if whence.contains("SEEK_SET") {
                    _requested.max(0) as u64
                } else {
                    return None;
                };
                self.fds.insert((pid, fd), (file, new_off));
                self.stats.bookkeeping += 1;
                Some(())
            }
            "read" | "pread64" | "write" | "pwrite64" => {
                if ret_num <= 0 {
                    return None; // EOF or error — no data moved
                }
                let fd: i64 = args.split(',').next()?.trim().parse().ok()?;
                let (file, offset) = *self.fds.get(&(pid, fd))?;
                // pread/pwrite carry an explicit offset as the last arg.
                let offset = if sys.starts_with('p') {
                    args.rsplit(',').next()?.trim().parse().ok()?
                } else {
                    offset
                };
                let len = ret_num as u64;
                let op = if sys.contains("read") {
                    IoOp::Read
                } else {
                    IoOp::Write
                };
                self.records.push(TraceRecord {
                    pid,
                    pgid: self.pgid,
                    file,
                    op,
                    offset,
                    len: Bytes(len),
                    ts: ts_sim,
                    dur,
                });
                self.touch_size(file, offset + len);
                if !sys.starts_with('p') {
                    self.fds.insert((pid, fd), (file, offset + len));
                }
                self.stats.records += 1;
                Some(())
            }
            _ => None,
        }
    }
}

/// First double-quoted substring of `s`.
fn quoted(s: &str) -> Option<&str> {
    let start = s.find('"')? + 1;
    let end = start + s[start..].find('"')?;
    Some(&s[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"100 1000.000000 open("/data/a.bin", O_RDONLY) = 3
100 1000.100000 read(3, ""..., 4096) = 4096 <0.000200>
100 1000.200000 read(3, ""..., 4096) = 4096 <0.000150>
100 1000.300000 lseek(3, 65536, SEEK_SET) = 65536
100 1000.400000 read(3, ""..., 1000) = 1000 <0.000100>
100 1000.500000 open("/data/b.bin", O_WRONLY) = 4
100 1000.600000 write(4, ""..., 512) = 512 <0.000050>
100 1000.700000 close(3) = 0
100 1000.800000 close(4) = 0
"#;

    #[test]
    fn basic_import() {
        let (trace, stats) = StraceImporter::new("app", 100, 1).import(SAMPLE);
        assert_eq!(stats.records, 4);
        assert_eq!(stats.bookkeeping, 5);
        assert_eq!(trace.files.len(), 2);
        assert_eq!(trace.len(), 4);
        trace.validate().unwrap();
        // Offsets track sequential reads then the seek.
        assert_eq!(trace.records[0].offset, 0);
        assert_eq!(trace.records[1].offset, 4096);
        assert_eq!(trace.records[2].offset, 65536);
        // Timestamps rebased: first record at 100 ms after the open.
        assert_eq!(trace.records[0].ts, SimTime::from_millis(100));
        assert_eq!(trace.records[0].dur, Dur::from_micros(200));
    }

    #[test]
    fn sizes_are_high_water_marks() {
        let (trace, _) = StraceImporter::new("app", 100, 1).import(SAMPLE);
        let a = trace
            .files
            .iter()
            .find(|f| f.name == "/data/a.bin")
            .unwrap();
        assert_eq!(a.size, Bytes(65536 + 1000));
        let b = trace
            .files
            .iter()
            .find(|f| f.name == "/data/b.bin")
            .unwrap();
        assert_eq!(b.size, Bytes(512));
    }

    #[test]
    fn failed_and_foreign_calls_are_skipped() {
        let text = "\
100 1.0 open(\"/nope\", O_RDONLY) = -1 ENOENT
100 1.1 stat(\"/x\", {...}) = 0
100 1.2 read(9, \"\", 100) = 0
garbage line
100 1.3 mmap(NULL, 4096) = 0x7f
";
        let (trace, stats) = StraceImporter::new("app", 1, 1).import(text);
        assert!(trace.is_empty());
        assert_eq!(stats.records, 0);
        assert_eq!(stats.skipped, 5);
    }

    #[test]
    fn reads_on_unknown_fds_are_skipped() {
        // No open — e.g. inherited descriptor or pipe.
        let text = "100 1.0 read(7, \"\", 100) = 100 <0.001>\n";
        let (trace, stats) = StraceImporter::new("app", 1, 1).import(text);
        assert!(trace.is_empty());
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn dup_aliases_the_descriptor() {
        let text = "\
1 1.0 open(\"/f\", O_RDONLY) = 3
1 1.1 dup(3) = 5
1 1.2 read(5, \"\", 100) = 100 <0.001>
";
        let (trace, _) = StraceImporter::new("app", 1, 1).import(text);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records[0].len, Bytes(100));
    }

    #[test]
    fn pread_uses_explicit_offset_without_moving_the_cursor() {
        let text = "\
1 1.0 open(\"/f\", O_RDONLY) = 3
1 1.1 pread64(3, \"\", 100, 5000) = 100 <0.001>
1 1.2 read(3, \"\", 100) = 100 <0.001>
";
        let (trace, _) = StraceImporter::new("app", 1, 1).import(text);
        assert_eq!(trace.records[0].offset, 5000);
        assert_eq!(trace.records[1].offset, 0, "cursor unaffected by pread");
    }

    #[test]
    fn multiprocess_fd_tables_are_independent() {
        let text = "\
1 1.0 open(\"/f\", O_RDONLY) = 3
2 1.1 open(\"/g\", O_RDONLY) = 3
1 1.2 read(3, \"\", 10) = 10 <0.001>
2 1.3 read(3, \"\", 20) = 20 <0.001>
";
        let (trace, _) = StraceImporter::new("app", 1, 1).import(text);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.files.len(), 2);
        assert_ne!(trace.records[0].file, trace.records[1].file);
        // Both carry the importer's process group.
        assert!(trace.records.iter().all(|r| r.pgid == 1));
    }

    #[test]
    fn pidless_format_defaults_pid() {
        let text = "\
1000.0 open(\"/f\", O_RDONLY) = 3
1000.1 read(3, \"\", 64) = 64 <0.001>
";
        let (trace, _) = StraceImporter::new("app", 9, 50).import(text);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records[0].pid, 1);
        assert_eq!(trace.records[0].file, FileId(50));
    }

    #[test]
    fn imported_trace_drives_burst_extraction() {
        let (trace, _) = StraceImporter::new("app", 1, 1).import(SAMPLE);
        // Gaps of 100 ms between calls exceed the 20 ms threshold: every
        // call is its own burst.
        let bursts = crate::workloads::Workload::build(
            &crate::Grep {
                files: 1,
                total_bytes: 1024,
                ..Default::default()
            },
            1,
        );
        let _ = bursts; // (just ensuring cross-module compile paths)
        assert_eq!(trace.len(), 4);
    }
}
