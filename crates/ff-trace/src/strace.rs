//! Text serialisation of traces.
//!
//! The paper's collector is a modified `strace` that records, per file
//! system call: *pid, file descriptor, inode number, offset, size, type,
//! timestamp, and duration* (§3.2). This module defines a line-oriented
//! text format carrying exactly that information, so that (a) real traces
//! collected with an strace post-processor can be imported, and (b)
//! generated traces can be dumped, inspected, and diffed.
//!
//! ```text
//! # flexfetch-trace v1
//! @name grep
//! @file <inode> <size-bytes> <path>
//! r <pid> <pgid> <inode> <offset> <len> <ts-us> <dur-us>
//! w <pid> <pgid> <inode> <offset> <len> <ts-us> <dur-us>
//! ```
//!
//! Lines starting with `#` are comments. Records must be timestamp-ordered
//! (enforced by [`Trace::validate`] on load).

use crate::model::{FileId, FileMeta, IoOp, Trace, TraceRecord};
use ff_base::{Bytes, Dur, Error, Result, SimTime};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const HEADER: &str = "# flexfetch-trace v1";

/// Serialise a trace to the text format.
pub fn to_string(trace: &Trace) -> String {
    // Rough pre-size: one ~40-byte line per record.
    let mut out = String::with_capacity(64 + trace.files.len() * 48 + trace.records.len() * 48);
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "@name {}", trace.name);
    for f in trace.files.iter() {
        let _ = writeln!(out, "@file {} {} {}", f.id.0, f.size.get(), f.name);
    }
    for r in &trace.records {
        let op = match r.op {
            IoOp::Read => 'r',
            IoOp::Write => 'w',
        };
        let _ = writeln!(
            out,
            "{op} {} {} {} {} {} {} {}",
            r.pid,
            r.pgid,
            r.file.0,
            r.offset,
            r.len.get(),
            r.ts.as_micros(),
            r.dur.as_micros()
        );
    }
    out
}

fn parse_u64(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    tok.ok_or_else(|| Error::Parse {
        line,
        msg: format!("missing {what}"),
    })?
    .parse()
    .map_err(|_| Error::Parse {
        line,
        msg: format!("bad {what}"),
    })
}

/// Parse the text format back into a [`Trace`]; validates on the way out.
pub fn from_str(text: &str) -> Result<Trace> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        _ => {
            return Err(Error::Parse {
                line: 1,
                msg: format!("expected header `{HEADER}`"),
            });
        }
    }
    let mut trace = Trace::new("unnamed");
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("@name ") {
            trace.name = name.trim().to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix("@file ") {
            let mut toks = rest.splitn(3, ' ');
            let inode = parse_u64(toks.next(), line_no, "inode")?;
            let size = parse_u64(toks.next(), line_no, "size")?;
            let name = toks
                .next()
                .ok_or_else(|| Error::Parse {
                    line: line_no,
                    msg: "missing path".into(),
                })?
                .to_string();
            trace.files.insert(FileMeta {
                id: FileId(inode),
                name,
                size: Bytes(size),
            });
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let op = match toks.next() {
            Some("r") => IoOp::Read,
            Some("w") => IoOp::Write,
            other => {
                return Err(Error::Parse {
                    line: line_no,
                    msg: format!("unknown record type {other:?}"),
                });
            }
        };
        let pid = ff_base::checked::u64_to_u32(parse_u64(toks.next(), line_no, "pid")?);
        let pgid = ff_base::checked::u64_to_u32(parse_u64(toks.next(), line_no, "pgid")?);
        let inode = parse_u64(toks.next(), line_no, "inode")?;
        let offset = parse_u64(toks.next(), line_no, "offset")?;
        let len = parse_u64(toks.next(), line_no, "len")?;
        let ts = parse_u64(toks.next(), line_no, "timestamp")?;
        let dur = parse_u64(toks.next(), line_no, "duration")?;
        if toks.next().is_some() {
            return Err(Error::Parse {
                line: line_no,
                msg: "trailing tokens".into(),
            });
        }
        trace.records.push(TraceRecord {
            pid,
            pgid,
            file: FileId(inode),
            op,
            offset,
            len: Bytes(len),
            ts: SimTime(ts),
            dur: Dur(dur),
        });
    }
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.files.insert(FileMeta {
            id: FileId(7),
            name: "inbox.mbox".into(),
            size: Bytes(10_000),
        });
        t.records.push(TraceRecord {
            pid: 100,
            pgid: 100,
            file: FileId(7),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(4096),
            ts: SimTime(0),
            dur: Dur(250),
        });
        t.records.push(TraceRecord {
            pid: 100,
            pgid: 100,
            file: FileId(7),
            op: IoOp::Write,
            offset: 4096,
            len: Bytes(100),
            ts: SimTime(5_000),
            dur: Dur(90),
        });
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let text = to_string(&t);
        let back = from_str(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            from_str("r 1 1 1 0 1 0 0\n"),
            Err(Error::Parse { line: 1, .. })
        ));
        assert!(from_str("").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{HEADER}\n\n# a comment\n@name x\n");
        let t = from_str(&text).unwrap();
        assert_eq!(t.name, "x");
        assert!(t.is_empty());
    }

    #[test]
    fn file_paths_may_contain_spaces() {
        let text = format!("{HEADER}\n@file 3 100 My Documents/report final.pdf\n");
        let t = from_str(&text).unwrap();
        assert_eq!(
            t.files.get(FileId(3)).unwrap().name,
            "My Documents/report final.pdf"
        );
    }

    #[test]
    fn bad_records_report_line_numbers() {
        let text = format!("{HEADER}\n@file 1 100 f\nr 1 1 1 0 notanumber 0 0\n");
        match from_str(&text) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_record_type_rejected() {
        let text = format!("{HEADER}\nx 1 1 1 0 1 0 0\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        let text = format!("{HEADER}\n@file 1 100 f\nr 1 1 1 0 1 0 0 EXTRA\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn loaded_trace_is_validated() {
        // Record beyond EOF must be rejected at load time.
        let text = format!("{HEADER}\n@file 1 10 f\nr 1 1 1 0 100 0 0\n");
        assert!(matches!(from_str(&text), Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn ops_round_trip() {
        let t = sample();
        let text = to_string(&t);
        assert!(text.contains("\nr 100 100 7 0 4096 0 250"));
        assert!(text.contains("\nw 100 100 7 4096 100 5000 90"));
    }
}
