//! Property tests for the trace layer: generators, layout, persistence,
//! and the raw-strace importer must hold up under arbitrary inputs.

use ff_base::{Bytes, Dur};
use ff_trace::{
    strace, Acroread, DiskLayout, Grep, Make, Mplayer, StraceImporter, Thunderbird, Trace,
    Workload, Xmms,
};
use proptest::prelude::*;

/// Every generator yields a valid, non-empty, Table-3-sized trace for
/// ANY seed — not just the tested ones.
#[test]
fn generators_valid_for_many_seeds() {
    // Deterministic seed scan (cheaper than proptest for the big ones).
    for seed in [0, 1, 7, 999, u64::MAX] {
        for w in [
            &Grep {
                files: 40,
                total_bytes: 2_000_000,
                ..Default::default()
            } as &dyn Workload,
            &Make {
                units: 10,
                headers: 20,
                misc: 2,
                input_bytes: 800_000,
                ..Default::default()
            },
            &Xmms {
                files: 10,
                total_bytes: 2_000_000,
                play_limit: Some(Dur::from_secs(60)),
                ..Default::default()
            },
            &Mplayer {
                support_files: 10,
                support_bytes: 100_000,
                movie_bytes: 2_000_000,
                play_limit: Some(Dur::from_secs(30)),
                ..Default::default()
            },
            &Thunderbird {
                mboxes: 3,
                mbox_bytes: 9_000_000,
                support_files: 10,
                support_bytes: 50_000,
                emails_read: 3,
                ..Default::default()
            },
            &Acroread {
                files: 3,
                file_bytes: 500_000,
                searches: 3,
                ..Acroread::large_search()
            },
        ] {
            let t = w.build(seed);
            t.validate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name()));
            assert!(!t.is_empty(), "{} seed {seed} empty", w.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Layout never overlaps extents, for arbitrary file populations.
    #[test]
    fn layout_never_overlaps(
        sizes in proptest::collection::vec(1u64..5_000_000, 1..40),
        seed in any::<u64>(),
    ) {
        let mut fs = ff_trace::FileSet::new();
        for (i, &s) in sizes.iter().enumerate() {
            fs.insert(ff_trace::FileMeta {
                id: ff_trace::FileId(i as u64 + 1),
                name: format!("f{i}"),
                size: Bytes(s),
            });
        }
        let l = DiskLayout::build(&fs, seed);
        let mut extents: Vec<_> = (1..=sizes.len() as u64)
            .map(|i| l.extent(ff_trace::FileId(i)).expect("laid out"))
            .collect();
        extents.sort_by_key(|e| e.start);
        for w in extents.windows(2) {
            prop_assert!(w[0].end() <= w[1].start, "extents overlap");
        }
        // Every file's last byte is addressable.
        for (i, &s) in sizes.iter().enumerate() {
            let f = ff_trace::FileId(i as u64 + 1);
            prop_assert!(l.block_of(f, s - 1).is_some());
        }
    }

    /// Generator determinism: the same seed gives the same trace; text
    /// round-trips preserve it exactly.
    #[test]
    fn grep_seed_roundtrip(seed in any::<u64>()) {
        let g = Grep { files: 12, total_bytes: 500_000, ..Default::default() };
        let a = g.build(seed);
        let b = g.build(seed);
        prop_assert_eq!(&a, &b);
        let back = strace::from_str(&strace::to_string(&a)).unwrap();
        prop_assert_eq!(a, back);
    }

    /// The raw strace importer never panics on arbitrary garbage and
    /// always yields a valid trace.
    #[test]
    fn importer_survives_garbage(lines in proptest::collection::vec("[ -~]{0,80}", 0..60)) {
        let text = lines.join("\n");
        let (trace, stats) = StraceImporter::new("fuzz", 1, 1).import(&text);
        prop_assert!(trace.validate().is_ok());
        prop_assert_eq!(trace.len(), stats.records);
    }

    /// Importer + well-formed lines: record count equals the successful
    /// reads/writes we synthesise.
    #[test]
    fn importer_counts_synthetic_lines(ops in proptest::collection::vec((1u64..100_000, 1u64..100_000), 1..30)) {
        let mut text = String::from("5 1.0 open(\"/f\", O_RDONLY) = 3\n");
        let mut ts = 1.0;
        for &(off, len) in &ops {
            ts += 0.01;
            text.push_str(&format!("5 {ts:.6} pread64(3, \"\", {len}, {off}) = {len} <0.0001>\n"));
        }
        let (trace, stats) = StraceImporter::new("synth", 5, 10).import(&text);
        prop_assert_eq!(stats.records, ops.len());
        prop_assert_eq!(trace.len(), ops.len());
        let total: u64 = ops.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(trace.total_bytes(), Bytes(total));
        prop_assert!(trace.validate().is_ok());
    }

    /// concat + merge keep traces valid for arbitrary gaps.
    #[test]
    fn combinators_preserve_validity(gap_ms in 0u64..100_000, seed in any::<u64>()) {
        let a = Grep { files: 6, total_bytes: 200_000, ..Default::default() }.build(seed);
        let b = Xmms {
            files: 4,
            total_bytes: 400_000,
            play_limit: Some(Dur::from_secs(30)),
            ..Default::default()
        }
        .build(seed);
        let c = a.concat(&b, Dur::from_millis(gap_ms)).unwrap();
        prop_assert!(c.validate().is_ok());
        let m: Trace = a.merge(&b).unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert_eq!(m.len(), a.len() + b.len());
    }
}
