//! Property tests for the device power models: conservation and
//! consistency laws that must hold for any request schedule.

use ff_base::{Bytes, Dur, Joules, SimTime};
use ff_device::{DeviceRequest, Dir, DiskModel, DiskParams, PowerModel, WnicModel, WnicParams};
use proptest::prelude::*;

/// A random schedule: (gap to next arrival in ms, bytes, read?, block).
fn arb_schedule() -> impl Strategy<Value = Vec<(u64, u64, bool, u64)>> {
    proptest::collection::vec(
        (0u64..40_000, 1u64..4_000_000, any::<bool>(), 0u64..100_000),
        1..40,
    )
}

fn run_disk(schedule: &[(u64, u64, bool, u64)]) -> (DiskModel, Vec<ff_device::ServiceOutcome>) {
    let mut disk = DiskModel::new(DiskParams::hitachi_dk23da());
    let mut t = SimTime::ZERO;
    let mut outs = Vec::new();
    for &(gap_ms, bytes, read, block) in schedule {
        t += Dur::from_millis(gap_ms);
        let req = DeviceRequest {
            dir: if read { Dir::Read } else { Dir::Write },
            bytes: Bytes(bytes),
            block: Some(block),
        };
        let out = disk.service(t, &req);
        t = out.complete;
        outs.push(out);
    }
    (disk, outs)
}

proptest! {
    /// Meter total equals the sum of residency and transition energies —
    /// no energy appears or vanishes outside the books.
    #[test]
    fn disk_energy_is_fully_attributed(schedule in arb_schedule()) {
        let (disk, _) = run_disk(&schedule);
        let m = disk.meter();
        let parts: f64 = m.residencies().map(|(_, _, e)| e.get()).sum::<f64>()
            + m.transitions().map(|(_, _, e)| e.get()).sum::<f64>();
        prop_assert!((m.total().get() - parts).abs() < 1e-6);
        prop_assert!(m.total().get() >= 0.0);
    }

    /// Completions are non-decreasing and each request's energy is
    /// non-negative and finite.
    #[test]
    fn disk_completions_are_ordered(schedule in arb_schedule()) {
        let (_, outs) = run_disk(&schedule);
        for w in outs.windows(2) {
            prop_assert!(w[1].complete >= w[0].complete);
        }
        for o in &outs {
            prop_assert!(o.energy.is_valid());
        }
    }

    /// `estimate` == `service` for the next request (the probe is exact),
    /// and it does not mutate the model.
    #[test]
    fn disk_estimate_matches_service(schedule in arb_schedule(), bytes in 1u64..1_000_000) {
        let (disk, _) = run_disk(&schedule);
        let energy_before = disk.energy();
        let now = disk.clock() + Dur::from_secs(3);
        let req = DeviceRequest::read(Bytes(bytes), Some(7));
        let est = disk.estimate(now, &req);
        prop_assert_eq!(disk.energy(), energy_before, "estimate mutated the model");
        let mut live = disk.clone();
        let real = live.service(now, &req);
        prop_assert_eq!(est, real);
    }

    /// Wall-clock residency adds up: total metered time equals the clock.
    #[test]
    fn disk_time_is_fully_attributed(schedule in arb_schedule()) {
        let (mut disk, _) = run_disk(&schedule);
        // Advance somewhere quiet so transients finish.
        let end = disk.clock() + Dur::from_secs(60);
        disk.advance_to(end);
        let metered: u64 = disk.meter().residencies().map(|(_, d, _)| d.as_micros()).sum();
        prop_assert_eq!(metered, end.as_micros());
    }

    /// Advancing in arbitrary step splits never changes the totals.
    #[test]
    fn disk_advance_is_split_invariant(
        stops in proptest::collection::vec(1u64..120_000, 1..20),
    ) {
        let mut sorted = stops.clone();
        sorted.sort_unstable();
        let mut one = DiskModel::new(DiskParams::hitachi_dk23da());
        let end = SimTime::from_millis(*sorted.last().unwrap());
        one.advance_to(end);
        let mut many = DiskModel::new(DiskParams::hitachi_dk23da());
        for &ms in &sorted {
            many.advance_to(SimTime::from_millis(ms));
        }
        prop_assert!((one.energy().get() - many.energy().get()).abs() < 1e-9);
        prop_assert_eq!(one.state(), many.state());
    }

    /// Same laws for the WNIC.
    #[test]
    fn wnic_energy_and_time_attributed(schedule in arb_schedule()) {
        let mut wnic = WnicModel::new(WnicParams::cisco_aironet350());
        let mut t = SimTime::ZERO;
        for &(gap_ms, bytes, read, _) in &schedule {
            t += Dur::from_millis(gap_ms);
            let req = DeviceRequest {
                dir: if read { Dir::Read } else { Dir::Write },
                bytes: Bytes(bytes),
                block: None,
            };
            let out = wnic.service(t, &req);
            t = out.complete;
            prop_assert!(out.energy.is_valid());
        }
        let end = wnic.clock() + Dur::from_secs(10);
        wnic.advance_to(end);
        let m = wnic.meter();
        let parts: f64 = m.residencies().map(|(_, _, e)| e.get()).sum::<f64>()
            + m.transitions().map(|(_, _, e)| e.get()).sum::<f64>();
        prop_assert!((m.total().get() - parts).abs() < 1e-6);
        let metered: u64 = m.residencies().map(|(_, d, _)| d.as_micros()).sum();
        prop_assert_eq!(metered, end.as_micros());
    }

    /// Mode transitions are balanced: the WNIC switches to PSM exactly as
    /// often as it left it (± the final in-flight one).
    #[test]
    fn wnic_transitions_balance(schedule in arb_schedule()) {
        let mut wnic = WnicModel::new(WnicParams::cisco_aironet350());
        let mut t = SimTime::ZERO;
        for &(gap_ms, bytes, _, _) in &schedule {
            t += Dur::from_millis(gap_ms);
            let out = wnic.service(t, &DeviceRequest::read(Bytes(bytes), None));
            t = out.complete;
        }
        wnic.advance_to(t + Dur::from_secs(10));
        let up = wnic.meter().transition_count("psm_to_cam");
        let down = wnic.meter().transition_count("cam_to_psm");
        prop_assert!(up.abs_diff(down) <= 1, "unbalanced transitions: {up} up vs {down} down");
    }

    /// More idle time never reduces energy (power is non-negative).
    #[test]
    fn idle_energy_is_monotone(a in 0u64..1 << 20, b in 0u64..1 << 20) {
        let (lo, hi) = (a.min(b), a.max(b));
        let mut d1 = DiskModel::new(DiskParams::hitachi_dk23da());
        d1.advance_to(SimTime::from_millis(lo));
        let mut d2 = DiskModel::new(DiskParams::hitachi_dk23da());
        d2.advance_to(SimTime::from_millis(hi));
        prop_assert!(d2.energy().get() >= d1.energy().get() - 1e-12);
        prop_assert!(Joules(d2.energy().get()).is_valid());
    }
}
