//! The hard-disk power model (Hitachi DK23DA, Table 1).
//!
//! State machine:
//!
//! ```text
//!            timeout (20 s idle)            spin-down (2.3 s, 2.94 J)
//!   Idle ───────────────────────► SpinningDown ───────────────────► Standby
//!    ▲                                                                 │
//!    │          spin-up (1.6 s, 5.0 J) on the next request             │
//!    └─────────────────────────────────◄──────────────────────────────┘
//! ```
//!
//! Servicing dwells in the **Active** state (2.0 W): head positioning
//! (13 ms average seek + 7 ms average rotation, skipped when the request
//! is block-contiguous with the previous one) plus transfer at 35 MB/s
//! peak bandwidth. A request arriving mid-spin-down waits for the
//! spin-down to finish and then pays the full spin-up — the paper's
//! motivation for not blindly waking the disk.
//!
//! The state machine above is model-checked by `ff-lint` against the
//! `match self.state` transitions in this file, and every transition is
//! visible at run time as a `device_transition` observability event
//! (DESIGN.md §9 and §10).

use crate::consts;
use crate::meter::StateMeter;
use crate::model::{DeviceRequest, PowerModel, ServiceOutcome};
use ff_base::{BytesPerSec, Dur, Joules, SimTime, Watts};

/// Disk power/performance constants. Defaults are Table 1 plus the
/// DK23DA mechanics quoted in §3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Power while reading/writing (Table 1: 2.0 W).
    pub active_power: Watts,
    /// Power while spinning idle (Table 1: 1.6 W).
    pub idle_power: Watts,
    /// Power in standby (Table 1: 0.15 W).
    pub standby_power: Watts,
    /// Energy of one spin-up (Table 1: 5.0 J).
    pub spinup_energy: Joules,
    /// Energy of one spin-down (Table 1: 2.94 J).
    pub spindown_energy: Joules,
    /// Duration of a spin-up (Table 1: 1.6 s).
    pub spinup_time: Dur,
    /// Duration of a spin-down (Table 1: 2.3 s).
    pub spindown_time: Dur,
    /// Idle time before the disk spins down (§3.1: 20 s, the Linux
    /// laptop-mode default).
    pub timeout: Dur,
    /// Average seek time (§3.1: 13 ms).
    pub seek: Dur,
    /// Average rotational delay (§3.1: 7 ms).
    pub rotation: Dur,
    /// Peak transfer bandwidth (§3.1: 35 MB/s).
    pub bandwidth: BytesPerSec,
    /// Short-seek settle time for near targets (track-to-track scale).
    /// §3.2 lays files out sequentially with small random gaps, so a
    /// directory scan hops only a few blocks between files — charging the
    /// full average seek there would be wildly pessimistic.
    pub short_seek: Dur,
    /// Maximum block distance (either direction) still counted as a
    /// short seek.
    pub short_seek_blocks: u64,
}

impl DiskParams {
    /// The paper's disk: Hitachi DK23DA (30 GB, 4200 RPM). Every value
    /// comes from [`crate::consts`], the single source of truth for the
    /// Table 1 calibration numbers.
    pub fn hitachi_dk23da() -> Self {
        DiskParams {
            active_power: Watts(consts::DISK_ACTIVE_POWER_W),
            idle_power: Watts(consts::DISK_IDLE_POWER_W),
            standby_power: Watts(consts::DISK_STANDBY_POWER_W),
            spinup_energy: Joules(consts::DISK_SPINUP_ENERGY_J),
            spindown_energy: Joules(consts::DISK_SPINDOWN_ENERGY_J),
            spinup_time: Dur::from_millis(consts::DISK_SPINUP_TIME_MS),
            spindown_time: Dur::from_millis(consts::DISK_SPINDOWN_TIME_MS),
            timeout: Dur::from_secs(consts::DISK_TIMEOUT_S),
            seek: Dur::from_millis(consts::DISK_SEEK_MS),
            rotation: Dur::from_millis(consts::DISK_ROTATION_MS),
            bandwidth: BytesPerSec::from_mb_per_sec(consts::DISK_BANDWIDTH_MB_S),
            short_seek: Dur::from_millis(consts::DISK_SHORT_SEEK_MS),
            short_seek_blocks: consts::DISK_SHORT_SEEK_BLOCKS,
        }
    }

    /// Average access time — time to the first byte of a random request
    /// (seek + rotation). The paper uses this as the I/O-burst threshold
    /// (§2.1).
    pub fn access_time(&self) -> Dur {
        self.seek + self.rotation
    }

    /// The *break-even time* (§1.1): the minimum quiet period for which
    /// spinning down saves energy. Solves
    /// `E_down + E_up + P_standby·(T − T_down − T_up) = P_idle·T`.
    pub fn break_even(&self) -> Dur {
        let trans_t = self.spindown_time + self.spinup_time;
        let trans_e = self.spindown_energy.get() + self.spinup_energy.get();
        let num = trans_e - self.standby_power.get() * trans_t.as_secs_f64();
        let den = self.idle_power.get() - self.standby_power.get();
        debug_assert!(den > 0.0, "idle power must exceed standby power");
        Dur::from_secs_f64((num / den).max(trans_t.as_secs_f64()))
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::hitachi_dk23da()
    }
}

/// Observable disk state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskState {
    /// Spinning, ready to serve.
    Idle,
    /// Transitioning to standby; completes at the given instant.
    SpinningDown(SimTime),
    /// Spun down.
    Standby,
    /// Transitioning to idle; completes at the given instant.
    SpinningUp(SimTime),
}

/// The live disk model.
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    state: DiskState,
    /// Last instant accounted by the meter.
    clock: SimTime,
    /// Start of the current idle stretch (valid when `state == Idle`).
    idle_since: SimTime,
    /// Block address one past the previous request's last block, for
    /// sequential-access detection.
    next_seq_block: Option<u64>,
    meter: StateMeter,
}

impl DiskModel {
    /// New disk, spun up and idle at t = 0 (the paper's runs start with a
    /// live system).
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            params,
            state: DiskState::Idle,
            clock: SimTime::ZERO,
            idle_since: SimTime::ZERO,
            next_seq_block: None,
            meter: StateMeter::new(),
        }
    }

    /// New disk already in standby (for estimator what-if runs).
    pub fn new_standby(params: DiskParams) -> Self {
        DiskModel {
            state: DiskState::Standby,
            ..DiskModel::new(params)
        }
    }

    /// The configured constants.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Current state (after the last `advance_to`/`service`).
    pub fn state(&self) -> DiskState {
        self.state
    }

    /// Per-state meter.
    pub fn meter(&self) -> &StateMeter {
        &self.meter
    }

    /// Forget sequentiality (e.g. after another program used the disk).
    pub fn clear_sequential_hint(&mut self) {
        self.next_seq_block = None;
    }

    /// Reset energy accounting but keep power state and clock.
    pub fn reset_meter(&mut self) {
        self.meter.reset();
    }

    /// Record a chronological power log (see [`StateMeter::power_log`]).
    pub fn enable_power_log(&mut self) {
        self.meter.enable_log();
    }

    /// Record timestamped state changes for the observability recorder
    /// (see [`StateMeter::enable_state_log`]). Off by default; the
    /// simulator enables it only when a recorder is attached.
    pub fn enable_state_log(&mut self) {
        self.meter.enable_state_log(self.clock);
    }

    /// Drain state changes recorded since the last drain (see
    /// [`StateMeter::take_state_changes`]).
    pub fn take_state_changes(&mut self) -> Vec<crate::meter::StateChange> {
        self.meter.take_state_changes()
    }

    /// Head-positioning cost class for `req` given the previous position.
    fn positioning(&self, req: &DeviceRequest) -> Dur {
        match (req.block, self.next_seq_block) {
            (Some(b), Some(next)) if b == next => Dur::ZERO,
            (Some(b), Some(next)) => {
                let dist = b.abs_diff(next);
                if dist <= self.params.short_seek_blocks {
                    self.params.short_seek
                } else {
                    self.params.access_time()
                }
            }
            _ => self.params.access_time(),
        }
    }
}

impl PowerModel for DiskModel {
    fn advance_to(&mut self, now: SimTime) {
        while self.clock < now {
            match self.state {
                DiskState::Idle => {
                    let deadline = self.idle_since + self.params.timeout;
                    if now < deadline {
                        self.meter
                            .dwell("idle", self.params.idle_power, now - self.clock);
                        self.clock = now;
                    } else {
                        // Dwell idle up to the timeout, then start the
                        // spin-down. Transition energy is booked up front;
                        // the transient dwells at 0 W to record residency.
                        if self.clock < deadline {
                            self.meter
                                .dwell("idle", self.params.idle_power, deadline - self.clock);
                            self.clock = deadline;
                        }
                        self.meter
                            .transition("spin_down", self.params.spindown_energy);
                        self.state = DiskState::SpinningDown(deadline + self.params.spindown_time);
                    }
                }
                DiskState::SpinningDown(until) => {
                    let end = until.min(now);
                    self.meter
                        .dwell("spinning_down", Watts::ZERO, end - self.clock);
                    self.clock = end;
                    if end == until {
                        self.state = DiskState::Standby;
                    }
                }
                DiskState::Standby => {
                    self.meter
                        .dwell("standby", self.params.standby_power, now - self.clock);
                    self.clock = now;
                }
                DiskState::SpinningUp(until) => {
                    let end = until.min(now);
                    self.meter
                        .dwell("spinning_up", Watts::ZERO, end - self.clock);
                    self.clock = end;
                    if end == until {
                        self.state = DiskState::Idle;
                        self.idle_since = until;
                    }
                }
            }
        }
    }

    fn service(&mut self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        // A request arriving while the device clock is ahead (still busy
        // from the caller's perspective) starts when the device is free.
        let arrival = now.max(self.clock);
        self.advance_to(arrival);

        let mut request_energy = Joules::ZERO;

        // Ride out an in-flight spin-down: the disk cannot abort it.
        if let DiskState::SpinningDown(until) = self.state {
            self.advance_to(until);
        }
        // Wait for someone else's spin-up to finish.
        if let DiskState::SpinningUp(until) = self.state {
            self.advance_to(until);
        }
        // Wake from standby.
        if self.state == DiskState::Standby {
            self.meter.transition("spin_up", self.params.spinup_energy);
            request_energy += self.params.spinup_energy;
            let until = self.clock + self.params.spinup_time;
            self.state = DiskState::SpinningUp(until);
            self.advance_to(until);
        }
        debug_assert_eq!(self.state, DiskState::Idle);

        let svc = self.positioning(req) + self.params.bandwidth.transfer_time(req.bytes);
        self.meter.dwell("active", self.params.active_power, svc);
        request_energy += self.params.active_power * svc;
        self.clock += svc;
        self.state = DiskState::Idle;
        self.idle_since = self.clock;
        self.next_seq_block = req.block.map(|b| b + req.bytes.pages().max(1));

        ServiceOutcome {
            complete: self.clock,
            service_time: self.clock.saturating_since(now),
            energy: request_energy,
        }
    }

    fn estimate(&self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        let mut probe = self.clone();
        probe.service(now, req)
    }

    fn energy(&self) -> Joules {
        self.meter.total()
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn is_ready(&self) -> bool {
        matches!(self.state, DiskState::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dir;
    use ff_base::Bytes;

    fn disk() -> DiskModel {
        DiskModel::new(DiskParams::hitachi_dk23da())
    }

    const EPS: f64 = 1e-6;

    #[test]
    fn table1_constants() {
        let p = DiskParams::hitachi_dk23da();
        assert_eq!(p.active_power, Watts(2.0));
        assert_eq!(p.idle_power, Watts(1.6));
        assert_eq!(p.standby_power, Watts(0.15));
        assert_eq!(p.spinup_energy, Joules(5.0));
        assert_eq!(p.spindown_energy, Joules(2.94));
        assert_eq!(p.spinup_time, Dur::from_millis(1_600));
        assert_eq!(p.spindown_time, Dur::from_millis(2_300));
        assert_eq!(p.timeout, Dur::from_secs(20));
        assert_eq!(p.access_time(), Dur::from_millis(20));
    }

    #[test]
    fn break_even_is_a_few_seconds() {
        // (7.94 − 0.15·3.9) / (1.6 − 0.15) ≈ 5.07 s for the DK23DA.
        let be = DiskParams::hitachi_dk23da().break_even();
        assert!((be.as_secs_f64() - 5.073).abs() < 0.01, "{be}");
        // And it can never be shorter than the transition itself.
        assert!(be >= Dur::from_millis(3_900));
    }

    #[test]
    fn idle_energy_integrates() {
        let mut d = disk();
        d.advance_to(SimTime::from_secs(10));
        assert!((d.energy().get() - 16.0).abs() < EPS); // 1.6 W × 10 s
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn spins_down_after_timeout() {
        let mut d = disk();
        d.advance_to(SimTime::from_secs(60));
        // 20 s idle (32 J) + spin-down (2.94 J) + 37.7 s standby (5.655 J).
        assert_eq!(d.state(), DiskState::Standby);
        let expect = 32.0 + 2.94 + (60.0 - 20.0 - 2.3) * 0.15;
        assert!((d.energy().get() - expect).abs() < EPS, "{}", d.energy());
        assert_eq!(d.meter().transition_count("spin_down"), 1);
        assert_eq!(d.meter().time_in("spinning_down"), Dur::from_millis(2_300));
    }

    #[test]
    fn advance_in_small_steps_equals_one_big_step() {
        let mut a = disk();
        let mut b = disk();
        a.advance_to(SimTime::from_secs(60));
        for s in 1..=600 {
            b.advance_to(SimTime::from_millis(s * 100));
        }
        assert!((a.energy().get() - b.energy().get()).abs() < EPS);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn random_read_costs_positioning_plus_transfer() {
        let mut d = disk();
        let out = d.service(
            SimTime::ZERO,
            &DeviceRequest::read(Bytes(35_000_000), Some(100)),
        );
        // 20 ms positioning + 1 s transfer at 35 MB/s.
        assert!((out.service_time.as_secs_f64() - 1.020).abs() < 1e-4);
        assert!((out.energy.get() - 2.0 * 1.020).abs() < 1e-3);
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn sequential_read_skips_positioning() {
        let mut d = disk();
        let first = d.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(4), Some(10)));
        // Next block is 11 — contiguous.
        let second = d.service(
            first.complete,
            &DeviceRequest::read(Bytes::kib(4), Some(11)),
        );
        assert!(first.service_time >= Dur::from_millis(20));
        assert!(
            second.service_time < Dur::from_millis(1),
            "{}",
            second.service_time
        );
        // A near jump pays the short settle, a far jump the full seek.
        let third = d.service(
            second.complete,
            &DeviceRequest::read(Bytes::kib(4), Some(500)),
        );
        assert!(third.service_time >= Dur::from_millis(2));
        assert!(
            third.service_time < Dur::from_millis(5),
            "{}",
            third.service_time
        );
        let fourth = d.service(
            third.complete,
            &DeviceRequest::read(Bytes::kib(4), Some(500_000)),
        );
        assert!(fourth.service_time >= Dur::from_millis(20));
    }

    #[test]
    fn request_from_standby_pays_spinup() {
        let mut d = disk();
        d.advance_to(SimTime::from_secs(60)); // now in standby
        let out = d.service(
            SimTime::from_secs(60),
            &DeviceRequest::read(Bytes::kib(4), None),
        );
        // 1.6 s spin-up + 20 ms + tiny transfer.
        assert!(out.service_time >= Dur::from_millis(1_620));
        assert!(out.service_time < Dur::from_millis(1_630));
        assert!(out.energy.get() > 5.0, "must include the 5 J spin-up");
        assert_eq!(d.meter().transition_count("spin_up"), 1);
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn request_during_spindown_waits_then_spins_up() {
        let mut d = disk();
        // Timeout at 20 s; spin-down runs 20 s → 22.3 s. Arrive at 21 s.
        d.advance_to(SimTime::from_secs(21));
        assert!(matches!(d.state(), DiskState::SpinningDown(_)));
        let out = d.service(
            SimTime::from_secs(21),
            &DeviceRequest::read(Bytes::kib(4), None),
        );
        // Wait 1.3 s for spin-down, then 1.6 s spin-up, then service.
        assert!(out.service_time >= Dur::from_millis(2_900));
        assert_eq!(d.meter().transition_count("spin_down"), 1);
        assert_eq!(d.meter().transition_count("spin_up"), 1);
    }

    #[test]
    fn back_to_back_requests_keep_disk_alive() {
        let mut d = disk();
        let mut t = SimTime::ZERO;
        for i in 0..10 {
            let out = d.service(t, &DeviceRequest::read(Bytes::kib(64), Some(i * 1000)));
            t = out.complete + Dur::from_secs(5); // within the 20 s timeout
        }
        assert_eq!(d.meter().transition_count("spin_down"), 0);
    }

    #[test]
    fn queued_request_starts_when_device_free() {
        let mut d = disk();
        let a = d.service(
            SimTime::ZERO,
            &DeviceRequest::read(Bytes(35_000_000), Some(0)),
        );
        // Second request "arrives" at t=0 too but the disk is busy ~1 s.
        let b = d.service(
            SimTime::ZERO,
            &DeviceRequest::read(Bytes::kib(4), Some(90_000)),
        );
        assert!(b.complete > a.complete);
        assert!(b.service_time >= a.complete.saturating_since(SimTime::ZERO));
    }

    #[test]
    fn estimate_does_not_mutate() {
        let d = {
            let mut d = disk();
            d.advance_to(SimTime::from_secs(60));
            d
        };
        let before_energy = d.energy();
        let est = d.estimate(
            SimTime::from_secs(60),
            &DeviceRequest::read(Bytes::kib(4), None),
        );
        assert!(est.energy.get() > 5.0);
        assert_eq!(d.energy(), before_energy);
        assert_eq!(d.state(), DiskState::Standby);
    }

    #[test]
    fn writes_cost_like_reads_at_device_level() {
        let mut d = disk();
        let r = d.estimate(
            SimTime::ZERO,
            &DeviceRequest {
                dir: Dir::Read,
                bytes: Bytes::kib(64),
                block: Some(5),
            },
        );
        let w = d.estimate(
            SimTime::ZERO,
            &DeviceRequest {
                dir: Dir::Write,
                bytes: Bytes::kib(64),
                block: Some(5),
            },
        );
        assert_eq!(r.service_time, w.service_time);
        assert_eq!(r.energy, w.energy);
        let _ = &mut d;
    }

    #[test]
    fn meter_reset_keeps_state() {
        let mut d = disk();
        d.advance_to(SimTime::from_secs(30));
        let state = d.state();
        d.reset_meter();
        assert_eq!(d.energy(), Joules::ZERO);
        assert_eq!(d.state(), state);
        assert_eq!(d.clock(), SimTime::from_secs(30));
    }

    #[test]
    fn is_ready_tracks_spinning() {
        let mut d = disk();
        assert!(d.is_ready());
        d.advance_to(SimTime::from_secs(60));
        assert!(!d.is_ready());
    }

    #[test]
    fn standby_start_constructor() {
        let mut d = DiskModel::new_standby(DiskParams::hitachi_dk23da());
        assert!(!d.is_ready());
        let out = d.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(4), None));
        assert!(out.energy.get() > 5.0);
    }
}
