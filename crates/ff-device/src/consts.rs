//! Canonical physical constants of the paper's device tables.
//!
//! Single source of truth for every Table 1 / Table 2 calibration value
//! (plus the §3.1 prose constants). The device constructors
//! ([`crate::DiskParams::hitachi_dk23da`],
//! [`crate::WnicParams::cisco_aironet350`]) read these; nothing else in
//! `ff-device`/`ff-policy`/`ff-sim` may repeat the raw numbers —
//! `ff-lint`'s `const-provenance` family flags any matching literal that
//! bypasses this module, and cross-checks the values below against its
//! own pinned registry so neither side can drift alone.
//!
//! Values are raw numbers (not newtypes) in the unit named by the
//! suffix, so call sites stay greppable: `Watts(DISK_ACTIVE_POWER_W)`.

// --------------------------------------------------------------------
// Table 1 — Hitachi DK23DA 2.5" hard disk (30 GB, 4200 RPM)
// --------------------------------------------------------------------

/// Power while reading or writing (Table 1: 2.0 W).
pub const DISK_ACTIVE_POWER_W: f64 = 2.0;
/// Power while spinning idle (Table 1: 1.6 W).
pub const DISK_IDLE_POWER_W: f64 = 1.6;
/// Power in standby, platters stopped (Table 1: 0.15 W).
pub const DISK_STANDBY_POWER_W: f64 = 0.15;
/// Energy of one spin-up transient (Table 1: 5.0 J).
pub const DISK_SPINUP_ENERGY_J: f64 = 5.0;
/// Energy of one spin-down transient (Table 1: 2.94 J).
pub const DISK_SPINDOWN_ENERGY_J: f64 = 2.94;
/// Duration of a spin-up (Table 1: 1.6 s).
pub const DISK_SPINUP_TIME_MS: u64 = 1_600;
/// Duration of a spin-down (Table 1: 2.3 s).
pub const DISK_SPINDOWN_TIME_MS: u64 = 2_300;
/// Idle time before the disk spins down (§3.1: 20 s, the Linux
/// laptop-mode default).
pub const DISK_TIMEOUT_S: u64 = 20;
/// Average seek time (§3.1: 13 ms).
pub const DISK_SEEK_MS: u64 = 13;
/// Average rotational delay (§3.1: 7 ms, half a 4200 RPM revolution).
pub const DISK_ROTATION_MS: u64 = 7;
/// Peak transfer bandwidth (§3.1: 35 MB/s).
pub const DISK_BANDWIDTH_MB_S: f64 = 35.0;
/// Short-seek settle time for near targets (track-to-track scale).
pub const DISK_SHORT_SEEK_MS: u64 = 2;
/// Maximum block distance still counted as a short seek (8 MiB of LBA).
pub const DISK_SHORT_SEEK_BLOCKS: u64 = 2048;

// --------------------------------------------------------------------
// Table 2 — Cisco Aironet 350 802.11b WNIC
// --------------------------------------------------------------------

/// PSM idle power (Table 2: 0.39 W).
pub const WNIC_PSM_IDLE_W: f64 = 0.39;
/// PSM receive power (Table 2: 1.42 W).
pub const WNIC_PSM_RECV_W: f64 = 1.42;
/// PSM send power (Table 2: 2.48 W).
pub const WNIC_PSM_SEND_W: f64 = 2.48;
/// CAM idle power (Table 2: 1.41 W).
pub const WNIC_CAM_IDLE_W: f64 = 1.41;
/// CAM receive power (Table 2: 2.61 W).
pub const WNIC_CAM_RECV_W: f64 = 2.61;
/// CAM send power (Table 2: 3.69 W).
pub const WNIC_CAM_SEND_W: f64 = 3.69;
/// Duration of the CAM→PSM switch (Table 2: 0.41 s).
pub const WNIC_TO_PSM_TIME_MS: u64 = 410;
/// Energy of the CAM→PSM switch (Table 2: 0.53 J).
pub const WNIC_TO_PSM_ENERGY_J: f64 = 0.53;
/// Duration of the PSM→CAM switch (Table 2: 0.40 s).
pub const WNIC_TO_CAM_TIME_MS: u64 = 400;
/// Energy of the PSM→CAM switch (Table 2: 0.51 J).
pub const WNIC_TO_CAM_ENERGY_J: f64 = 0.51;
/// CAM idle time before switching to PSM (§3.1: 800 ms).
pub const WNIC_PSM_TIMEOUT_MS: u64 = 800;
/// Link bandwidth of the paper's card (802.11b top rate: 11 Mbps).
pub const WNIC_BANDWIDTH_MBPS: f64 = 11.0;
/// Round-trip latency to the remote storage server (the fixed-latency
/// point of the §3.3 sweep).
pub const WNIC_LATENCY_MS: u64 = 1;
/// Largest request drainable during a PSM beacon wake-up without
/// switching to CAM — one MTU packet.
pub const WNIC_PSM_PACKET_BYTES: u64 = 1500;
/// 802.11 beacon interval; a PSM-serviced request waits half of it on
/// average.
pub const WNIC_BEACON_INTERVAL_MS: u64 = 100;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_orderings_hold() {
        // Table 1: standby < idle <= active.
        assert!(DISK_STANDBY_POWER_W < DISK_IDLE_POWER_W);
        assert!(DISK_IDLE_POWER_W <= DISK_ACTIVE_POWER_W);
        // Table 2: PSM draws less than CAM in every mode.
        assert!(WNIC_PSM_IDLE_W < WNIC_CAM_IDLE_W);
        assert!(WNIC_PSM_RECV_W < WNIC_CAM_RECV_W);
        assert!(WNIC_PSM_SEND_W < WNIC_CAM_SEND_W);
        // §3.1: the WNIC drops to PSM long before the disk spins down.
        assert!(WNIC_PSM_TIMEOUT_MS < DISK_TIMEOUT_S * 1_000);
    }
}
