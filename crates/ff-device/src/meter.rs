//! Per-state time and energy accounting.

use ff_base::{Dur, Joules, SimTime, Watts};
use std::collections::BTreeMap;

/// One chronological entry of the optional power log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerEvent {
    /// Dwelled in `state` at `power` for `dur`.
    Dwell {
        /// State name.
        state: &'static str,
        /// Constant power during the segment.
        power: Watts,
        /// Segment length.
        dur: Dur,
    },
    /// A zero-width transition consuming `energy`.
    Transition {
        /// Transition name.
        name: &'static str,
        /// Lump-sum energy.
        energy: Joules,
    },
}

/// One timestamped entry of the optional state-change log — the input
/// to the simulator's observability recorder (`ff-sim`'s `Recorder`).
///
/// Two kinds of entry share the struct: *state entries* (`transition ==
/// false`, the device started dwelling in `state` at `at`) and
/// *transition markers* (`transition == true`, a named one-shot
/// transition such as `spin_up` fired at `at`, costing `energy`).
///
/// ```
/// use ff_base::{Dur, Joules, SimTime, Watts};
/// use ff_device::StateMeter;
///
/// let mut m = StateMeter::new();
/// m.enable_state_log(SimTime::ZERO);
/// m.dwell("idle", Watts(1.6), Dur::from_secs(20));
/// m.transition("spin_down", Joules(2.94));
/// m.dwell("standby", Watts(0.15), Dur::from_secs(5));
/// let changes = m.take_state_changes();
/// assert_eq!(changes.len(), 3);
/// assert_eq!(changes[1].state, "spin_down");
/// assert!(changes[1].transition);
/// assert_eq!(changes[2].at, SimTime::from_secs(20));
/// // A second take returns only what happened since.
/// assert!(m.take_state_changes().is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateChange {
    /// Simulated instant of the change.
    pub at: SimTime,
    /// State entered, or transition name (`spin_up`, `cam_to_psm`, …).
    pub state: &'static str,
    /// True for one-shot transition markers, false for state entries.
    pub transition: bool,
    /// Lump-sum transition energy (zero for state entries).
    pub energy: Joules,
}

/// Internal bookkeeping for the state-change log.
#[derive(Debug, Clone, Default)]
struct StateLog {
    /// Simulated time covered by dwells so far (the log's clock).
    cursor: Dur,
    /// Simulated instant recording started (dwell time is relative
    /// to it).
    base: SimTime,
    /// Last dwell state seen, to log only the *changes*.
    last: Option<&'static str>,
    /// Entries not yet drained by `take_state_changes`.
    pending: Vec<StateChange>,
}

/// Accumulates residency time and energy per named device state, plus
/// counted one-shot transition energies (spin-ups, mode switches).
///
/// Keys are `&'static str` state names so the meter is shared between
/// the two device types and prints uniformly in reports.
#[derive(Debug, Clone, Default)]
pub struct StateMeter {
    residency: BTreeMap<&'static str, (Dur, Joules)>,
    transitions: BTreeMap<&'static str, (u64, Joules)>,
    total: Joules,
    /// Chronological power log (None = disabled; dwells arrive in time
    /// order because the models account time single-threadedly).
    log: Option<Vec<PowerEvent>>,
    /// Timestamped state-change log (None = disabled, the default — the
    /// zero-cost-when-off path the recorder relies on).
    state_log: Option<StateLog>,
}

impl StateMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording a chronological power log (costs memory
    /// proportional to state changes; off by default).
    pub fn enable_log(&mut self) {
        self.log.get_or_insert_with(Vec::new);
    }

    /// The chronological power log, if recording was enabled.
    pub fn power_log(&self) -> Option<&[PowerEvent]> {
        self.log.as_deref()
    }

    /// Start recording timestamped [`StateChange`] entries. `base` must
    /// be the device's current simulated clock: subsequent dwell time is
    /// accumulated on top of it to stamp each change. Idempotent.
    pub fn enable_state_log(&mut self, base: SimTime) {
        if self.state_log.is_none() {
            self.state_log = Some(StateLog {
                base,
                ..StateLog::default()
            });
        }
    }

    /// Drain the state changes recorded since the last drain (empty when
    /// the log is disabled). The simulator pulls this after every
    /// discrete event and forwards the entries to its recorder.
    pub fn take_state_changes(&mut self) -> Vec<StateChange> {
        match &mut self.state_log {
            Some(log) => std::mem::take(&mut log.pending),
            None => Vec::new(),
        }
    }

    /// Account `d` spent in `state` drawing `power`.
    pub fn dwell(&mut self, state: &'static str, power: Watts, d: Dur) {
        if d.is_zero() {
            return;
        }
        if let Some(slog) = &mut self.state_log {
            if slog.last != Some(state) {
                slog.pending.push(StateChange {
                    at: slog.base + slog.cursor,
                    state,
                    transition: false,
                    energy: Joules::ZERO,
                });
                slog.last = Some(state);
            }
            slog.cursor += d;
        }
        if let Some(log) = &mut self.log {
            // Coalesce with the previous segment when the state repeats.
            if let Some(PowerEvent::Dwell {
                state: s,
                power: p,
                dur,
            }) = log.last_mut()
            {
                if *s == state && *p == power {
                    *dur += d;
                } else {
                    log.push(PowerEvent::Dwell {
                        state,
                        power,
                        dur: d,
                    });
                }
            } else {
                log.push(PowerEvent::Dwell {
                    state,
                    power,
                    dur: d,
                });
            }
        }
        let e = power * d;
        let entry = self
            .residency
            .entry(state)
            .or_insert((Dur::ZERO, Joules::ZERO));
        entry.0 += d;
        entry.1 += e;
        self.total += e;
    }

    /// Account a one-shot transition (e.g. a spin-up) costing `energy`.
    pub fn transition(&mut self, name: &'static str, energy: Joules) {
        if let Some(log) = &mut self.log {
            log.push(PowerEvent::Transition { name, energy });
        }
        if let Some(slog) = &mut self.state_log {
            slog.pending.push(StateChange {
                at: slog.base + slog.cursor,
                state: name,
                transition: true,
                energy,
            });
        }
        let entry = self.transitions.entry(name).or_insert((0, Joules::ZERO));
        entry.0 += 1;
        entry.1 += energy;
        self.total += energy;
    }

    /// Total energy accounted.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Time spent in `state` so far.
    pub fn time_in(&self, state: &str) -> Dur {
        self.residency
            .get(state)
            .map(|&(d, _)| d)
            .unwrap_or(Dur::ZERO)
    }

    /// Energy spent dwelling in `state` so far.
    pub fn energy_in(&self, state: &str) -> Joules {
        self.residency
            .get(state)
            .map(|&(_, e)| e)
            .unwrap_or(Joules::ZERO)
    }

    /// Number of `name` transitions so far.
    pub fn transition_count(&self, name: &str) -> u64 {
        self.transitions.get(name).map(|&(n, _)| n).unwrap_or(0)
    }

    /// Energy spent on `name` transitions so far.
    pub fn transition_energy(&self, name: &str) -> Joules {
        self.transitions
            .get(name)
            .map(|&(_, e)| e)
            .unwrap_or(Joules::ZERO)
    }

    /// Iterate state residencies in name order.
    pub fn residencies(&self) -> impl Iterator<Item = (&'static str, Dur, Joules)> + '_ {
        self.residency.iter().map(|(&k, &(d, e))| (k, d, e))
    }

    /// Iterate transition tallies in name order.
    pub fn transitions(&self) -> impl Iterator<Item = (&'static str, u64, Joules)> + '_ {
        self.transitions.iter().map(|(&k, &(n, e))| (k, n, e))
    }

    /// Zero everything (reuse the device across stages/experiments).
    /// The state-change log keeps its clock (simulated time continues)
    /// but drops undrained entries.
    pub fn reset(&mut self) {
        self.residency.clear();
        self.transitions.clear();
        self.total = Joules::ZERO;
        if let Some(log) = &mut self.log {
            log.clear();
        }
        if let Some(slog) = &mut self.state_log {
            slog.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwell_accumulates_time_and_energy() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.6), Dur::from_secs(10));
        m.dwell("idle", Watts(1.6), Dur::from_secs(5));
        assert_eq!(m.time_in("idle"), Dur::from_secs(15));
        assert!((m.energy_in("idle").get() - 24.0).abs() < 1e-9);
        assert!((m.total().get() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn zero_dwell_is_free() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.6), Dur::ZERO);
        assert_eq!(m.total(), Joules::ZERO);
        assert_eq!(m.residencies().count(), 0);
    }

    #[test]
    fn transitions_count_and_cost() {
        let mut m = StateMeter::new();
        m.transition("spin_up", Joules(5.0));
        m.transition("spin_up", Joules(5.0));
        m.transition("spin_down", Joules(2.94));
        assert_eq!(m.transition_count("spin_up"), 2);
        assert!((m.transition_energy("spin_up").get() - 10.0).abs() < 1e-12);
        assert!((m.total().get() - 12.94).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = StateMeter::new();
        m.dwell("active", Watts(2.0), Dur::from_secs(1));
        m.transition("spin_up", Joules(5.0));
        m.reset();
        assert_eq!(m.total(), Joules::ZERO);
        assert_eq!(m.time_in("active"), Dur::ZERO);
        assert_eq!(m.transition_count("spin_up"), 0);
    }

    #[test]
    fn power_log_is_chronological_and_coalesced() {
        let mut m = StateMeter::new();
        m.enable_log();
        m.dwell("idle", Watts(1.6), Dur::from_secs(1));
        m.dwell("idle", Watts(1.6), Dur::from_secs(2)); // coalesces
        m.transition("spin_down", Joules(2.94));
        m.dwell("standby", Watts(0.15), Dur::from_secs(5));
        let log = m.power_log().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log[0],
            PowerEvent::Dwell {
                state: "idle",
                power: Watts(1.6),
                dur: Dur::from_secs(3)
            }
        );
        assert!(matches!(
            log[1],
            PowerEvent::Transition {
                name: "spin_down",
                ..
            }
        ));
        // Log energy equals meter total.
        let log_e: f64 = log
            .iter()
            .map(|e| match e {
                PowerEvent::Dwell { power, dur, .. } => (*power * *dur).get(),
                PowerEvent::Transition { energy, .. } => energy.get(),
            })
            .sum();
        assert!((log_e - m.total().get()).abs() < 1e-9);
    }

    #[test]
    fn log_disabled_by_default_and_cleared_on_reset() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.0), Dur::from_secs(1));
        assert!(m.power_log().is_none());
        m.enable_log();
        m.dwell("idle", Watts(1.0), Dur::from_secs(1));
        assert_eq!(m.power_log().unwrap().len(), 1);
        m.reset();
        assert!(m.power_log().unwrap().is_empty());
    }

    #[test]
    fn state_log_stamps_changes_and_drains_incrementally() {
        let mut m = StateMeter::new();
        m.enable_state_log(SimTime::from_secs(10));
        m.dwell("idle", Watts(1.6), Dur::from_secs(20));
        m.dwell("idle", Watts(1.6), Dur::from_secs(5)); // same state: no entry
        m.transition("spin_down", Joules(2.94));
        m.dwell("spinning_down", Watts::ZERO, Dur::from_millis(2_300));
        let first = m.take_state_changes();
        assert_eq!(first.len(), 3);
        assert_eq!(
            (first[0].at, first[0].state, first[0].transition),
            (SimTime::from_secs(10), "idle", false)
        );
        assert_eq!(
            (first[1].at, first[1].state, first[1].transition),
            (SimTime::from_secs(35), "spin_down", true)
        );
        assert_eq!(first[1].energy, Joules(2.94));
        assert_eq!(first[2].state, "spinning_down");
        // Incremental drain: later activity shows up in the next take.
        m.dwell("standby", Watts(0.15), Dur::from_secs(1));
        let second = m.take_state_changes();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].state, "standby");
        assert_eq!(
            second[0].at,
            SimTime::from_secs(35) + Dur::from_millis(2_300)
        );
    }

    #[test]
    fn state_log_disabled_is_free_and_empty() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.6), Dur::from_secs(1));
        m.transition("spin_up", Joules(5.0));
        assert!(m.take_state_changes().is_empty());
    }

    #[test]
    fn unknown_keys_read_as_zero() {
        let m = StateMeter::new();
        assert_eq!(m.time_in("nope"), Dur::ZERO);
        assert_eq!(m.energy_in("nope"), Joules::ZERO);
        assert_eq!(m.transition_count("nope"), 0);
    }
}
