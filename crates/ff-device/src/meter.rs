//! Per-state time and energy accounting.

use ff_base::{Dur, Joules, Watts};
use std::collections::BTreeMap;

/// One chronological entry of the optional power log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerEvent {
    /// Dwelled in `state` at `power` for `dur`.
    Dwell {
        /// State name.
        state: &'static str,
        /// Constant power during the segment.
        power: Watts,
        /// Segment length.
        dur: Dur,
    },
    /// A zero-width transition consuming `energy`.
    Transition {
        /// Transition name.
        name: &'static str,
        /// Lump-sum energy.
        energy: Joules,
    },
}

/// Accumulates residency time and energy per named device state, plus
/// counted one-shot transition energies (spin-ups, mode switches).
///
/// Keys are `&'static str` state names so the meter is shared between
/// the two device types and prints uniformly in reports.
#[derive(Debug, Clone, Default)]
pub struct StateMeter {
    residency: BTreeMap<&'static str, (Dur, Joules)>,
    transitions: BTreeMap<&'static str, (u64, Joules)>,
    total: Joules,
    /// Chronological power log (None = disabled; dwells arrive in time
    /// order because the models account time single-threadedly).
    log: Option<Vec<PowerEvent>>,
}

impl StateMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording a chronological power log (costs memory
    /// proportional to state changes; off by default).
    pub fn enable_log(&mut self) {
        self.log.get_or_insert_with(Vec::new);
    }

    /// The chronological power log, if recording was enabled.
    pub fn power_log(&self) -> Option<&[PowerEvent]> {
        self.log.as_deref()
    }

    /// Account `d` spent in `state` drawing `power`.
    pub fn dwell(&mut self, state: &'static str, power: Watts, d: Dur) {
        if d.is_zero() {
            return;
        }
        if let Some(log) = &mut self.log {
            // Coalesce with the previous segment when the state repeats.
            if let Some(PowerEvent::Dwell {
                state: s,
                power: p,
                dur,
            }) = log.last_mut()
            {
                if *s == state && *p == power {
                    *dur += d;
                } else {
                    log.push(PowerEvent::Dwell {
                        state,
                        power,
                        dur: d,
                    });
                }
            } else {
                log.push(PowerEvent::Dwell {
                    state,
                    power,
                    dur: d,
                });
            }
        }
        let e = power * d;
        let entry = self
            .residency
            .entry(state)
            .or_insert((Dur::ZERO, Joules::ZERO));
        entry.0 += d;
        entry.1 += e;
        self.total += e;
    }

    /// Account a one-shot transition (e.g. a spin-up) costing `energy`.
    pub fn transition(&mut self, name: &'static str, energy: Joules) {
        if let Some(log) = &mut self.log {
            log.push(PowerEvent::Transition { name, energy });
        }
        let entry = self.transitions.entry(name).or_insert((0, Joules::ZERO));
        entry.0 += 1;
        entry.1 += energy;
        self.total += energy;
    }

    /// Total energy accounted.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Time spent in `state` so far.
    pub fn time_in(&self, state: &str) -> Dur {
        self.residency
            .get(state)
            .map(|&(d, _)| d)
            .unwrap_or(Dur::ZERO)
    }

    /// Energy spent dwelling in `state` so far.
    pub fn energy_in(&self, state: &str) -> Joules {
        self.residency
            .get(state)
            .map(|&(_, e)| e)
            .unwrap_or(Joules::ZERO)
    }

    /// Number of `name` transitions so far.
    pub fn transition_count(&self, name: &str) -> u64 {
        self.transitions.get(name).map(|&(n, _)| n).unwrap_or(0)
    }

    /// Energy spent on `name` transitions so far.
    pub fn transition_energy(&self, name: &str) -> Joules {
        self.transitions
            .get(name)
            .map(|&(_, e)| e)
            .unwrap_or(Joules::ZERO)
    }

    /// Iterate state residencies in name order.
    pub fn residencies(&self) -> impl Iterator<Item = (&'static str, Dur, Joules)> + '_ {
        self.residency.iter().map(|(&k, &(d, e))| (k, d, e))
    }

    /// Iterate transition tallies in name order.
    pub fn transitions(&self) -> impl Iterator<Item = (&'static str, u64, Joules)> + '_ {
        self.transitions.iter().map(|(&k, &(n, e))| (k, n, e))
    }

    /// Zero everything (reuse the device across stages/experiments).
    pub fn reset(&mut self) {
        self.residency.clear();
        self.transitions.clear();
        self.total = Joules::ZERO;
        if let Some(log) = &mut self.log {
            log.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwell_accumulates_time_and_energy() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.6), Dur::from_secs(10));
        m.dwell("idle", Watts(1.6), Dur::from_secs(5));
        assert_eq!(m.time_in("idle"), Dur::from_secs(15));
        assert!((m.energy_in("idle").get() - 24.0).abs() < 1e-9);
        assert!((m.total().get() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn zero_dwell_is_free() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.6), Dur::ZERO);
        assert_eq!(m.total(), Joules::ZERO);
        assert_eq!(m.residencies().count(), 0);
    }

    #[test]
    fn transitions_count_and_cost() {
        let mut m = StateMeter::new();
        m.transition("spin_up", Joules(5.0));
        m.transition("spin_up", Joules(5.0));
        m.transition("spin_down", Joules(2.94));
        assert_eq!(m.transition_count("spin_up"), 2);
        assert!((m.transition_energy("spin_up").get() - 10.0).abs() < 1e-12);
        assert!((m.total().get() - 12.94).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = StateMeter::new();
        m.dwell("active", Watts(2.0), Dur::from_secs(1));
        m.transition("spin_up", Joules(5.0));
        m.reset();
        assert_eq!(m.total(), Joules::ZERO);
        assert_eq!(m.time_in("active"), Dur::ZERO);
        assert_eq!(m.transition_count("spin_up"), 0);
    }

    #[test]
    fn power_log_is_chronological_and_coalesced() {
        let mut m = StateMeter::new();
        m.enable_log();
        m.dwell("idle", Watts(1.6), Dur::from_secs(1));
        m.dwell("idle", Watts(1.6), Dur::from_secs(2)); // coalesces
        m.transition("spin_down", Joules(2.94));
        m.dwell("standby", Watts(0.15), Dur::from_secs(5));
        let log = m.power_log().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log[0],
            PowerEvent::Dwell {
                state: "idle",
                power: Watts(1.6),
                dur: Dur::from_secs(3)
            }
        );
        assert!(matches!(
            log[1],
            PowerEvent::Transition {
                name: "spin_down",
                ..
            }
        ));
        // Log energy equals meter total.
        let log_e: f64 = log
            .iter()
            .map(|e| match e {
                PowerEvent::Dwell { power, dur, .. } => (*power * *dur).get(),
                PowerEvent::Transition { energy, .. } => energy.get(),
            })
            .sum();
        assert!((log_e - m.total().get()).abs() < 1e-9);
    }

    #[test]
    fn log_disabled_by_default_and_cleared_on_reset() {
        let mut m = StateMeter::new();
        m.dwell("idle", Watts(1.0), Dur::from_secs(1));
        assert!(m.power_log().is_none());
        m.enable_log();
        m.dwell("idle", Watts(1.0), Dur::from_secs(1));
        assert_eq!(m.power_log().unwrap().len(), 1);
        m.reset();
        assert!(m.power_log().unwrap().is_empty());
    }

    #[test]
    fn unknown_keys_read_as_zero() {
        let m = StateMeter::new();
        assert_eq!(m.time_in("nope"), Dur::ZERO);
        assert_eq!(m.energy_in("nope"), Joules::ZERO);
        assert_eq!(m.transition_count("nope"), 0);
    }
}
