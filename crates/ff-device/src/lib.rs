//! # ff-device — storage-device power and performance models
//!
//! Implements the two I/O devices the paper simulates, with the exact
//! constants of Tables 1 and 2:
//!
//! * [`DiskModel`] — the Hitachi DK23DA 2.5" hard disk: Active / Idle /
//!   Standby states plus spin-up/-down transients, a 20 s idle timeout
//!   (Linux laptop-mode default), 13 ms average seek + 7 ms average
//!   rotation, 35 MB/s peak transfer, and sequential-access detection so
//!   contiguous requests skip head positioning (§2.1).
//! * [`WnicModel`] — the Cisco Aironet 350 802.11b card: CAM / PSM modes
//!   plus mode-switch transients, an 800 ms CAM→PSM idle timeout, the
//!   card's *adaptive dynamic power management* (traffic beyond one
//!   packet forces CAM; a single-packet request can be served during a
//!   PSM beacon wake-up), and configurable latency/bandwidth for the
//!   §3.3 sweeps.
//!
//! Both devices implement [`PowerModel`]; models are plain `Clone` data,
//! so the FlexFetch estimator can run them as the paper's cheap "on-line
//! simulators" (§2.2), and BlueFS can ask *what would this request cost*
//! without disturbing the live device.

//! ```
//! use ff_base::{Bytes, SimTime};
//! use ff_device::{DeviceRequest, DiskModel, DiskParams, PowerModel};
//!
//! // Service one 64 KiB read on an idle DK23DA and meter it.
//! let mut disk = DiskModel::new(DiskParams::hitachi_dk23da());
//! let out = disk.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), Some(0)));
//! // 20 ms positioning + ~1.9 ms transfer at 2 W.
//! assert!(out.service_time.as_secs_f64() < 0.025);
//! assert!(out.energy.get() < 0.05);
//!
//! // Left alone past the 20 s timeout, it spins down to standby.
//! disk.advance_to(SimTime::from_secs(60));
//! assert!(!disk.is_ready());
//! assert_eq!(disk.meter().transition_count("spin_down"), 1);
//! ```

#![warn(missing_docs)]

pub mod consts;
pub mod disk;
pub mod flash;
pub mod meter;
pub mod model;
pub mod spindown;
pub mod wnic;

pub use disk::{DiskModel, DiskParams, DiskState};
pub use flash::{FlashModel, FlashParams};
pub use meter::{PowerEvent, StateChange, StateMeter};
pub use model::{DeviceRequest, Dir, PowerModel, ServiceOutcome};
pub use spindown::ShareSpindown;
pub use wnic::{WnicModel, WnicParams, WnicState};
