//! The device abstraction shared by disk and WNIC.

use ff_base::{Bytes, Dur, Joules, SimTime};

/// Transfer direction of a device request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Data flows device → host (disk read / WNIC receive).
    Read,
    /// Data flows host → device (disk write / WNIC send).
    Write,
}

/// One request presented to a device, after cache filtering and request
/// merging — i.e. what actually hits the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRequest {
    /// Direction.
    pub dir: Dir,
    /// Payload size.
    pub bytes: Bytes,
    /// Starting disk block (global address from the layout), used by the
    /// disk for sequential-access detection. Irrelevant for the WNIC.
    pub block: Option<u64>,
}

impl DeviceRequest {
    /// Convenience read request.
    pub fn read(bytes: Bytes, block: Option<u64>) -> Self {
        DeviceRequest {
            dir: Dir::Read,
            bytes,
            block,
        }
    }

    /// Convenience write request.
    pub fn write(bytes: Bytes, block: Option<u64>) -> Self {
        DeviceRequest {
            dir: Dir::Write,
            bytes,
            block,
        }
    }
}

/// What servicing one request cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOutcome {
    /// Instant the last byte was delivered.
    pub complete: SimTime,
    /// Total service time (wait for transients + positioning/latency +
    /// transfer), i.e. `complete - arrival`.
    pub service_time: Dur,
    /// Energy spent on this request *including* any transition it forced
    /// (spin-up, PSM→CAM) but excluding idle energy between requests.
    pub energy: Joules,
}

/// Common behaviour of the two power-managed devices.
///
/// The contract: time flows forward. Callers must present monotonically
/// non-decreasing `now` values across `advance_to` / `service` calls; the
/// models `debug_assert` this. `advance_to` integrates idle energy and
/// applies timeout-driven transitions (disk spin-down, WNIC CAM→PSM);
/// `service` implicitly advances first.
pub trait PowerModel {
    /// Bring the model's clock to `now`, accounting idle/standby energy
    /// and performing any timeout transitions that fired in between.
    fn advance_to(&mut self, now: SimTime);

    /// Service `req` arriving at `now`; blocks behind in-flight
    /// transients, pays wake-up transitions, positioning and transfer.
    fn service(&mut self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome;

    /// Estimate what `service(now, req)` *would* cost without mutating
    /// the model (the BlueFS cost probe and FlexFetch's on-line
    /// simulator both use this).
    fn estimate(&self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome;

    /// Total energy consumed since construction or the last meter reset,
    /// *including* idle/standby energy up to the model's current clock.
    fn energy(&self) -> Joules;

    /// The model's current clock (last instant accounted).
    fn clock(&self) -> SimTime;

    /// True iff the device is in its high-power ready state (disk
    /// spinning, WNIC in CAM) — what the free-rider check wants to know.
    fn is_ready(&self) -> bool;
}
