//! The wireless-NIC power model (Cisco Aironet 350, Table 2).
//!
//! State machine:
//!
//! ```text
//!            timeout (800 ms idle)         switch (0.41 s, 0.53 J)
//!   CAM ───────────────────────────► ToPsm ────────────────────► PSM
//!    ▲                                                            │
//!    │   wake on traffic > 1 packet (0.40 s, 0.51 J)              │
//!    └────────────────────────◄── ToCam ◄─────────────────────────┘
//! ```
//!
//! §3.1: the card *"switches to the PSM mode from the CAM mode when WNIC
//! has been idle for more than 800 msec, and it switches back to the CAM
//! mode if more than one packet is ready on the access point."* We model
//! that adaptive policy literally: a request that fits in a single MTU
//! packet can be drained during a PSM beacon wake-up (paying half a
//! beacon interval of extra latency on average); anything larger forces
//! the PSM→CAM switch.
//!
//! Transfers draw the direction-specific receive/send power; the
//! round-trip latency to the remote server (a sweep axis in §3.3) dwells
//! at the mode's idle power.
//!
//! The state machine above is model-checked by `ff-lint` against the
//! `match self.state` transitions in this file, and every transition is
//! visible at run time as a `device_transition` observability event
//! (DESIGN.md §9 and §10).

use crate::consts;
use crate::meter::StateMeter;
use crate::model::{DeviceRequest, Dir, PowerModel, ServiceOutcome};
use ff_base::{BytesPerSec, Dur, Joules, SimTime, Watts};

/// WNIC power/performance constants. Defaults are Table 2 plus the §3.1
/// prose (800 ms PSM timeout, 11 Mbps) and a 1 ms base latency (the
/// fixed-latency point of the bandwidth sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct WnicParams {
    /// PSM idle power (Table 2: 0.39 W).
    pub psm_idle: Watts,
    /// PSM receive power (Table 2: 1.42 W).
    pub psm_recv: Watts,
    /// PSM send power (Table 2: 2.48 W).
    pub psm_send: Watts,
    /// CAM idle power (Table 2: 1.41 W).
    pub cam_idle: Watts,
    /// CAM receive power (Table 2: 2.61 W).
    pub cam_recv: Watts,
    /// CAM send power (Table 2: 3.69 W).
    pub cam_send: Watts,
    /// CAM→PSM switch (Table 2: 0.41 s, 0.53 J).
    pub to_psm_time: Dur,
    /// Energy of the CAM→PSM switch.
    pub to_psm_energy: Joules,
    /// PSM→CAM switch (Table 2: 0.40 s, 0.51 J).
    pub to_cam_time: Dur,
    /// Energy of the PSM→CAM switch.
    pub to_cam_energy: Joules,
    /// CAM idle time before switching to PSM (§3.1: 800 ms).
    pub psm_timeout: Dur,
    /// Link bandwidth (802.11b: 1, 2, 5.5 or 11 Mbps).
    pub bandwidth: BytesPerSec,
    /// Round-trip latency to the remote storage server per request.
    pub latency: Dur,
    /// Largest request drainable during a PSM beacon wake-up without
    /// switching to CAM ("more than one packet ready" forces CAM).
    pub psm_packet_bytes: u64,
    /// 802.11 beacon interval; a PSM-serviced request waits half of it
    /// on average.
    pub beacon_interval: Dur,
}

impl WnicParams {
    /// The paper's card at 11 Mbps with 1 ms server latency. Every value
    /// comes from [`crate::consts`], the single source of truth for the
    /// Table 2 calibration numbers.
    pub fn cisco_aironet350() -> Self {
        WnicParams {
            psm_idle: Watts(consts::WNIC_PSM_IDLE_W),
            psm_recv: Watts(consts::WNIC_PSM_RECV_W),
            psm_send: Watts(consts::WNIC_PSM_SEND_W),
            cam_idle: Watts(consts::WNIC_CAM_IDLE_W),
            cam_recv: Watts(consts::WNIC_CAM_RECV_W),
            cam_send: Watts(consts::WNIC_CAM_SEND_W),
            to_psm_time: Dur::from_millis(consts::WNIC_TO_PSM_TIME_MS),
            to_psm_energy: Joules(consts::WNIC_TO_PSM_ENERGY_J),
            to_cam_time: Dur::from_millis(consts::WNIC_TO_CAM_TIME_MS),
            to_cam_energy: Joules(consts::WNIC_TO_CAM_ENERGY_J),
            psm_timeout: Dur::from_millis(consts::WNIC_PSM_TIMEOUT_MS),
            bandwidth: BytesPerSec::from_mbit_per_sec(consts::WNIC_BANDWIDTH_MBPS),
            latency: Dur::from_millis(consts::WNIC_LATENCY_MS),
            psm_packet_bytes: consts::WNIC_PSM_PACKET_BYTES,
            beacon_interval: Dur::from_millis(consts::WNIC_BEACON_INTERVAL_MS),
        }
    }

    /// Same card with a different link bandwidth (the Fig. x(b) sweeps).
    pub fn with_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.bandwidth = BytesPerSec::from_mbit_per_sec(mbps);
        self
    }

    /// Same card with a different server latency (the Fig. x(a) sweeps).
    pub fn with_latency(mut self, latency: Dur) -> Self {
        self.latency = latency;
        self
    }
}

impl Default for WnicParams {
    fn default() -> Self {
        WnicParams::cisco_aironet350()
    }
}

/// Observable WNIC state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WnicState {
    /// Continuously-aware mode: radio on, ready.
    Cam,
    /// Switching CAM→PSM; completes at the given instant.
    ToPsm(SimTime),
    /// Power-saving mode: radio mostly off, wakes at beacons.
    Psm,
    /// Switching PSM→CAM; completes at the given instant.
    ToCam(SimTime),
}

/// The live WNIC model.
#[derive(Debug, Clone)]
pub struct WnicModel {
    params: WnicParams,
    state: WnicState,
    clock: SimTime,
    /// Start of the current CAM idle stretch (valid in `Cam`).
    idle_since: SimTime,
    /// Association status. A card whose link is down keeps its power
    /// state machine (it still burns idle power and times out to PSM)
    /// but cannot carry traffic — the router must not send requests
    /// here while the link is down. Orthogonal to [`WnicState`] on
    /// purpose: losing the access point does not change what the radio
    /// hardware is doing, only whether packets get through.
    link_up: bool,
    meter: StateMeter,
}

impl WnicModel {
    /// New card in PSM at t = 0 (a quiescent card has long since dropped
    /// to power-saving mode).
    pub fn new(params: WnicParams) -> Self {
        WnicModel {
            params,
            state: WnicState::Psm,
            clock: SimTime::ZERO,
            idle_since: SimTime::ZERO,
            link_up: true,
            meter: StateMeter::new(),
        }
    }

    /// New card in CAM (for estimator what-if runs).
    pub fn new_cam(params: WnicParams) -> Self {
        WnicModel {
            state: WnicState::Cam,
            ..WnicModel::new(params)
        }
    }

    /// The configured constants.
    pub fn params(&self) -> &WnicParams {
        &self.params
    }

    /// Current state.
    pub fn state(&self) -> WnicState {
        self.state
    }

    /// Per-state meter.
    pub fn meter(&self) -> &StateMeter {
        &self.meter
    }

    /// Reset energy accounting but keep mode and clock.
    pub fn reset_meter(&mut self) {
        self.meter.reset();
    }

    /// Record a chronological power log (see [`StateMeter::power_log`]).
    pub fn enable_power_log(&mut self) {
        self.meter.enable_log();
    }

    /// Record timestamped state changes for the observability recorder
    /// (see [`StateMeter::enable_state_log`]).
    pub fn enable_state_log(&mut self) {
        self.meter.enable_state_log(self.clock);
    }

    /// Drain state changes recorded since the last drain (see
    /// [`StateMeter::take_state_changes`]).
    pub fn take_state_changes(&mut self) -> Vec<crate::meter::StateChange> {
        self.meter.take_state_changes()
    }

    /// Change the link bandwidth mid-run (reception quality shifted —
    /// §2.3's "wireless network bandwidth changes due to factors such as
    /// change of device location"). Affects subsequent transfers only.
    pub fn set_bandwidth(&mut self, bandwidth: BytesPerSec) {
        self.params.bandwidth = bandwidth;
    }

    /// Change the server round-trip latency mid-run.
    pub fn set_latency(&mut self, latency: Dur) {
        self.params.latency = latency;
    }

    /// Take the link down (association lost) or bring it back up.
    /// The power state machine keeps running either way; callers are
    /// expected to stop routing traffic here while the link is down.
    pub fn set_link_up(&mut self, up: bool) {
        self.link_up = up;
    }

    /// Whether the card is associated with an access point.
    pub fn link_is_up(&self) -> bool {
        self.link_up
    }

    fn transfer_power(&self, dir: Dir, cam: bool) -> Watts {
        match (dir, cam) {
            (Dir::Read, true) => self.params.cam_recv,
            (Dir::Write, true) => self.params.cam_send,
            (Dir::Read, false) => self.params.psm_recv,
            (Dir::Write, false) => self.params.psm_send,
        }
    }
}

impl PowerModel for WnicModel {
    fn advance_to(&mut self, now: SimTime) {
        while self.clock < now {
            match self.state {
                WnicState::Cam => {
                    let deadline = self.idle_since + self.params.psm_timeout;
                    if now < deadline {
                        self.meter
                            .dwell("cam_idle", self.params.cam_idle, now - self.clock);
                        self.clock = now;
                    } else {
                        if self.clock < deadline {
                            self.meter.dwell(
                                "cam_idle",
                                self.params.cam_idle,
                                deadline - self.clock,
                            );
                            self.clock = deadline;
                        }
                        self.meter
                            .transition("cam_to_psm", self.params.to_psm_energy);
                        self.state = WnicState::ToPsm(deadline + self.params.to_psm_time);
                    }
                }
                WnicState::ToPsm(until) => {
                    let end = until.min(now);
                    self.meter.dwell("switching", Watts::ZERO, end - self.clock);
                    self.clock = end;
                    if end == until {
                        self.state = WnicState::Psm;
                    }
                }
                WnicState::Psm => {
                    self.meter
                        .dwell("psm_idle", self.params.psm_idle, now - self.clock);
                    self.clock = now;
                }
                WnicState::ToCam(until) => {
                    let end = until.min(now);
                    self.meter.dwell("switching", Watts::ZERO, end - self.clock);
                    self.clock = end;
                    if end == until {
                        self.state = WnicState::Cam;
                        self.idle_since = until;
                    }
                }
            }
        }
    }

    fn service(&mut self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        let arrival = now.max(self.clock);
        self.advance_to(arrival);

        let mut request_energy = Joules::ZERO;

        // Ride out an in-flight switch either way.
        if let WnicState::ToPsm(until) = self.state {
            self.advance_to(until);
        }
        if let WnicState::ToCam(until) = self.state {
            self.advance_to(until);
        }

        let psm_servable =
            self.state == WnicState::Psm && req.bytes.get() <= self.params.psm_packet_bytes;

        if psm_servable {
            // Drain the single packet at the next beacon: half a beacon
            // interval of PSM-idle wait on average, then latency and
            // transfer at PSM transfer power.
            let wait = self.params.beacon_interval / 2;
            self.meter.dwell("psm_idle", self.params.psm_idle, wait);
            request_energy += self.params.psm_idle * wait;
            self.clock += wait;

            self.meter
                .dwell("psm_idle", self.params.psm_idle, self.params.latency);
            request_energy += self.params.psm_idle * self.params.latency;
            self.clock += self.params.latency;

            let transfer = self.params.bandwidth.transfer_time(req.bytes);
            let p = self.transfer_power(req.dir, false);
            self.meter.dwell("psm_transfer", p, transfer);
            request_energy += p * transfer;
            self.clock += transfer;
            // Remains in PSM.
        } else {
            if self.state == WnicState::Psm {
                self.meter
                    .transition("psm_to_cam", self.params.to_cam_energy);
                request_energy += self.params.to_cam_energy;
                let until = self.clock + self.params.to_cam_time;
                self.state = WnicState::ToCam(until);
                self.advance_to(until);
            }
            debug_assert_eq!(self.state, WnicState::Cam);

            // Round-trip to the server at CAM idle power.
            self.meter
                .dwell("cam_idle", self.params.cam_idle, self.params.latency);
            request_energy += self.params.cam_idle * self.params.latency;
            self.clock += self.params.latency;

            let transfer = self.params.bandwidth.transfer_time(req.bytes);
            let p = self.transfer_power(req.dir, true);
            self.meter.dwell("cam_transfer", p, transfer);
            request_energy += p * transfer;
            self.clock += transfer;
            self.idle_since = self.clock;
        }

        ServiceOutcome {
            complete: self.clock,
            service_time: self.clock.saturating_since(now),
            energy: request_energy,
        }
    }

    fn estimate(&self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        let mut probe = self.clone();
        probe.service(now, req)
    }

    fn energy(&self) -> Joules {
        self.meter.total()
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn is_ready(&self) -> bool {
        matches!(self.state, WnicState::Cam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::Bytes;

    fn wnic() -> WnicModel {
        WnicModel::new(WnicParams::cisco_aironet350())
    }

    const EPS: f64 = 1e-6;

    #[test]
    fn table2_constants() {
        let p = WnicParams::cisco_aironet350();
        assert_eq!(p.psm_idle, Watts(0.39));
        assert_eq!(p.psm_recv, Watts(1.42));
        assert_eq!(p.psm_send, Watts(2.48));
        assert_eq!(p.cam_idle, Watts(1.41));
        assert_eq!(p.cam_recv, Watts(2.61));
        assert_eq!(p.cam_send, Watts(3.69));
        assert_eq!(p.to_psm_time, Dur::from_millis(410));
        assert_eq!(p.to_psm_energy, Joules(0.53));
        assert_eq!(p.to_cam_time, Dur::from_millis(400));
        assert_eq!(p.to_cam_energy, Joules(0.51));
        assert_eq!(p.psm_timeout, Dur::from_millis(800));
    }

    #[test]
    fn psm_idle_energy_integrates() {
        let mut w = wnic();
        w.advance_to(SimTime::from_secs(100));
        assert!((w.energy().get() - 39.0).abs() < EPS); // 0.39 W × 100 s
        assert_eq!(w.state(), WnicState::Psm);
    }

    #[test]
    fn cam_times_out_to_psm() {
        let mut w = WnicModel::new_cam(WnicParams::cisco_aironet350());
        w.advance_to(SimTime::from_secs(10));
        assert_eq!(w.state(), WnicState::Psm);
        // 0.8 s CAM idle + switch 0.53 J + (10 − 0.8 − 0.41) s PSM.
        let expect = 1.41 * 0.8 + 0.53 + 0.39 * (10.0 - 0.8 - 0.41);
        assert!((w.energy().get() - expect).abs() < EPS, "{}", w.energy());
        assert_eq!(w.meter().transition_count("cam_to_psm"), 1);
    }

    #[test]
    fn large_request_from_psm_pays_wakeup() {
        let mut w = wnic();
        let out = w.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        // 0.4 s switch + 1 ms latency + 64 KiB at 11 Mbps (~47.7 ms).
        assert!(out.service_time >= Dur::from_millis(440));
        assert!(
            out.service_time < Dur::from_millis(460),
            "{}",
            out.service_time
        );
        assert!(out.energy.get() > 0.51);
        assert_eq!(w.state(), WnicState::Cam);
        assert_eq!(w.meter().transition_count("psm_to_cam"), 1);
    }

    #[test]
    fn single_packet_served_in_psm() {
        let mut w = wnic();
        let out = w.service(SimTime::ZERO, &DeviceRequest::read(Bytes(1200), None));
        assert_eq!(w.state(), WnicState::Psm, "stays in PSM for one packet");
        assert_eq!(w.meter().transition_count("psm_to_cam"), 0);
        // Waits up to half a beacon (50 ms) + latency + ~0.9 ms transfer.
        assert!(out.service_time >= Dur::from_millis(50));
        assert!(out.service_time < Dur::from_millis(60));
    }

    #[test]
    fn back_to_back_requests_stay_in_cam() {
        let mut w = wnic();
        let a = w.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        let b = w.service(
            a.complete + Dur::from_millis(100),
            &DeviceRequest::read(Bytes::kib(64), None),
        );
        assert_eq!(
            w.meter().transition_count("psm_to_cam"),
            1,
            "only the first pays"
        );
        assert!(b.service_time < Dur::from_millis(60));
    }

    #[test]
    fn sparse_requests_thrash_modes() {
        let mut w = wnic();
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            let out = w.service(t, &DeviceRequest::read(Bytes::kib(64), None));
            t = out.complete + Dur::from_secs(3); // far beyond the 800 ms timeout
        }
        w.advance_to(t); // let the final CAM stretch time out too
        assert_eq!(w.meter().transition_count("psm_to_cam"), 5);
        assert_eq!(w.meter().transition_count("cam_to_psm"), 5);
    }

    #[test]
    fn write_draws_send_power() {
        let w = wnic();
        let r = w.estimate(SimTime::ZERO, &DeviceRequest::read(Bytes::mib(1), None));
        let wr = w.estimate(SimTime::ZERO, &DeviceRequest::write(Bytes::mib(1), None));
        assert!(
            wr.energy > r.energy,
            "send (3.69 W) must beat recv (2.61 W)"
        );
        assert_eq!(wr.service_time, r.service_time);
    }

    #[test]
    fn bandwidth_sweep_changes_transfer_time() {
        for (mbps, secs) in [(1.0, 8.0), (2.0, 4.0), (5.5, 1.4545), (11.0, 0.7273)] {
            let p = WnicParams::cisco_aironet350().with_bandwidth_mbps(mbps);
            let mut w = WnicModel::new_cam(p);
            let out = w.service(SimTime::ZERO, &DeviceRequest::read(Bytes::mib(1), None));
            let expect = 1024.0 * 1024.0 * 8.0 / (mbps * 1e6) + 0.001;
            assert!(
                (out.service_time.as_secs_f64() - expect).abs() < 0.01,
                "{mbps} Mbps: {} vs {secs}",
                out.service_time
            );
        }
    }

    #[test]
    fn latency_sweep_dwells_at_idle_power() {
        let p = WnicParams::cisco_aironet350().with_latency(Dur::from_millis(30));
        let mut w = WnicModel::new_cam(p);
        let out = w.service(SimTime::ZERO, &DeviceRequest::read(Bytes(2000), None));
        assert!(out.service_time >= Dur::from_millis(30));
        // Latency energy = 1.41 W × 30 ms = 42.3 mJ, present in the total.
        assert!(out.energy.get() > 0.0423);
    }

    #[test]
    fn request_during_switch_waits() {
        let mut w = WnicModel::new_cam(WnicParams::cisco_aironet350());
        // Idle past the timeout so a CAM→PSM switch is in flight at 1 s.
        w.advance_to(SimTime::from_millis(1_000));
        assert!(matches!(w.state(), WnicState::ToPsm(_)));
        let out = w.service(
            SimTime::from_millis(1_000),
            &DeviceRequest::read(Bytes::kib(64), None),
        );
        // Finish ToPsm (ends at 1.21 s), then PSM→CAM 0.4 s, then serve.
        assert!(out.service_time >= Dur::from_millis(610));
    }

    #[test]
    fn estimate_does_not_mutate() {
        let w = wnic();
        let e1 = w.estimate(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        let e2 = w.estimate(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        assert_eq!(e1, e2);
        assert_eq!(w.energy(), Joules::ZERO);
    }

    #[test]
    fn link_flag_is_orthogonal_to_power_state() {
        let mut w = wnic();
        assert!(w.link_is_up(), "a fresh card is associated");
        w.set_link_up(false);
        assert!(!w.link_is_up());
        // The power machine keeps integrating idle energy regardless.
        w.advance_to(SimTime::from_secs(10));
        assert_eq!(w.state(), WnicState::Psm);
        assert!(w.energy().get() > 0.0);
        w.set_link_up(true);
        assert!(w.link_is_up());
    }

    #[test]
    fn is_ready_means_cam() {
        let mut w = wnic();
        assert!(!w.is_ready());
        w.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        assert!(w.is_ready());
    }
}
