//! Flash-memory model (extension).
//!
//! §4 positions flash-based energy savers (SmartSaver \[2\], Marsh et
//! al. \[13\]) as *complementary* to FlexFetch: a low-power flash tier
//! absorbs I/O so the disk can stay in standby longer. This model is a
//! 2007-era CompactFlash card: no mechanical states, microsecond access,
//! modest bandwidth, and power two orders of magnitude below the disk.
//!
//! Flash implements the same [`PowerModel`] contract as the disk and the
//! WNIC, so the simulator meters it identically.

use crate::meter::StateMeter;
use crate::model::{DeviceRequest, Dir, PowerModel, ServiceOutcome};
use ff_base::{BytesPerSec, Dur, Joules, SimTime, Watts};

/// Flash device constants. Defaults model a 2007 CompactFlash card
/// (the SmartSaver substrate).
#[derive(Debug, Clone, PartialEq)]
pub struct FlashParams {
    /// Power while reading.
    pub read_power: Watts,
    /// Power while writing (programming is costlier than sensing).
    pub write_power: Watts,
    /// Quiescent power (effectively negligible).
    pub idle_power: Watts,
    /// Sequential read bandwidth.
    pub read_bw: BytesPerSec,
    /// Program (write) bandwidth.
    pub write_bw: BytesPerSec,
    /// Per-request access latency (controller + addressing).
    pub access: Dur,
}

impl FlashParams {
    /// A 2007-class CompactFlash card: ~20 MB/s reads, ~10 MB/s writes,
    /// ~0.17 W sensing / 0.25 W programming, 10 mW idle, 0.1 ms access.
    pub fn compact_flash_2007() -> Self {
        FlashParams {
            read_power: Watts(0.17),
            write_power: Watts(0.25),
            idle_power: Watts(0.01),
            read_bw: BytesPerSec::from_mb_per_sec(20.0),
            write_bw: BytesPerSec::from_mb_per_sec(10.0),
            access: Dur::from_micros(100),
        }
    }
}

impl Default for FlashParams {
    fn default() -> Self {
        FlashParams::compact_flash_2007()
    }
}

/// The live flash model: a single always-ready state.
#[derive(Debug, Clone)]
pub struct FlashModel {
    params: FlashParams,
    clock: SimTime,
    meter: StateMeter,
}

impl FlashModel {
    /// New card, idle at t = 0.
    pub fn new(params: FlashParams) -> Self {
        FlashModel {
            params,
            clock: SimTime::ZERO,
            meter: StateMeter::new(),
        }
    }

    /// The configured constants.
    pub fn params(&self) -> &FlashParams {
        &self.params
    }

    /// Per-state meter.
    pub fn meter(&self) -> &StateMeter {
        &self.meter
    }

    /// Record a chronological power log.
    pub fn enable_power_log(&mut self) {
        self.meter.enable_log();
    }

    /// Record timestamped state changes for the observability recorder
    /// (see [`StateMeter::enable_state_log`]).
    pub fn enable_state_log(&mut self) {
        self.meter.enable_state_log(self.clock);
    }

    /// Drain state changes recorded since the last drain (see
    /// [`StateMeter::take_state_changes`]).
    pub fn take_state_changes(&mut self) -> Vec<crate::meter::StateChange> {
        self.meter.take_state_changes()
    }
}

impl PowerModel for FlashModel {
    fn advance_to(&mut self, now: SimTime) {
        if now > self.clock {
            self.meter
                .dwell("flash_idle", self.params.idle_power, now - self.clock);
            self.clock = now;
        }
    }

    fn service(&mut self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        let arrival = now.max(self.clock);
        self.advance_to(arrival);
        let (bw, power, state) = match req.dir {
            Dir::Read => (self.params.read_bw, self.params.read_power, "flash_read"),
            Dir::Write => (self.params.write_bw, self.params.write_power, "flash_write"),
        };
        let svc = self.params.access + bw.transfer_time(req.bytes);
        self.meter.dwell(state, power, svc);
        self.clock += svc;
        ServiceOutcome {
            complete: self.clock,
            service_time: self.clock.saturating_since(now),
            energy: power * svc,
        }
    }

    fn estimate(&self, now: SimTime, req: &DeviceRequest) -> ServiceOutcome {
        let mut probe = self.clone();
        probe.service(now, req)
    }

    fn energy(&self) -> Joules {
        self.meter.total()
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn is_ready(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::Bytes;

    #[test]
    fn read_is_orders_cheaper_than_disk() {
        let mut f = FlashModel::new(FlashParams::compact_flash_2007());
        let out = f.service(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        // 0.1 ms + 64 KiB / 20 MB/s ≈ 3.4 ms at 0.17 W ≈ 0.6 mJ.
        assert!(out.service_time < Dur::from_millis(4));
        assert!(out.energy.get() < 0.001, "{}", out.energy);
        assert!(f.is_ready());
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let f = FlashModel::new(FlashParams::compact_flash_2007());
        let r = f.estimate(SimTime::ZERO, &DeviceRequest::read(Bytes::kib(64), None));
        let w = f.estimate(SimTime::ZERO, &DeviceRequest::write(Bytes::kib(64), None));
        assert!(w.energy > r.energy);
        assert!(w.service_time > r.service_time);
    }

    #[test]
    fn idle_draw_is_tiny() {
        let mut f = FlashModel::new(FlashParams::compact_flash_2007());
        f.advance_to(SimTime::from_secs(1000));
        assert!((f.energy().get() - 10.0).abs() < 1e-9); // 0.01 W × 1000 s
    }

    #[test]
    fn queues_like_other_devices() {
        let mut f = FlashModel::new(FlashParams::compact_flash_2007());
        let a = f.service(SimTime::ZERO, &DeviceRequest::read(Bytes::mib(1), None));
        let b = f.service(SimTime::ZERO, &DeviceRequest::read(Bytes(4096), None));
        assert!(b.complete > a.complete);
    }

    #[test]
    fn time_and_energy_fully_attributed() {
        let mut f = FlashModel::new(FlashParams::compact_flash_2007());
        f.service(
            SimTime::from_secs(1),
            &DeviceRequest::write(Bytes::kib(128), None),
        );
        f.advance_to(SimTime::from_secs(10));
        let m = f.meter();
        let metered: u64 = m.residencies().map(|(_, d, _)| d.as_micros()).sum();
        assert_eq!(metered, f.clock().as_micros());
        let parts: f64 = m.residencies().map(|(_, _, e)| e.get()).sum();
        assert!((parts - m.total().get()).abs() < 1e-9);
    }
}
