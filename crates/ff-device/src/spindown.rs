//! Spin-down timeout algorithms and their competitive analysis.
//!
//! §4 surveys the disk spin-down literature the FlexFetch simulator sits
//! on: fixed timeouts (Douglis et al. \[6\]) and adaptive ones (Helmbold
//! et al. \[7\], the *share* algorithm). This module implements both over
//! streams of idle-period lengths, plus the offline oracle, so the
//! repository can reproduce the classic results those papers establish:
//!
//! * a fixed timeout equal to the break-even time is **2-competitive**
//!   with the oracle;
//! * the share algorithm tracks the best timeout in hindsight when idle
//!   periods are drifting.
//!
//! The `spindown` experiment binary runs these on idle periods extracted
//! from the Table 3 workloads.

use crate::disk::DiskParams;
use ff_base::{Dur, Joules};

/// Energy consumed over one idle period of length `idle` if the disk
/// spins down after `timeout` of it (and must be spun back up at the end
/// for the next request).
///
/// * `idle < timeout` — the disk idles the whole period: `P_idle × idle`.
/// * otherwise — idle until the timeout, then pay the spin-down, sit in
///   standby, and pay the spin-up for the next request. (Transition
///   *time* overlaps the idle period; like the main model we book
///   transition energy as lump sums.)
pub fn period_energy(params: &DiskParams, idle: Dur, timeout: Dur) -> Joules {
    if idle < timeout {
        params.idle_power * idle
    } else {
        let standby = idle
            .saturating_sub(timeout)
            .saturating_sub(params.spindown_time)
            .saturating_sub(params.spinup_time);
        params.idle_power * timeout
            + params.spindown_energy
            + params.standby_power * standby
            + params.spinup_energy
    }
}

/// The offline oracle: for each idle period, the better of "never spin
/// down" and "spin down immediately".
pub fn oracle_energy(params: &DiskParams, idles: &[Dur]) -> Joules {
    idles
        .iter()
        .map(|&idle| {
            let stay = params.idle_power * idle;
            let park = period_energy(params, idle, Dur::ZERO);
            stay.min(park)
        })
        .sum()
}

/// Total energy of a fixed-timeout policy over an idle-period stream.
pub fn fixed_timeout_energy(params: &DiskParams, idles: &[Dur], timeout: Dur) -> Joules {
    idles
        .iter()
        .map(|&idle| period_energy(params, idle, timeout))
        .sum()
}

/// Helmbold et al.'s share-style adaptive timeout: a panel of expert
/// timeouts, each weighted by how much energy it would have cost on past
/// idle periods; the acted timeout is the weighted average. Weights decay
/// multiplicatively with per-period loss and are periodically
/// renormalised with a share step so discredited experts can recover
/// (tracking a *drifting* best timeout).
#[derive(Debug, Clone)]
pub struct ShareSpindown {
    params: DiskParams,
    experts: Vec<Dur>,
    weights: Vec<f64>,
    /// Learning rate for the multiplicative update.
    eta: f64,
    /// Share fraction redistributed each round.
    alpha: f64,
}

impl ShareSpindown {
    /// Panel of `n` timeouts log-spaced between `lo` and `hi`.
    pub fn new(params: DiskParams, lo: Dur, hi: Dur, n: usize) -> Self {
        assert!(n >= 2, "need at least two experts");
        assert!(lo < hi && lo > Dur::ZERO);
        let (l, h) = (lo.as_secs_f64().ln(), hi.as_secs_f64().ln());
        let experts: Vec<Dur> = (0..n)
            .map(|i| {
                let x = l + (h - l) * i as f64 / (n - 1) as f64;
                Dur::from_secs_f64(x.exp())
            })
            .collect();
        ShareSpindown {
            params,
            experts,
            weights: vec![1.0; n],
            eta: 0.4,
            alpha: 0.08,
        }
    }

    /// Default panel for the DK23DA: 16 timeouts from 0.5 s to 60 s.
    pub fn for_disk(params: DiskParams) -> Self {
        ShareSpindown::new(params, Dur::from_millis(500), Dur::from_secs(60), 16)
    }

    /// The timeout the algorithm would act with right now (weighted mean).
    pub fn current_timeout(&self) -> Dur {
        let wsum: f64 = self.weights.iter().sum();
        let mean = self
            .experts
            .iter()
            .zip(&self.weights)
            .map(|(t, w)| t.as_secs_f64() * w)
            .sum::<f64>()
            / wsum;
        Dur::from_secs_f64(mean)
    }

    /// Observe one completed idle period: charge the acted timeout,
    /// update expert weights by their would-have-been losses.
    /// Returns the energy this period actually cost.
    pub fn observe(&mut self, idle: Dur) -> Joules {
        let acted = self.current_timeout();
        let cost = period_energy(&self.params, idle, acted);

        // Normalised losses in [0, 1]: expert loss relative to the worst
        // possible (always-idle at P_idle for the whole period, plus a
        // full transition pair).
        let worst = (self.params.idle_power * idle).get()
            + self.params.spindown_energy.get()
            + self.params.spinup_energy.get();
        for (i, &t) in self.experts.iter().enumerate() {
            let loss = period_energy(&self.params, idle, t).get() / worst;
            self.weights[i] *= (-self.eta * loss).exp();
        }
        // Share step: pool a fraction of all weight and spread it evenly,
        // keeping every expert revivable.
        let pool: f64 = self.weights.iter().map(|w| w * self.alpha).sum();
        let n = self.weights.len() as f64;
        for w in &mut self.weights {
            *w = *w * (1.0 - self.alpha) + pool / n;
        }
        // Renormalise to dodge underflow on long streams.
        let wsum: f64 = self.weights.iter().sum();
        for w in &mut self.weights {
            *w /= wsum;
        }
        cost
    }

    /// Run over a whole idle stream, returning the total energy.
    pub fn run(&mut self, idles: &[Dur]) -> Joules {
        idles.iter().map(|&i| self.observe(i)).sum()
    }
}

/// Extract the disk-relevant idle periods (gaps between consecutive
/// request completions and next arrivals) from a trace, for feeding the
/// algorithms above.
pub fn idle_periods(
    records: impl Iterator<Item = (ff_base::SimTime, ff_base::SimTime)>,
) -> Vec<Dur> {
    let mut out = Vec::new();
    let mut prev_end: Option<ff_base::SimTime> = None;
    for (start, end) in records {
        if let Some(pe) = prev_end {
            let gap = start.saturating_since(pe);
            if !gap.is_zero() {
                out.push(gap);
            }
        }
        prev_end = Some(end.max(prev_end.unwrap_or(end)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::SimTime;

    fn p() -> DiskParams {
        DiskParams::hitachi_dk23da()
    }

    #[test]
    fn short_period_is_pure_idle() {
        let e = period_energy(&p(), Dur::from_secs(5), Dur::from_secs(20));
        assert!((e.get() - 8.0).abs() < 1e-9); // 1.6 W × 5 s
    }

    #[test]
    fn long_period_pays_transitions_then_standby() {
        // 100 s idle, 20 s timeout: 32 J idle + 2.94 + 5 + standby
        // (100−20−2.3−1.6) × 0.15 = 11.415.
        let e = period_energy(&p(), Dur::from_secs(100), Dur::from_secs(20));
        let expect = 32.0 + 2.94 + 5.0 + (100.0 - 23.9) * 0.15;
        assert!((e.get() - expect).abs() < 1e-9, "{e}");
    }

    #[test]
    fn oracle_picks_min_per_period() {
        let idles = [Dur::from_secs(2), Dur::from_secs(100)];
        let e = oracle_energy(&p(), &idles);
        // 2 s: stay (3.2 J) beats park (7.94 + standby). 100 s: park.
        let park_100 = period_energy(&p(), Dur::from_secs(100), Dur::ZERO);
        assert!((e.get() - (3.2 + park_100.get())).abs() < 1e-9);
    }

    #[test]
    fn break_even_timeout_is_2_competitive() {
        // The classic ski-rental bound, checked on adversarial streams.
        let params = p();
        let be = params.break_even();
        let streams: Vec<Vec<Dur>> = vec![
            // Just past break-even — the adversary's favourite.
            vec![be + Dur::from_millis(1); 50],
            // Alternating short/long.
            (0..60)
                .map(|i| {
                    if i % 2 == 0 {
                        Dur::from_secs(1)
                    } else {
                        Dur::from_secs(90)
                    }
                })
                .collect(),
            // All long.
            vec![Dur::from_secs(300); 20],
            // All short.
            vec![Dur::from_millis(400); 200],
        ];
        for idles in &streams {
            let fixed = fixed_timeout_energy(&params, idles, be);
            let oracle = oracle_energy(&params, idles);
            assert!(
                fixed.get() <= 2.0 * oracle.get() + 1e-6,
                "fixed@break-even {fixed} > 2 × oracle {oracle}"
            );
        }
    }

    #[test]
    fn zero_timeout_is_terrible_for_short_periods() {
        let idles = vec![Dur::from_secs(1); 100];
        let eager = fixed_timeout_energy(&p(), &idles, Dur::ZERO);
        let patient = fixed_timeout_energy(&p(), &idles, Dur::from_secs(20));
        assert!(eager.get() > 3.0 * patient.get(), "{eager} vs {patient}");
    }

    #[test]
    fn share_tracks_the_better_regime() {
        let params = p();
        // Phase 1: long periods (should learn to park fast);
        // Phase 2: short periods (should learn to stay spinning).
        let mut idles = vec![Dur::from_secs(120); 80];
        idles.extend(vec![Dur::from_secs(2); 300]);

        let mut share = ShareSpindown::for_disk(params.clone());
        let adaptive = share.run(&idles);

        // Compare against the best FIXED timeout in hindsight.
        let candidates: Vec<Dur> = (0..40).map(|i| Dur::from_millis(500 + i * 1_500)).collect();
        let best_fixed = candidates
            .iter()
            .map(|&t| fixed_timeout_energy(&params, &idles, t).get())
            .fold(f64::INFINITY, f64::min);

        assert!(
            adaptive.get() <= best_fixed * 1.25,
            "share {adaptive} far above best fixed {best_fixed}"
        );
        // And after the short phase, its acted timeout has grown past the
        // break-even (it stopped parking eagerly).
        assert!(share.current_timeout() > params.break_even() / 2);
    }

    #[test]
    fn share_timeout_stays_in_panel_range() {
        let mut share = ShareSpindown::for_disk(p());
        for i in 0..500 {
            share.observe(Dur::from_millis(100 + (i % 50) * 1000));
            let t = share.current_timeout();
            assert!(t >= Dur::from_millis(500) && t <= Dur::from_secs(60));
        }
    }

    #[test]
    fn idle_periods_from_records() {
        let recs = vec![
            (SimTime::from_secs(0), SimTime::from_secs(1)),
            (SimTime::from_secs(5), SimTime::from_secs(6)), // gap 4 s
            (SimTime::from_secs(6), SimTime::from_secs(7)), // gap 0 — skipped
            (SimTime::from_secs(30), SimTime::from_secs(31)), // gap 23 s
        ];
        let idles = idle_periods(recs.into_iter());
        assert_eq!(idles, vec![Dur::from_secs(4), Dur::from_secs(23)]);
    }

    #[test]
    #[should_panic(expected = "at least two experts")]
    fn share_needs_experts() {
        ShareSpindown::new(p(), Dur::from_secs(1), Dur::from_secs(2), 1);
    }
}
