//! # ff-cache — the buffer-cache substrate
//!
//! §3.1: *"It simulates the management of two storage devices … and the
//! buffer cache in the memory. The simulator emulates the policies used
//! for Linux buffer cache management, including the 2Q-like page
//! replacement algorithm, the two-window readahead policy that prefetches
//! up to 32 pages, the C-SCAN I/O request scheduling mechanism, and the
//! asynchronous write-back scheme. We also simulate the policies adopted
//! in the Linux laptop mode, such as eager writing back dirty blocks to
//! active disks and delaying write-back to disks in the standby mode."*
//!
//! Modules:
//!
//! * [`twoq`] — the 2Q-like replacement algorithm (A1in FIFO, A1out
//!   ghost queue, Am LRU).
//! * [`readahead`] — Linux 2.6 two-window readahead, window doubling up
//!   to 32 pages (128 KiB).
//! * [`cscan`] — the C-SCAN elevator with contiguous-request merging.
//! * [`writeback`] — dirty-page aging plus the laptop-mode eager/deferred
//!   flush rules.
//! * [`cache`] — the [`BufferCache`] front end the replayer calls;
//!   returns page-granular miss ranges so hits never reach a device
//!   (needed for FlexFetch's §2.3.2 cache filtering).

//! ```
//! use ff_base::{Bytes, SimTime};
//! use ff_cache::{BufferCache, CacheConfig};
//! use ff_trace::FileId;
//!
//! let mut cache = BufferCache::new(CacheConfig::default());
//! let file = FileId(7);
//! let size = Bytes::mib(1);
//! // Cold read misses; the re-read hits without touching a device.
//! let cold = cache.read(SimTime::ZERO, file, 0, Bytes::kib(64), size);
//! assert!(!cold.fully_hit());
//! let warm = cache.read(SimTime::ZERO, file, 0, Bytes::kib(64), size);
//! assert!(warm.fully_hit());
//! ```

pub mod cache;
pub mod cscan;
pub mod flashcache;
pub mod page;
pub mod readahead;
pub mod twoq;
pub mod writeback;

pub use cache::{BufferCache, CacheConfig, CacheStats, ReadOutcome, WriteOutcome};
pub use cscan::CScanQueue;
pub use flashcache::FlashCache;
pub use page::PageKey;
pub use readahead::Readahead;
pub use twoq::{Access, TwoQ};
pub use writeback::{Writeback, WritebackConfig};
