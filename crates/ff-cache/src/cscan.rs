//! C-SCAN request scheduling with contiguous merging.
//!
//! §3.1: the simulator emulates *"the C-SCAN I/O request scheduling
//! mechanism"*; §2.1 notes that schedulers *"re-arrange pending requests
//! and merge requests for contiguous data blocks"*. The elevator sweeps
//! block addresses in one direction only: it dispatches the lowest-
//! addressed pending request at or above the head position, and when the
//! sweep passes the highest request it jumps back to the lowest pending
//! address (the "circular" in C-SCAN).

use std::collections::BTreeMap;

/// One pending disk request in block units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// First block.
    pub start: u64,
    /// Number of blocks.
    pub blocks: u64,
    /// Opaque tag the caller uses to map completions back (request id).
    pub tag: u64,
}

impl BlockRequest {
    /// Exclusive end block.
    pub fn end(&self) -> u64 {
        self.start + self.blocks
    }
}

/// A C-SCAN elevator queue over block addresses.
#[derive(Debug, Clone, Default)]
pub struct CScanQueue {
    /// Pending requests keyed by start block (one per start; merges fold
    /// contiguous neighbours together).
    pending: BTreeMap<u64, BlockRequest>,
    /// Current head position (block address of the last dispatch end).
    head: u64,
}

impl CScanQueue {
    /// Empty queue with the head at block 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending (possibly merged) requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True iff nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Current head position.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Enqueue a request, merging with block-contiguous neighbours
    /// (front and back). Overlapping requests are merged conservatively
    /// into their union.
    pub fn push(&mut self, req: BlockRequest) {
        let mut start = req.start;
        let mut end = req.end();
        let tag = req.tag;

        // Merge with a predecessor that touches or overlaps us.
        if let Some((&pstart, prev)) = self.pending.range(..=start).next_back() {
            if prev.end() >= start {
                start = pstart;
                end = end.max(prev.end());
                self.pending.remove(&pstart);
            }
        }
        // Merge with successors we touch or overlap.
        while let Some((&nstart, next)) = self.pending.range(start..).next() {
            if nstart <= end {
                end = end.max(next.end());
                self.pending.remove(&nstart);
            } else {
                break;
            }
        }
        self.pending.insert(
            start,
            BlockRequest {
                start,
                blocks: end - start,
                tag,
            },
        );
    }

    /// Dispatch the next request per C-SCAN order: the lowest start at or
    /// above the head, wrapping to the lowest overall when the sweep is
    /// exhausted. Advances the head past the dispatched request.
    pub fn pop(&mut self) -> Option<BlockRequest> {
        let key = self
            .pending
            .range(self.head..)
            .next()
            .or_else(|| self.pending.iter().next())
            .map(|(&k, _)| k)?;
        let req = self.pending.remove(&key)?;
        self.head = req.end();
        Some(req)
    }

    /// Drain everything in dispatch order.
    pub fn drain_sweep(&mut self) -> Vec<BlockRequest> {
        let mut out = Vec::with_capacity(self.pending.len());
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(start: u64, blocks: u64) -> BlockRequest {
        BlockRequest {
            start,
            blocks,
            tag: start,
        }
    }

    #[test]
    fn dispatches_in_ascending_order_from_head() {
        let mut q = CScanQueue::new();
        q.push(req(50, 1));
        q.push(req(10, 1));
        q.push(req(90, 1));
        let order: Vec<u64> = q.drain_sweep().iter().map(|r| r.start).collect();
        assert_eq!(order, vec![10, 50, 90]);
    }

    #[test]
    fn wraps_around_like_cscan_not_scan() {
        let mut q = CScanQueue::new();
        q.push(req(50, 1));
        let first = q.pop().unwrap();
        assert_eq!(first.start, 50);
        // Head is now 51; a request below must wait for the wrap but is
        // still served (ascending from the bottom, not reversing).
        q.push(req(10, 1));
        q.push(req(60, 1));
        let order: Vec<u64> = q.drain_sweep().iter().map(|r| r.start).collect();
        assert_eq!(
            order,
            vec![60, 10],
            "C-SCAN serves upward first, then wraps to lowest"
        );
    }

    #[test]
    fn contiguous_requests_merge() {
        let mut q = CScanQueue::new();
        q.push(req(10, 5)); // 10..15
        q.push(req(15, 5)); // 15..20 — back-contiguous
        assert_eq!(q.len(), 1);
        let r = q.pop().unwrap();
        assert_eq!((r.start, r.blocks), (10, 10));
    }

    #[test]
    fn front_merge_works_too() {
        let mut q = CScanQueue::new();
        q.push(req(15, 5)); // 15..20
        q.push(req(10, 5)); // 10..15 — front-contiguous
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().start, 10);
    }

    #[test]
    fn overlapping_requests_take_the_union() {
        let mut q = CScanQueue::new();
        q.push(req(10, 10)); // 10..20
        q.push(req(15, 10)); // 15..25
        assert_eq!(q.len(), 1);
        let r = q.pop().unwrap();
        assert_eq!((r.start, r.end()), (10, 25));
    }

    #[test]
    fn merge_chain_across_several_pending() {
        let mut q = CScanQueue::new();
        q.push(req(10, 2));
        q.push(req(14, 2));
        q.push(req(18, 2));
        assert_eq!(q.len(), 3);
        // 12..18 touches all three.
        q.push(req(12, 6));
        assert_eq!(q.len(), 1);
        let r = q.pop().unwrap();
        assert_eq!((r.start, r.end()), (10, 20));
    }

    #[test]
    fn non_contiguous_stay_separate() {
        let mut q = CScanQueue::new();
        q.push(req(10, 2));
        q.push(req(20, 2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = CScanQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
