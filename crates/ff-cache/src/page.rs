//! Page identity.

use ff_base::size::PAGE_SIZE;
use ff_trace::FileId;

/// One 4 KiB page of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageKey {
    /// The file (inode).
    pub file: FileId,
    /// Page index within the file (offset / 4096).
    pub index: u64,
}

impl PageKey {
    /// Key of the page containing byte `offset` of `file`.
    pub fn containing(file: FileId, offset: u64) -> Self {
        PageKey {
            file,
            index: offset / PAGE_SIZE,
        }
    }

    /// Byte offset of the first byte of this page.
    pub fn byte_offset(&self) -> u64 {
        self.index * PAGE_SIZE
    }
}

/// Iterate the page indices covering `len` bytes at `offset`.
pub fn pages_covering(offset: u64, len: u64) -> std::ops::RangeInclusive<u64> {
    debug_assert!(len > 0);
    let first = offset / PAGE_SIZE;
    let last = (offset + len - 1) / PAGE_SIZE;
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_and_back() {
        let k = PageKey::containing(FileId(3), 10_000);
        assert_eq!(k.index, 2);
        assert_eq!(k.byte_offset(), 8192);
    }

    #[test]
    fn covering_ranges() {
        assert_eq!(pages_covering(0, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(pages_covering(0, 4096).collect::<Vec<_>>(), vec![0]);
        assert_eq!(pages_covering(0, 4097).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(pages_covering(4095, 2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(pages_covering(8192, 8192).collect::<Vec<_>>(), vec![2, 3]);
    }
}
