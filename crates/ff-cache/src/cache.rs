//! The buffer-cache front end.
//!
//! [`BufferCache`] is what the replayer talks to: application reads and
//! writes land here first, and only *misses* (plus readahead and
//! write-back traffic) ever reach a storage device — the prerequisite for
//! FlexFetch's cache-effect handling (§2.3.2).

use crate::page::{pages_covering, PageKey};
use crate::readahead::Readahead;
use crate::twoq::TwoQ;
use crate::writeback::{Writeback, WritebackConfig};
use ff_base::{Bytes, SimTime};
use ff_trace::FileId;

/// Buffer-cache tuning.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Resident capacity in 4 KiB pages (default 32768 = 128 MiB, a
    /// plausible 2007-laptop memory budget for page cache).
    pub capacity_pages: usize,
    /// Maximum readahead window in pages (paper/Linux: 32 = 128 KiB).
    pub readahead_max_pages: u64,
    /// Write-back behaviour.
    pub writeback: WritebackConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_pages: 32_768,
            readahead_max_pages: 32,
            writeback: WritebackConfig::default(),
        }
    }
}

/// What a read did at the cache level.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Pages found resident.
    pub hit_pages: u64,
    /// Demand misses as contiguous page runs `(first_page, n_pages)` —
    /// these must be fetched synchronously from a device.
    pub demand: Vec<(u64, u64)>,
    /// Readahead pages to fetch alongside (already counted resident).
    pub prefetch: Vec<(u64, u64)>,
    /// Dirty pages evicted to make room — must be written out.
    pub evicted_dirty: Vec<PageKey>,
}

impl ReadOutcome {
    /// Total pages that must be fetched (demand + prefetch).
    pub fn fetch_pages(&self) -> u64 {
        self.demand.iter().map(|&(_, n)| n).sum::<u64>()
            + self.prefetch.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// True iff every demand page was resident.
    pub fn fully_hit(&self) -> bool {
        self.demand.is_empty()
    }
}

/// What a write did at the cache level.
#[derive(Debug, Clone, Default)]
pub struct WriteOutcome {
    /// Dirty pages evicted to make room — must be written out now.
    pub evicted_dirty: Vec<PageKey>,
}

/// Lifetime activity counters, as sampled by [`BufferCache::stats`].
///
/// These are cumulative since construction; the observability layer
/// diffs successive samples to attribute activity to simulation stages.
///
/// ```
/// use ff_base::{Bytes, SimTime};
/// use ff_cache::{BufferCache, CacheConfig};
/// use ff_trace::FileId;
///
/// let mut c = BufferCache::new(CacheConfig::default());
/// c.read(SimTime::ZERO, FileId(1), 0, Bytes(4096), Bytes(40 * 4096));
/// let s = c.stats();
/// assert_eq!((s.hits, s.misses), (0, 1));
/// assert!(s.readahead_pages > 0, "sequential start should prefetch");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand pages found resident.
    pub hits: u64,
    /// Demand pages that required device I/O.
    pub misses: u64,
    /// Pages fetched speculatively by the readahead engine.
    pub readahead_pages: u64,
    /// Write-back flush rounds that produced at least one page.
    pub flushes: u64,
    /// Dirty pages pushed out by those flush rounds (including the
    /// final sync performed by [`BufferCache::flush_all`]).
    pub flushed_pages: u64,
}

/// The combined 2Q + readahead + write-back cache.
#[derive(Debug, Clone)]
pub struct BufferCache {
    twoq: TwoQ,
    readahead: Readahead,
    writeback: Writeback,
    hits: u64,
    misses: u64,
    readahead_pages: u64,
    flushes: u64,
    flushed_pages: u64,
}

impl BufferCache {
    /// Build from config.
    pub fn new(config: CacheConfig) -> Self {
        BufferCache {
            twoq: TwoQ::new(config.capacity_pages),
            readahead: Readahead::new(config.readahead_max_pages),
            writeback: Writeback::new(config.writeback),
            hits: 0,
            misses: 0,
            readahead_pages: 0,
            flushes: 0,
            flushed_pages: 0,
        }
    }

    /// Application read of `len` bytes at `offset` in `file` (whose total
    /// size is `file_size`). Returns hits, demand-miss runs, and the
    /// readahead to issue.
    pub fn read(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: Bytes,
        file_size: Bytes,
    ) -> ReadOutcome {
        let _ = now;
        let mut out = ReadOutcome::default();
        if len.is_zero() {
            return out;
        }
        let mut evicted = Vec::new();
        let pages = pages_covering(offset, len.get());
        let (first, last) = (*pages.start(), *pages.end());

        // Demand pages: classify hits vs misses, merging misses into runs.
        let mut run: Option<(u64, u64)> = None;
        for p in pages {
            let key = PageKey { file, index: p };
            let access = self.twoq.touch(key, &mut evicted);
            if access.is_hit() {
                self.hits += 1;
                out.hit_pages += 1;
                if let Some(r) = run.take() {
                    out.demand.push(r);
                }
            } else {
                self.misses += 1;
                match &mut run {
                    Some((_, n)) => *n += 1,
                    None => run = Some((p, 1)),
                }
            }
        }
        if let Some(r) = run.take() {
            out.demand.push(r);
        }

        // Readahead: ask the engine, clamp to the file, and make the
        // prefetched pages resident (they ride the same device I/O).
        if let Some((start, n)) = self.readahead.on_access(file, first, last) {
            let file_pages = file_size.pages();
            let mut pstart = None;
            let mut plen = 0;
            for p in start..start + n {
                if p >= file_pages {
                    break;
                }
                let key = PageKey { file, index: p };
                if !self.twoq.contains(key) {
                    self.twoq.touch(key, &mut evicted);
                    if pstart.is_none() {
                        pstart = Some(p);
                    }
                    plen += 1;
                } else if let Some(s) = pstart.take() {
                    out.prefetch.push((s, plen));
                    plen = 0;
                }
            }
            if let Some(s) = pstart {
                out.prefetch.push((s, plen));
            }
        }
        self.readahead_pages += out.prefetch.iter().map(|&(_, n)| n).sum::<u64>();
        out.evicted_dirty = evicted
            .into_iter()
            .filter(|k| self.writeback.on_evict(*k))
            .collect();
        out
    }

    /// Application write (write-allocate, dirty in cache).
    pub fn write(&mut self, now: SimTime, file: FileId, offset: u64, len: Bytes) -> WriteOutcome {
        let mut out = WriteOutcome::default();
        if len.is_zero() {
            return out;
        }
        let mut evicted = Vec::new();
        for p in pages_covering(offset, len.get()) {
            let key = PageKey { file, index: p };
            self.twoq.touch(key, &mut evicted);
            self.writeback.mark_dirty(key, now);
        }
        out.evicted_dirty = evicted
            .into_iter()
            .filter(|k| self.writeback.on_evict(*k))
            .collect();
        out
    }

    /// Run the flusher: dirty pages due for write-back at `now`, given
    /// the disk's spin state (laptop-mode rules).
    pub fn flush_due(&mut self, now: SimTime, disk_ready: bool) -> Vec<PageKey> {
        let due = self.writeback.collect_due(now, disk_ready);
        if !due.is_empty() {
            self.flushes += 1;
            self.flushed_pages += due.len() as u64;
        }
        due
    }

    /// Remaining dirty pages (final sync).
    pub fn flush_all(&mut self) -> Vec<PageKey> {
        let drained = self.writeback.drain_all();
        if !drained.is_empty() {
            self.flushes += 1;
            self.flushed_pages += drained.len() as u64;
        }
        drained
    }

    /// Fraction of the byte range currently resident, in [0, 1] — the
    /// §2.3.2 probe ("remove the requests on data that are resident").
    pub fn resident_fraction(&self, file: FileId, offset: u64, len: Bytes) -> f64 {
        if len.is_zero() {
            return 1.0;
        }
        let mut resident = 0u64;
        let mut total = 0u64;
        for p in pages_covering(offset, len.get()) {
            total += 1;
            if self.twoq.contains(PageKey { file, index: p }) {
                resident += 1;
            }
        }
        resident as f64 / total as f64
    }

    /// Lifetime hit/miss counters (demand pages only).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Full lifetime activity counters (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            readahead_pages: self.readahead_pages,
            flushes: self.flushes,
            flushed_pages: self.flushed_pages,
        }
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.twoq.resident()
    }

    /// Dirty page count.
    pub fn dirty(&self) -> usize {
        self.writeback.dirty_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(7);
    const SZ: Bytes = Bytes(100 * 4096);

    fn cache(pages: usize) -> BufferCache {
        BufferCache::new(CacheConfig {
            capacity_pages: pages,
            ..Default::default()
        })
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = cache(64);
        let out = c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        assert_eq!(out.hit_pages, 0);
        assert_eq!(out.demand, vec![(0, 1)]);
        let out = c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        assert!(out.fully_hit());
        assert_eq!(out.hit_pages, 1);
    }

    #[test]
    fn miss_runs_are_contiguous() {
        // Disable readahead so residency is exactly what we planted.
        let mut c = BufferCache::new(CacheConfig {
            capacity_pages: 64,
            readahead_max_pages: 0,
            ..Default::default()
        });
        // Pre-load page 2 so a 5-page read splits into two runs.
        c.read(SimTime::ZERO, F, 2 * 4096, Bytes(4096), SZ);
        let out = c.read(SimTime::ZERO, F, 0, Bytes(5 * 4096), SZ);
        assert_eq!(out.hit_pages, 1);
        assert_eq!(out.demand, vec![(0, 2), (3, 2)]);
    }

    #[test]
    fn readahead_makes_next_pages_resident() {
        let mut c = cache(256);
        let out = c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        assert!(!out.prefetch.is_empty(), "sequential start should prefetch");
        // The prefetched page hits without device I/O.
        let out2 = c.read(SimTime::ZERO, F, 4096, Bytes(4096), SZ);
        assert!(out2.fully_hit(), "page 1 was prefetched");
    }

    #[test]
    fn sequential_scan_mostly_hits_after_warmup() {
        let mut c = cache(256);
        let mut demand_pages = 0u64;
        for p in 0..100u64 {
            let out = c.read(SimTime::ZERO, F, p * 4096, Bytes(4096), SZ);
            demand_pages += out.demand.iter().map(|&(_, n)| n).sum::<u64>();
        }
        // Without readahead this would be 100; windows cut it drastically.
        assert!(
            demand_pages <= 10,
            "demand pages {demand_pages} — readahead inert"
        );
    }

    #[test]
    fn prefetch_clamps_at_eof() {
        let mut c = cache(256);
        let size = Bytes(3 * 4096);
        let out = c.read(SimTime::ZERO, F, 0, Bytes(4096), size);
        let total: u64 = out.prefetch.iter().map(|&(_, n)| n).sum();
        assert!(total <= 2, "prefetched past EOF: {total} pages");
    }

    #[test]
    fn writes_dirty_pages_and_flush_collects_them() {
        let mut c = cache(64);
        c.write(SimTime::ZERO, F, 0, Bytes(8192));
        assert_eq!(c.dirty(), 2);
        // Laptop mode + spinning disk → eager flush at the next wakeup.
        let due = c.flush_due(SimTime::from_secs(6), true);
        assert_eq!(due.len(), 2);
        assert_eq!(c.dirty(), 0);
    }

    #[test]
    fn eviction_of_dirty_page_is_reported() {
        let mut c = cache(4);
        c.write(SimTime::ZERO, F, 0, Bytes(4096));
        // Flood the tiny cache with reads to force the dirty page out.
        let mut reported = Vec::new();
        for p in 10..30u64 {
            let out = c.read(SimTime::ZERO, F, p * 4096, Bytes(4096), SZ);
            reported.extend(out.evicted_dirty);
        }
        assert!(
            reported.contains(&PageKey { file: F, index: 0 }),
            "dirty eviction lost — data-loss bug"
        );
    }

    #[test]
    fn resident_fraction_probe() {
        let mut c = cache(64);
        c.read(SimTime::ZERO, F, 0, Bytes(2 * 4096), SZ);
        assert!((c.resident_fraction(F, 0, Bytes(2 * 4096)) - 1.0).abs() < 1e-12);
        // Pages 0..2 resident (+ prefetch beyond); far range is cold.
        assert_eq!(c.resident_fraction(F, 90 * 4096, Bytes(4 * 4096)), 0.0);
        assert_eq!(c.resident_fraction(F, 0, Bytes::ZERO), 1.0);
    }

    #[test]
    fn hit_stats_accumulate() {
        let mut c = cache(64);
        c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        let (h, m) = c.hit_stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut c = cache(64);
        c.write(SimTime::ZERO, F, 0, Bytes(4 * 4096));
        assert_eq!(c.flush_all().len(), 4);
        assert_eq!(c.dirty(), 0);
    }

    #[test]
    fn written_pages_hit_on_subsequent_reads() {
        let mut c = cache(64);
        c.write(SimTime::ZERO, F, 0, Bytes(8192));
        let out = c.read(SimTime::ZERO, F, 0, Bytes(8192), SZ);
        assert!(out.fully_hit(), "write-allocated pages must be readable");
    }

    #[test]
    fn partial_page_write_then_read_of_full_page_hits() {
        // Write-allocate covers the whole page even for a partial write
        // (the simulator models residency, not byte validity — the page
        // would have been read-modify-written in a real kernel).
        let mut c = cache(64);
        c.write(SimTime::ZERO, F, 100, Bytes(50));
        let out = c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        assert!(out.fully_hit());
    }

    #[test]
    fn flusher_respects_wakeup_cadence_across_calls() {
        let mut c = cache(64);
        c.write(SimTime::ZERO, F, 0, Bytes(4096));
        // First wakeup at 6 s flushes (laptop mode, disk ready).
        assert_eq!(c.flush_due(SimTime::from_secs(6), true).len(), 1);
        c.write(SimTime::from_secs(7), F, 4096, Bytes(4096));
        // 2 s later: the flusher is still asleep.
        assert!(c.flush_due(SimTime::from_secs(8), true).is_empty());
        assert_eq!(c.dirty(), 1);
    }

    #[test]
    fn interleaved_files_keep_independent_readahead() {
        let mut c = cache(1024);
        let g = FileId(8);
        let mut demand = 0u64;
        for i in 0..20u64 {
            demand += c
                .read(SimTime::ZERO, F, i * 4096, Bytes(4096), SZ)
                .fetch_pages();
            demand += c
                .read(SimTime::ZERO, g, i * 4096, Bytes(4096), SZ)
                .fetch_pages();
        }
        // Both streams keep their readahead through the interleave: the
        // fetch total is dominated by the doubling windows (4+8+16+32 per
        // stream), not by per-call demand misses.
        assert!(
            demand <= 130,
            "interleaved streams broke readahead: {demand} pages"
        );
        let (h, m) = c.hit_stats();
        assert!(h > m, "most demand pages should hit ({h} vs {m})");
    }

    #[test]
    fn stats_track_readahead_and_flushes() {
        let mut c = cache(256);
        c.read(SimTime::ZERO, F, 0, Bytes(4096), SZ);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), c.hit_stats());
        assert!(s.readahead_pages > 0, "sequential start should prefetch");
        assert_eq!((s.flushes, s.flushed_pages), (0, 0));

        c.write(SimTime::ZERO, F, 50 * 4096, Bytes(2 * 4096));
        c.flush_due(SimTime::from_secs(6), true);
        let s = c.stats();
        assert_eq!((s.flushes, s.flushed_pages), (1, 2));
        // An empty flush round is not counted.
        c.flush_due(SimTime::from_secs(7), true);
        assert_eq!(c.stats().flushes, 1);
        c.write(SimTime::from_secs(8), F, 60 * 4096, Bytes(4096));
        c.flush_all();
        let s = c.stats();
        assert_eq!((s.flushes, s.flushed_pages), (2, 3));
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut c = cache(64);
        let r = c.read(SimTime::ZERO, F, 0, Bytes::ZERO, SZ);
        assert!(r.fully_hit());
        assert_eq!(r.fetch_pages(), 0);
        let w = c.write(SimTime::ZERO, F, 0, Bytes::ZERO);
        assert!(w.evicted_dirty.is_empty());
    }
}
