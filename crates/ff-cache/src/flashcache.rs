//! Flash cache tier (extension — §4's SmartSaver, simplified).
//!
//! Sits between the RAM buffer cache and the storage devices:
//!
//! * **read cache** — pages fetched from either device are copied into
//!   flash (LRU); later RAM misses that hit flash never touch the disk
//!   or the WNIC;
//! * **write buffer** — dirty pages destined for a *sleeping* disk are
//!   parked in flash instead of forcing a spin-up, and destaged in bulk
//!   once the disk is awake for other reasons.
//!
//! This type tracks *membership only* (like [`crate::twoq::TwoQ`]); the
//! simulator owns the flash device model and pays the transfer costs.

use crate::page::PageKey;
use std::collections::BTreeMap;

/// Page-granular LRU flash cache with a destage queue.
#[derive(Debug, Clone)]
pub struct FlashCache {
    capacity_pages: usize,
    /// LRU: seq → page; reverse index page → seq.
    lru: BTreeMap<u64, PageKey>,
    index: BTreeMap<PageKey, u64>,
    /// Pages buffered for destage to the disk (still resident in LRU).
    dirty: BTreeMap<PageKey, ()>,
    seq: u64,
    hits: u64,
    misses: u64,
}

impl FlashCache {
    /// Cache holding at most `capacity_pages` 4 KiB pages.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "flash capacity must be positive");
        FlashCache {
            capacity_pages,
            lru: BTreeMap::new(),
            index: BTreeMap::new(),
            dirty: BTreeMap::new(),
            seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.lru.len()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity_pages
    }

    /// Lifetime (hits, misses) of [`FlashCache::lookup`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Dirty (buffered-write) page count.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Is `page` resident? Refreshes LRU position and counts the probe.
    pub fn lookup(&mut self, page: PageKey) -> bool {
        if let Some(seq) = self.index.get(&page).copied() {
            self.lru.remove(&seq);
            self.seq += 1;
            self.lru.insert(self.seq, page);
            self.index.insert(page, self.seq);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert a clean page fetched from a device; returns evicted pages
    /// that were dirty (they must be written out before being dropped).
    pub fn insert_clean(&mut self, page: PageKey) -> Vec<PageKey> {
        self.insert(page, false)
    }

    /// Buffer a dirty page (a write aimed at a sleeping disk); returns
    /// evicted dirty pages.
    pub fn buffer_write(&mut self, page: PageKey) -> Vec<PageKey> {
        self.insert(page, true)
    }

    fn insert(&mut self, page: PageKey, dirty: bool) -> Vec<PageKey> {
        if let Some(seq) = self.index.get(&page).copied() {
            self.lru.remove(&seq);
        }
        self.seq += 1;
        self.lru.insert(self.seq, page);
        self.index.insert(page, self.seq);
        if dirty {
            self.dirty.insert(page, ());
        }
        let mut spilled = Vec::new();
        while self.lru.len() > self.capacity_pages {
            let Some((&seq, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&seq);
            self.index.remove(&victim);
            if self.dirty.remove(&victim).is_some() {
                spilled.push(victim);
            }
        }
        spilled
    }

    /// Drain the destage queue (the disk is awake): the pages remain
    /// cached but are clean afterwards.
    pub fn take_destage(&mut self) -> Vec<PageKey> {
        let pages: Vec<PageKey> = self.dirty.keys().copied().collect();
        self.dirty.clear();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::FileId;

    fn page(i: u64) -> PageKey {
        PageKey {
            file: FileId(1),
            index: i,
        }
    }

    #[test]
    fn lookup_after_insert_hits() {
        let mut f = FlashCache::new(8);
        assert!(!f.lookup(page(1)));
        f.insert_clean(page(1));
        assert!(f.lookup(page(1)));
        assert_eq!(f.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut f = FlashCache::new(3);
        for i in 0..3 {
            f.insert_clean(page(i));
        }
        f.lookup(page(0)); // refresh 0
        f.insert_clean(page(9)); // evicts 1 (coldest)
        assert!(f.lookup(page(0)));
        assert!(!f.lookup(page(1)));
        assert!(f.resident() <= 3);
    }

    #[test]
    fn dirty_eviction_is_surfaced() {
        let mut f = FlashCache::new(2);
        f.buffer_write(page(1));
        let spilled = f.insert_clean(page(2));
        assert!(spilled.is_empty());
        let spilled = f.insert_clean(page(3)); // evicts dirty page 1
        assert_eq!(spilled, vec![page(1)]);
        assert_eq!(f.dirty_count(), 0);
    }

    #[test]
    fn destage_clears_dirty_but_keeps_pages() {
        let mut f = FlashCache::new(8);
        f.buffer_write(page(1));
        f.buffer_write(page(2));
        let d = f.take_destage();
        assert_eq!(d.len(), 2);
        assert_eq!(f.dirty_count(), 0);
        assert!(f.lookup(page(1)), "destaged page remains cached");
    }

    #[test]
    fn reinsert_promotes_without_duplicating() {
        let mut f = FlashCache::new(4);
        f.insert_clean(page(1));
        f.insert_clean(page(1));
        assert_eq!(f.resident(), 1);
        // Dirty upgrade on rewrite.
        f.buffer_write(page(1));
        assert_eq!(f.dirty_count(), 1);
        assert_eq!(f.resident(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        FlashCache::new(0);
    }
}
