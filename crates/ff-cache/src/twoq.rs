//! The 2Q-like page replacement algorithm.
//!
//! The classic 2Q structure (Johnson & Shasha, VLDB'94) that Linux 2.4/2.6
//! approximated with its active/inactive lists:
//!
//! * **A1in** — a FIFO holding pages seen once, sized `Kin` (25 % of
//!   capacity).
//! * **A1out** — a *ghost* FIFO of keys recently evicted from A1in, sized
//!   `Kout` (50 % of capacity); holds no data.
//! * **Am** — an LRU holding pages re-referenced while in A1out.
//!
//! A first touch enters A1in; a touch while ghosted promotes to Am; a
//! touch in Am refreshes its LRU position. Eviction prefers A1in overflow
//! (to the ghost queue), then the LRU tail of Am.

use crate::page::PageKey;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Result of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page was resident (in A1in or Am).
    Hit,
    /// Page was only ghost-remembered; data must be fetched, and the page
    /// enters Am (it has proven re-reference).
    GhostMiss,
    /// Cold miss; data must be fetched, and the page enters A1in.
    Miss,
}

impl Access {
    /// Whether the data was resident.
    pub fn is_hit(self) -> bool {
        self == Access::Hit
    }
}

/// 2Q replacement state over page keys (data-less — residency only).
#[derive(Debug, Clone)]
pub struct TwoQ {
    capacity: usize,
    kin: usize,
    kout: usize,
    a1in: VecDeque<PageKey>,
    a1in_set: BTreeSet<PageKey>,
    a1out: VecDeque<PageKey>,
    a1out_set: BTreeSet<PageKey>,
    /// LRU: sequence number → key, plus reverse index.
    am: BTreeMap<u64, PageKey>,
    am_index: BTreeMap<PageKey, u64>,
    seq: u64,
}

impl TwoQ {
    /// New cache holding at most `capacity` resident pages.
    ///
    /// Uses the canonical tuning: `Kin` = 25 % of capacity, `Kout` = 50 %.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "2Q needs at least 4 pages");
        TwoQ {
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: VecDeque::new(),
            a1in_set: BTreeSet::new(),
            a1out: VecDeque::new(),
            a1out_set: BTreeSet::new(),
            am: BTreeMap::new(),
            am_index: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is the page resident (no state change)?
    pub fn contains(&self, key: PageKey) -> bool {
        self.a1in_set.contains(&key) || self.am_index.contains_key(&key)
    }

    /// Touch `key`; returns the access class and appends any evicted
    /// (previously resident) pages to `evicted`.
    pub fn touch(&mut self, key: PageKey, evicted: &mut Vec<PageKey>) -> Access {
        if self.am_index.contains_key(&key) {
            self.refresh_am(key);
            return Access::Hit;
        }
        if self.a1in_set.contains(&key) {
            // 2Q leaves A1in order alone on repeat touches.
            return Access::Hit;
        }
        if self.a1out_set.contains(&key) {
            self.remove_ghost(key);
            self.make_room(evicted);
            self.insert_am(key);
            return Access::GhostMiss;
        }
        self.make_room(evicted);
        self.a1in.push_back(key);
        self.a1in_set.insert(key);
        Access::Miss
    }

    /// Drop a page outright (e.g. file truncation); no ghost entry.
    pub fn discard(&mut self, key: PageKey) {
        if self.a1in_set.remove(&key) {
            self.a1in.retain(|k| *k != key);
        }
        if let Some(seq) = self.am_index.remove(&key) {
            self.am.remove(&seq);
        }
        self.remove_ghost(key);
    }

    /// Iterate resident pages (A1in then Am, oldest first) — used by the
    /// FlexFetch cache filter to ask "is this profiled data resident?".
    pub fn resident_pages(&self) -> impl Iterator<Item = PageKey> + '_ {
        self.a1in.iter().copied().chain(self.am.values().copied())
    }

    fn refresh_am(&mut self, key: PageKey) {
        let old = self.am_index[&key];
        self.am.remove(&old);
        self.seq += 1;
        self.am.insert(self.seq, key);
        self.am_index.insert(key, self.seq);
    }

    fn insert_am(&mut self, key: PageKey) {
        self.seq += 1;
        self.am.insert(self.seq, key);
        self.am_index.insert(key, self.seq);
    }

    fn remove_ghost(&mut self, key: PageKey) {
        if self.a1out_set.remove(&key) {
            self.a1out.retain(|k| *k != key);
        }
    }

    /// Ensure there is room for one more resident page.
    fn make_room(&mut self, evicted: &mut Vec<PageKey>) {
        if self.resident() < self.capacity {
            return;
        }
        // Prefer evicting from an over-full A1in into the ghost queue.
        if self.a1in.len() > self.kin {
            if let Some(victim) = self.a1in.pop_front() {
                self.a1in_set.remove(&victim);
                self.a1out.push_back(victim);
                self.a1out_set.insert(victim);
                if self.a1out.len() > self.kout {
                    if let Some(g) = self.a1out.pop_front() {
                        self.a1out_set.remove(&g);
                    }
                }
                evicted.push(victim);
                return;
            }
        }
        // Otherwise evict the Am LRU tail (no ghost for Am in classic 2Q).
        if let Some((&seq, &victim)) = self.am.iter().next() {
            self.am.remove(&seq);
            self.am_index.remove(&victim);
            evicted.push(victim);
        } else if let Some(victim) = self.a1in.pop_front() {
            // Degenerate: everything lives in A1in.
            self.a1in_set.remove(&victim);
            self.a1out.push_back(victim);
            self.a1out_set.insert(victim);
            if self.a1out.len() > self.kout {
                if let Some(g) = self.a1out.pop_front() {
                    self.a1out_set.remove(&g);
                }
            }
            evicted.push(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::FileId;

    fn key(i: u64) -> PageKey {
        PageKey {
            file: FileId(1),
            index: i,
        }
    }

    fn touch(q: &mut TwoQ, i: u64) -> Access {
        let mut ev = Vec::new();
        q.touch(key(i), &mut ev)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut q = TwoQ::new(8);
        assert_eq!(touch(&mut q, 1), Access::Miss);
        assert_eq!(touch(&mut q, 1), Access::Hit);
        assert_eq!(q.resident(), 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut q = TwoQ::new(8);
        let mut ev = Vec::new();
        for i in 0..100 {
            q.touch(key(i), &mut ev);
        }
        assert!(q.resident() <= 8);
        assert_eq!(ev.len(), 100 - q.resident());
    }

    #[test]
    fn ghost_promotion_goes_to_am() {
        let mut q = TwoQ::new(8); // kin = 2
        let mut ev = Vec::new();
        // Fill beyond capacity so page 0 falls out of A1in into the ghost.
        for i in 0..9 {
            q.touch(key(i), &mut ev);
        }
        assert!(!q.contains(key(0)), "page 0 must have been evicted");
        // Touch page 0 again: ghost hit → promoted to Am.
        assert_eq!(touch(&mut q, 0), Access::GhostMiss);
        assert!(q.contains(key(0)));
        // It is now protected: another sweep of one-timers must not evict
        // it before the A1in pages go.
        for i in 100..120 {
            q.touch(key(i), &mut ev);
        }
        assert!(q.contains(key(0)), "Am page evicted by scan — 2Q broken");
    }

    #[test]
    fn scan_resistance() {
        // The signature 2Q property: a huge one-shot scan must not flush
        // the hot set.
        let mut q = TwoQ::new(32);
        let mut ev = Vec::new();
        // Build a hot set in Am: touch, evict to ghost, re-touch.
        for i in 0..4 {
            q.touch(key(i), &mut ev);
        }
        for i in 1000..1040 {
            q.touch(key(i), &mut ev);
        }
        for i in 0..4 {
            q.touch(key(i), &mut ev); // ghost hits → Am
        }
        assert!((0..4).all(|i| q.contains(key(i))));
        // One-shot scan of 10 000 pages.
        for i in 2000..12_000 {
            q.touch(key(i), &mut ev);
        }
        let survivors = (0..4).filter(|&i| q.contains(key(i))).count();
        assert_eq!(survivors, 4, "hot set flushed by scan");
    }

    #[test]
    fn am_lru_order() {
        let mut q = TwoQ::new(8);
        let mut ev = Vec::new();
        // Get pages 0..3 into Am via the ghost path.
        for round in 0..2 {
            for i in 0..3 {
                q.touch(key(i), &mut ev);
            }
            if round == 0 {
                for i in 10..19 {
                    q.touch(key(i), &mut ev); // push 0..3 through A1in to ghosts
                }
            }
        }
        assert!((0..3).all(|i| q.contains(key(i))));
        // Refresh page 0; then force Am evictions and check 0 outlives 1.
        touch(&mut q, 0);
        ev.clear();
        for i in 20..40 {
            q.touch(key(i), &mut ev);
        }
        // Page 1 (LRU) must fall before page 0 (MRU).
        if !q.contains(key(1)) {
            assert!(q.contains(key(0)) || !q.contains(key(1)));
        }
    }

    #[test]
    fn discard_removes_everywhere() {
        let mut q = TwoQ::new(8);
        touch(&mut q, 1);
        q.discard(key(1));
        assert!(!q.contains(key(1)));
        assert_eq!(
            touch(&mut q, 1),
            Access::Miss,
            "discard must not leave a ghost"
        );
    }

    #[test]
    fn resident_pages_iterates_all() {
        let mut q = TwoQ::new(8);
        for i in 0..5 {
            touch(&mut q, i);
        }
        let pages: Vec<_> = q.resident_pages().collect();
        assert_eq!(pages.len(), q.resident());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_capacity_rejected() {
        TwoQ::new(2);
    }

    #[test]
    fn repeat_touch_in_a1in_is_hit_but_no_promotion() {
        let mut q = TwoQ::new(8);
        touch(&mut q, 1);
        assert_eq!(touch(&mut q, 1), Access::Hit);
        // Correlated references inside A1in do not count as re-reference:
        // push it out and verify it ghosts rather than being in Am.
        let mut ev = Vec::new();
        for i in 10..19 {
            q.touch(key(i), &mut ev);
        }
        assert!(!q.contains(key(1)), "A1in page survived as if promoted");
    }
}
