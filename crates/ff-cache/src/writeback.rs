//! Asynchronous write-back with Linux laptop-mode rules.
//!
//! Normal kernel behaviour: dirty pages age in memory and a flusher
//! thread writes back pages older than `dirty_expire` on a
//! `wakeup_interval` cadence. Laptop mode changes the triggers (§3.1,
//! laptop-mode.txt):
//!
//! * **eager flush** — when the disk is already spinning because of a
//!   read, flush *all* dirty pages while it is awake, so the write-back
//!   does not force a later spin-up of its own;
//! * **deferred flush** — while the disk is in standby, let dirty pages
//!   age up to `laptop_max_age` (minutes, not seconds) before forcing a
//!   spin-up.

use crate::page::PageKey;
use ff_base::{Dur, SimTime};
use std::collections::BTreeMap;

/// Write-back tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritebackConfig {
    /// Age at which a dirty page must be written back under normal
    /// (non-laptop) rules (Linux `dirty_expire_centisecs` = 30 s).
    pub dirty_expire: Dur,
    /// Flusher wake-up cadence (Linux: 5 s).
    pub wakeup_interval: Dur,
    /// Laptop-mode: maximum dirty age while the disk sleeps (we use
    /// 10 min, laptop-mode.txt's suggested `MAX_LOST_WORK_SECONDS` scale).
    pub laptop_max_age: Dur,
    /// Laptop-mode master switch.
    pub laptop_mode: bool,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig {
            dirty_expire: Dur::from_secs(30),
            wakeup_interval: Dur::from_secs(5),
            laptop_max_age: Dur::from_secs(600),
            laptop_mode: true,
        }
    }
}

/// Dirty-page registry.
#[derive(Debug, Clone, Default)]
pub struct Writeback {
    config: WritebackConfig,
    /// Dirty pages → instant first dirtied (age anchor; re-dirtying does
    /// not reset the clock, matching the kernel).
    dirty: BTreeMap<PageKey, SimTime>,
    last_wakeup: SimTime,
}

impl Writeback {
    /// New registry.
    pub fn new(config: WritebackConfig) -> Self {
        Writeback {
            config,
            dirty: BTreeMap::new(),
            last_wakeup: SimTime::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WritebackConfig {
        &self.config
    }

    /// Mark a page dirty at `now`.
    pub fn mark_dirty(&mut self, key: PageKey, now: SimTime) {
        self.dirty.entry(key).or_insert(now);
    }

    /// A page left memory (evicted) — it must be written out regardless;
    /// returns true if it was dirty.
    pub fn on_evict(&mut self, key: PageKey) -> bool {
        self.dirty.remove(&key).is_some()
    }

    /// Is the page dirty?
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.dirty.contains_key(&key)
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The flusher's decision at `now`: which pages to write back, given
    /// whether the disk is currently spinning (`disk_ready`).
    ///
    /// Returns the pages to flush (removed from the registry — the caller
    /// owns issuing the actual writes).
    pub fn collect_due(&mut self, now: SimTime, disk_ready: bool) -> Vec<PageKey> {
        if now.saturating_since(self.last_wakeup) < self.config.wakeup_interval {
            return Vec::new();
        }
        self.last_wakeup = now;

        let take_all = self.config.laptop_mode && disk_ready && !self.dirty.is_empty();
        let age_limit = if self.config.laptop_mode && !disk_ready {
            self.config.laptop_max_age
        } else {
            self.config.dirty_expire
        };

        let selected: Vec<PageKey> = self
            .dirty
            .iter()
            .filter(|&(_, &since)| take_all || now.saturating_since(since) >= age_limit)
            .map(|(&k, _)| k)
            .collect();
        for k in &selected {
            self.dirty.remove(k);
        }
        selected
    }

    /// Everything still dirty (final sync at simulation end).
    pub fn drain_all(&mut self) -> Vec<PageKey> {
        let keys: Vec<PageKey> = self.dirty.keys().copied().collect();
        self.dirty.clear();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::FileId;

    fn key(i: u64) -> PageKey {
        PageKey {
            file: FileId(1),
            index: i,
        }
    }

    fn wb(laptop: bool) -> Writeback {
        Writeback::new(WritebackConfig {
            laptop_mode: laptop,
            ..Default::default()
        })
    }

    #[test]
    fn young_pages_are_not_flushed() {
        let mut w = wb(false);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        let due = w.collect_due(SimTime::from_secs(10), true);
        assert!(due.is_empty(), "10 s < 30 s dirty_expire");
        assert_eq!(w.dirty_count(), 1);
    }

    #[test]
    fn expired_pages_flush_under_normal_rules() {
        let mut w = wb(false);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        w.mark_dirty(key(2), SimTime::from_secs(25));
        let due = w.collect_due(SimTime::from_secs(31), true);
        assert_eq!(due, vec![key(1)]);
        assert!(w.is_dirty(key(2)));
    }

    #[test]
    fn laptop_mode_flushes_everything_on_active_disk() {
        let mut w = wb(true);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        w.mark_dirty(key(2), SimTime::from_secs(9));
        let due = w.collect_due(SimTime::from_secs(10), true);
        assert_eq!(due.len(), 2, "eager flush while the disk spins");
    }

    #[test]
    fn laptop_mode_defers_on_standby_disk() {
        let mut w = wb(true);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        // 100 s old — far past dirty_expire, but the disk sleeps and the
        // laptop max age is 600 s.
        let due = w.collect_due(SimTime::from_secs(100), false);
        assert!(due.is_empty(), "laptop mode must not wake the disk early");
        // Past the laptop age it does flush.
        let due = w.collect_due(SimTime::from_secs(601), false);
        assert_eq!(due, vec![key(1)]);
    }

    #[test]
    fn wakeup_interval_gates_the_flusher() {
        let mut w = wb(false);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        let _ = w.collect_due(SimTime::from_secs(31), true);
        w.mark_dirty(key(2), SimTime::from_secs(0));
        // Only 1 s after the previous wake-up: flusher stays asleep even
        // though key(2) is over-age.
        let due = w.collect_due(SimTime::from_secs(32), true);
        assert!(due.is_empty());
        let due = w.collect_due(SimTime::from_secs(37), true);
        assert_eq!(due, vec![key(2)]);
    }

    #[test]
    fn redirty_does_not_reset_age() {
        let mut w = wb(false);
        w.mark_dirty(key(1), SimTime::from_secs(0));
        w.mark_dirty(key(1), SimTime::from_secs(29)); // re-dirty
        let due = w.collect_due(SimTime::from_secs(31), true);
        assert_eq!(due, vec![key(1)], "age anchored at first dirtying");
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut w = wb(true);
        w.mark_dirty(key(1), SimTime::ZERO);
        assert!(w.on_evict(key(1)));
        assert!(!w.on_evict(key(1)), "second evict sees it clean");
        assert!(!w.on_evict(key(2)));
    }

    #[test]
    fn drain_all_empties() {
        let mut w = wb(true);
        w.mark_dirty(key(1), SimTime::ZERO);
        w.mark_dirty(key(2), SimTime::ZERO);
        assert_eq!(w.drain_all().len(), 2);
        assert_eq!(w.dirty_count(), 0);
    }
}
