//! Two-window readahead (Linux 2.6 style).
//!
//! §3.1 names *"the two-window readahead policy that prefetches up to 32
//! pages"*; §2.1 pins the maximum window at 128 KiB. The kernel keeps,
//! per open file, a *current window* (pages the application is consuming)
//! and an *ahead window* (pages already submitted for prefetch). When the
//! application's sequential stream crosses into the ahead window, the
//! ahead window becomes current and a new, doubled ahead window is
//! submitted — so a steady stream pays one device round-trip per window,
//! not per call. A non-sequential access shrinks the state back to
//! nothing.

use crate::page::PageKey;
use ff_trace::FileId;
use std::collections::BTreeMap;

/// Per-file readahead state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stream {
    /// First page of the current window.
    cur_start: u64,
    /// Pages in the current window.
    cur_len: u64,
    /// First page of the ahead window (== cur_start + cur_len when armed).
    ahead_len: u64,
    /// Next page index expected for a sequential continuation.
    next_expected: u64,
}

/// The readahead engine. Tracks one stream per file.
#[derive(Debug, Clone)]
pub struct Readahead {
    max_pages: u64,
    initial_pages: u64,
    streams: BTreeMap<FileId, Stream>,
}

impl Default for Readahead {
    fn default() -> Self {
        Readahead::new(32)
    }
}

impl Readahead {
    /// Engine with the given maximum window (paper/Linux: 32 pages).
    /// `max_pages == 0` disables readahead entirely (ablation switch).
    pub fn new(max_pages: u64) -> Self {
        Readahead {
            max_pages,
            initial_pages: 4.min(max_pages),
            streams: BTreeMap::new(),
        }
    }

    /// Maximum window size in pages.
    pub fn max_pages(&self) -> u64 {
        self.max_pages
    }

    /// Record an application access to pages `[first, last]` of `file`
    /// and return the page range to prefetch *in addition to* the demand
    /// pages, if any.
    ///
    /// Returns `Some((start_page, len_pages))` when a new ahead window
    /// should be submitted.
    pub fn on_access(&mut self, file: FileId, first: u64, last: u64) -> Option<(u64, u64)> {
        debug_assert!(first <= last);
        if self.max_pages == 0 {
            return None;
        }
        match self.streams.get_mut(&file) {
            Some(s) if first <= s.next_expected && last >= first => {
                // Sequential continuation (allow overlap with already-read
                // pages — re-reads of the tail are common).
                s.next_expected = s.next_expected.max(last + 1);
                let ahead_start = s.cur_start + s.cur_len;
                let ahead_end = ahead_start + s.ahead_len; // exclusive
                if s.ahead_len > 0 && s.next_expected > ahead_start {
                    // Crossed into the ahead window: rotate windows and
                    // submit a new, doubled ahead window.
                    let new_ahead_len = (s.ahead_len * 2).min(self.max_pages);
                    s.cur_start = ahead_start;
                    s.cur_len = s.ahead_len;
                    s.ahead_len = new_ahead_len;
                    return Some((ahead_end, new_ahead_len));
                }
                None
            }
            _ => {
                // New or broken stream: start a fresh window pair.
                let cur_len = last - first + 1;
                let ahead_len = self.initial_pages.min(self.max_pages);
                self.streams.insert(
                    file,
                    Stream {
                        cur_start: first,
                        cur_len,
                        ahead_len,
                        next_expected: last + 1,
                    },
                );
                Some((last + 1, ahead_len))
            }
        }
    }

    /// Forget the stream for `file` (close / random access detected).
    pub fn reset(&mut self, file: FileId) {
        self.streams.remove(&file);
    }

    /// Number of tracked streams.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }
}

/// Helper: clamp a prefetch range to the file's page count; returns the
/// concrete [`PageKey`]s to load.
pub fn clamp_prefetch(
    file: FileId,
    start_page: u64,
    len_pages: u64,
    file_pages: u64,
) -> Vec<PageKey> {
    (start_page..start_page.saturating_add(len_pages))
        .take_while(|&p| p < file_pages)
        .map(|p| PageKey { file, index: p })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(9);

    #[test]
    fn first_access_arms_initial_window() {
        let mut ra = Readahead::default();
        let got = ra.on_access(F, 0, 0);
        assert_eq!(got, Some((1, 4)), "initial 4-page ahead window");
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn windows_double_up_to_max() {
        let mut ra = Readahead::default();
        let mut submitted = vec![ra.on_access(F, 0, 0).unwrap().1];
        let mut next = 1;
        // Consume sequentially for a while, recording each new window.
        for _ in 0..2000 {
            if let Some((_, len)) = ra.on_access(F, next, next) {
                submitted.push(len);
            }
            next += 1;
        }
        // 4, 8, 16, 32, 32, 32 ...
        assert_eq!(&submitted[..4], &[4, 8, 16, 32]);
        assert!(
            submitted[4..].iter().all(|&l| l == 32),
            "window exceeded max"
        );
    }

    #[test]
    fn random_access_resets_stream() {
        let mut ra = Readahead::default();
        ra.on_access(F, 0, 0);
        ra.on_access(F, 1, 1);
        // Jump far away: new stream, fresh initial window.
        let got = ra.on_access(F, 1000, 1000);
        assert_eq!(got, Some((1001, 4)));
    }

    #[test]
    fn streams_are_per_file() {
        let mut ra = Readahead::default();
        ra.on_access(FileId(1), 0, 0);
        ra.on_access(FileId(2), 0, 0);
        assert_eq!(ra.streams(), 2);
        ra.reset(FileId(1));
        assert_eq!(ra.streams(), 1);
    }

    #[test]
    fn steady_stream_is_quiet_between_windows() {
        // Between window submissions, sequential accesses return None —
        // the data is already in flight.
        let mut ra = Readahead::default();
        ra.on_access(F, 0, 0).unwrap(); // ahead = pages 1..5
        assert_eq!(ra.on_access(F, 1, 1), Some((5, 8)), "entered ahead window");
        assert_eq!(ra.on_access(F, 2, 2), None);
        assert_eq!(ra.on_access(F, 3, 3), None);
        assert_eq!(ra.on_access(F, 4, 4), None);
        // Page 5 enters the new ahead window (5..13): rotate again.
        assert_eq!(ra.on_access(F, 5, 5), Some((13, 16)));
    }

    #[test]
    fn multi_page_calls_advance_the_stream() {
        let mut ra = Readahead::default();
        ra.on_access(F, 0, 7); // 32 KiB read = 8 pages
        let got = ra.on_access(F, 8, 15);
        assert!(
            got.is_some(),
            "sequential 32 KiB chunks must keep readahead going"
        );
    }

    #[test]
    fn zero_max_disables_readahead() {
        let mut ra = Readahead::new(0);
        assert_eq!(ra.on_access(F, 0, 0), None);
        assert_eq!(ra.on_access(F, 1, 1), None);
        assert_eq!(ra.streams(), 0);
    }

    #[test]
    fn clamp_respects_file_end() {
        let keys = clamp_prefetch(F, 6, 8, 10);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys.last().unwrap().index, 9);
        assert!(clamp_prefetch(F, 12, 4, 10).is_empty());
    }
}
