//! Laptop-mode write-back batching (§3.1, laptop-mode.txt).
//!
//! The invariant under test: laptop mode converts a steady drip of
//! dirty pages into a few large batches aligned with disk activity —
//! flush *everything* while the disk happens to spin, defer everything
//! (up to `laptop_max_age`) while it sleeps — instead of the normal
//! 30-second drip that would keep spinning the disk up.

use ff_base::SimTime;
use ff_cache::{PageKey, Writeback, WritebackConfig};
use ff_trace::FileId;

fn key(file: u64, index: u64) -> PageKey {
    PageKey {
        file: FileId(file),
        index,
    }
}

fn laptop() -> Writeback {
    Writeback::new(WritebackConfig {
        laptop_mode: true,
        ..Default::default()
    })
}

#[test]
fn steady_drip_becomes_one_batch_on_disk_wake() {
    let mut w = laptop();
    // One page dirtied every second for 20 s.
    for i in 0..20 {
        w.mark_dirty(key(1, i), SimTime::from_secs(i));
    }
    // Disk asleep: repeated flusher wake-ups flush nothing.
    for t in (25..100).step_by(5) {
        assert!(
            w.collect_due(SimTime::from_secs(t), false).is_empty(),
            "t={t}: laptop mode must not spin the disk up for young pages"
        );
    }
    assert_eq!(w.dirty_count(), 20);
    // The disk spins up (for a read); the next wake-up flushes the whole
    // backlog in one batch.
    let batch = w.collect_due(SimTime::from_secs(105), true);
    assert_eq!(batch.len(), 20, "eager flush must batch every dirty page");
    assert_eq!(w.dirty_count(), 0);
}

#[test]
fn batches_are_sorted_and_deterministic() {
    let run = || {
        let mut w = laptop();
        for i in [5u64, 1, 9, 3, 7] {
            w.mark_dirty(key(2, i), SimTime::ZERO);
        }
        w.collect_due(SimTime::from_secs(10), true)
    };
    let batch = run();
    let mut sorted = batch.clone();
    sorted.sort();
    assert_eq!(batch, sorted, "flush order must follow the page-key order");
    assert_eq!(batch, run(), "flush order must be reproducible");
}

#[test]
fn deferred_pages_force_out_at_laptop_max_age() {
    let mut w = laptop();
    w.mark_dirty(key(1, 0), SimTime::ZERO);
    // Far beyond the normal 30 s expiry, still deferred…
    assert!(w.collect_due(SimTime::from_secs(599), false).is_empty());
    // …but the laptop ceiling (600 s) caps data-loss exposure.
    assert_eq!(
        w.collect_due(SimTime::from_secs(605), false),
        vec![key(1, 0)]
    );
}

#[test]
fn normal_mode_drips_by_age_instead_of_batching() {
    let mut w = Writeback::new(WritebackConfig {
        laptop_mode: false,
        ..Default::default()
    });
    w.mark_dirty(key(1, 0), SimTime::from_secs(0));
    w.mark_dirty(key(1, 1), SimTime::from_secs(20));
    // At t=35 only the 35-second-old page is past dirty_expire (30 s);
    // an active disk does not trigger an eager flush without laptop mode.
    let due = w.collect_due(SimTime::from_secs(35), true);
    assert_eq!(due, vec![key(1, 0)], "normal mode flushes by age only");
    assert_eq!(w.dirty_count(), 1);
}

#[test]
fn wakeup_cadence_limits_batch_frequency() {
    let mut w = laptop();
    w.mark_dirty(key(1, 0), SimTime::ZERO);
    assert_eq!(w.collect_due(SimTime::from_secs(10), true).len(), 1);
    w.mark_dirty(key(1, 1), SimTime::from_secs(10));
    // 2 s later the flusher has not woken again, even with the disk
    // ready and laptop mode eager.
    assert!(w.collect_due(SimTime::from_secs(12), true).is_empty());
    assert_eq!(w.collect_due(SimTime::from_secs(15), true), vec![key(1, 1)]);
}

#[test]
fn eviction_and_final_drain_interact_with_batching() {
    let mut w = laptop();
    for i in 0..5 {
        w.mark_dirty(key(3, i), SimTime::ZERO);
    }
    // An eviction writes one page out-of-band; it must leave the batch.
    assert!(w.on_evict(key(3, 2)));
    let batch = w.collect_due(SimTime::from_secs(10), true);
    assert_eq!(batch.len(), 4);
    assert!(!batch.contains(&key(3, 2)));
    // Nothing left for the end-of-simulation sync.
    assert!(w.drain_all().is_empty());
}
