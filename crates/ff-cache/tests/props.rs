//! Property tests for the buffer-cache substrate.

use ff_base::{Bytes, SimTime};
use ff_cache::cscan::{BlockRequest, CScanQueue};
use ff_cache::{BufferCache, CacheConfig, FlashCache, PageKey, TwoQ};
use ff_trace::FileId;
use proptest::prelude::*;

proptest! {
    /// 2Q never holds more residents than its capacity, and `contains`
    /// agrees with what `touch` reports.
    #[test]
    fn twoq_capacity_and_coherence(
        cap in 4usize..128,
        accesses in proptest::collection::vec(0u64..256, 1..500),
    ) {
        let mut q = TwoQ::new(cap);
        let mut ev = Vec::new();
        for page in accesses {
            let key = PageKey { file: FileId(1), index: page };
            let before = q.contains(key);
            let access = q.touch(key, &mut ev);
            prop_assert_eq!(before, access.is_hit(), "contains/touch disagree");
            prop_assert!(q.contains(key), "a just-touched page must be resident");
            prop_assert!(q.resident() <= cap, "capacity violated");
        }
    }

    /// Every page evicted was resident earlier, and no page is evicted
    /// twice without an interleaving re-touch.
    #[test]
    fn twoq_evictions_are_accounted(
        accesses in proptest::collection::vec(0u64..64, 1..400),
    ) {
        let mut q = TwoQ::new(8);
        let mut live = std::collections::HashSet::new();
        for page in accesses {
            let key = PageKey { file: FileId(1), index: page };
            let mut ev = Vec::new();
            q.touch(key, &mut ev);
            live.insert(key);
            for victim in ev {
                prop_assert!(live.remove(&victim), "evicted {victim:?} was not live");
                prop_assert!(!q.contains(victim));
            }
        }
        prop_assert_eq!(live.len(), q.resident());
    }

    /// C-SCAN dispatches exactly the set of blocks pushed (as a union of
    /// ranges) and each sweep segment is ascending.
    #[test]
    fn cscan_conserves_blocks(
        reqs in proptest::collection::vec((0u64..10_000, 1u64..64), 1..60),
    ) {
        let mut q = CScanQueue::new();
        let mut expect = std::collections::BTreeSet::new();
        for (i, &(start, blocks)) in reqs.iter().enumerate() {
            q.push(BlockRequest { start, blocks, tag: i as u64 });
            expect.extend(start..start + blocks);
        }
        let drained = q.drain_sweep();
        let mut got = std::collections::BTreeSet::new();
        for r in &drained {
            for b in r.start..r.end() {
                prop_assert!(got.insert(b), "block {b} dispatched twice");
            }
        }
        prop_assert_eq!(got, expect);
        // At most one wrap: starts ascend, then may drop once and ascend.
        let starts: Vec<u64> = drained.iter().map(|r| r.start).collect();
        let wraps = starts.windows(2).filter(|w| w[1] < w[0]).count();
        prop_assert!(wraps <= 1, "C-SCAN wrapped {wraps} times: {starts:?}");
    }

    /// The cache front end: reading the same range twice produces no new
    /// demand misses, and fetch totals stay within readahead bounds.
    #[test]
    fn cache_rereads_hit(
        reads in proptest::collection::vec((0u64..200, 1u64..64), 1..50),
    ) {
        let size = Bytes(256 * 4096);
        let mut cache = BufferCache::new(CacheConfig {
            capacity_pages: 4096, // larger than the file — no evictions
            ..CacheConfig::default()
        });
        for &(page, n) in &reads {
            let off = page * 4096;
            let len = Bytes((n * 4096).min(size.get() - off));
            if len.is_zero() { continue; }
            cache.read(SimTime::ZERO, FileId(9), off, len, size);
            let again = cache.read(SimTime::ZERO, FileId(9), off, len, size);
            prop_assert!(again.fully_hit(), "re-read missed at page {page}+{n}");
        }
    }

    /// Dirty accounting: every written page is either still dirty or was
    /// surfaced through an eviction/flush — nothing is lost.
    #[test]
    fn writeback_never_loses_pages(
        writes in proptest::collection::vec(0u64..512, 1..200),
    ) {
        let mut cache = BufferCache::new(CacheConfig {
            capacity_pages: 64,
            ..CacheConfig::default()
        });
        let mut surfaced = std::collections::HashSet::new();
        let mut written = std::collections::HashSet::new();
        for (i, &page) in writes.iter().enumerate() {
            let out = cache.write(
                SimTime::from_secs(i as u64),
                FileId(3),
                page * 4096,
                Bytes(4096),
            );
            written.insert(page);
            for k in out.evicted_dirty {
                surfaced.insert(k.index);
            }
        }
        for k in cache.flush_all() {
            surfaced.insert(k.index);
        }
        prop_assert!(
            written.is_subset(&surfaced),
            "lost dirty pages: {:?}",
            written.difference(&surfaced).collect::<Vec<_>>()
        );
    }

    /// Flash cache: capacity bound, dirty accounting, and no lost dirty
    /// pages under arbitrary read/write interleavings.
    #[test]
    fn flashcache_invariants(
        cap in 1usize..64,
        ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..300),
    ) {
        let mut f = FlashCache::new(cap);
        let mut dirty_live: std::collections::HashSet<u64> = Default::default();
        let mut spilled: std::collections::HashSet<u64> = Default::default();
        for (page, write) in ops {
            let key = PageKey { file: ff_trace::FileId(1), index: page };
            let out = if write {
                dirty_live.insert(page);
                f.buffer_write(key)
            } else {
                f.insert_clean(key)
            };
            for k in out {
                prop_assert!(dirty_live.remove(&k.index), "spilled page was not dirty");
                spilled.insert(k.index);
            }
            prop_assert!(f.resident() <= cap);
            prop_assert_eq!(f.dirty_count(), dirty_live.len());
        }
        // Destage surfaces exactly the still-dirty set.
        let destaged: std::collections::HashSet<u64> =
            f.take_destage().into_iter().map(|k| k.index).collect();
        prop_assert_eq!(&destaged, &dirty_live);
        prop_assert_eq!(f.dirty_count(), 0);
        // Spilled and destaged sets never overlap at the same instant of
        // dirtiness: a page spilled earlier may have been re-dirtied, but
        // every spill was accounted above.
        prop_assert!(spilled.iter().all(|p| *p < 128));
    }

    /// Flash lookups agree with insert history within capacity.
    #[test]
    fn flashcache_recency(pages in proptest::collection::vec(0u64..32, 1..100)) {
        let mut f = FlashCache::new(16);
        for &p in &pages {
            f.insert_clean(PageKey { file: ff_trace::FileId(2), index: p });
        }
        // The most recently inserted page is always resident.
        let last = *pages.last().unwrap();
        let key = PageKey { file: ff_trace::FileId(2), index: last };
        let hit = f.lookup(key);
        prop_assert!(hit);
    }
}
