//! C-SCAN elevator ordering invariants (§2.1/§3.1).
//!
//! The unit tests in `cscan.rs` pin individual behaviours; these
//! integration tests check the *invariants* that make the elevator a
//! C-SCAN over arbitrary seeded workloads:
//!
//! 1. a full drain is at most two ascending runs (one sweep up, one
//!    wrap back to the lowest pending address — never SCAN's reversal),
//! 2. pending requests are always disjoint and non-adjacent after
//!    merging,
//! 3. dispatch covers exactly the union of the pushed block ranges.

use ff_cache::cscan::{BlockRequest, CScanQueue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_requests(seed: u64, n: usize, span: u64) -> Vec<BlockRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| BlockRequest {
            start: rng.gen_range(0..span),
            blocks: rng.gen_range(1..64),
            tag: i as u64,
        })
        .collect()
}

/// Split a dispatch order into ascending runs by start address.
fn ascending_runs(order: &[BlockRequest]) -> usize {
    if order.is_empty() {
        return 0;
    }
    1 + order.windows(2).filter(|w| w[1].start < w[0].start).count()
}

#[test]
fn drain_is_at_most_two_ascending_runs() {
    for seed in 0..20 {
        let mut q = CScanQueue::new();
        // Park the head mid-span so the wrap case actually occurs.
        q.push(BlockRequest {
            start: 5_000,
            blocks: 1,
            tag: u64::MAX,
        });
        let _ = q.pop();
        for r in random_requests(seed, 50, 10_000) {
            q.push(r);
        }
        let order = q.drain_sweep();
        let runs = ascending_runs(&order);
        assert!(
            runs <= 2,
            "seed {seed}: C-SCAN must wrap at most once per drain, saw {runs} runs: \
             {:?}",
            order.iter().map(|r| r.start).collect::<Vec<_>>()
        );
        // The first run serves addresses at or above the parked head.
        if runs == 2 {
            assert!(
                order[0].start >= 5_001,
                "seed {seed}: sweep must start at the head, not below it"
            );
        }
    }
}

#[test]
fn pending_requests_stay_disjoint_after_merging() {
    for seed in 20..40 {
        let mut q = CScanQueue::new();
        for r in random_requests(seed, 80, 2_000) {
            q.push(r);
        }
        let mut segments: Vec<(u64, u64)> =
            q.drain_sweep().iter().map(|r| (r.start, r.end())).collect();
        segments.sort_unstable();
        for w in segments.windows(2) {
            assert!(
                w[1].0 > w[0].1,
                "seed {seed}: merged queue holds touching segments {w:?}"
            );
        }
    }
}

#[test]
fn dispatch_covers_exactly_the_pushed_blocks() {
    for seed in 40..60 {
        let reqs = random_requests(seed, 60, 3_000);
        let mut q = CScanQueue::new();
        let mut expected = BTreeSet::new();
        for r in &reqs {
            q.push(*r);
            expected.extend(r.start..r.end());
        }
        let mut served = BTreeSet::new();
        for r in q.drain_sweep() {
            for b in r.start..r.end() {
                assert!(served.insert(b), "seed {seed}: block {b} dispatched twice");
            }
        }
        assert_eq!(served, expected, "seed {seed}: coverage mismatch");
    }
}

#[test]
fn head_advances_past_each_dispatch() {
    let mut q = CScanQueue::new();
    for r in random_requests(99, 30, 1_000) {
        q.push(r);
    }
    while let Some(r) = q.pop() {
        assert_eq!(
            q.head(),
            r.end(),
            "head must land after the dispatched request"
        );
    }
    assert!(q.is_empty());
}

#[test]
fn two_identical_workloads_drain_identically() {
    let build = || {
        let mut q = CScanQueue::new();
        for r in random_requests(7, 100, 5_000) {
            q.push(r);
        }
        q.drain_sweep()
    };
    assert_eq!(build(), build(), "elevator order must be deterministic");
}
