//! `ff-book` — build or link-check the handbook without mdBook.
//!
//! ```text
//! cargo run -q -p ff-book -- build docs    # render docs/ -> docs/book/
//! cargo run -q -p ff-book -- check docs    # verify every relative link
//! ```
//!
//! `scripts/check.sh` prefers a real `mdbook build docs` when the
//! binary is installed and falls back to this builder when it is not;
//! the link check always runs (mdBook itself does not check links).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, dir) = match args.as_slice() {
        [cmd, dir] => (cmd.as_str(), Path::new(dir)),
        _ => {
            eprintln!("usage: ff-book <build|check> <book-dir>");
            return ExitCode::from(2);
        }
    };
    match cmd {
        "build" => match ff_book::build(dir) {
            Ok(report) => {
                println!(
                    "built \"{}\": {} chapter(s) -> {}",
                    report.title,
                    report.chapters.len(),
                    dir.join("book").display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ff-book build failed: {e}");
                ExitCode::FAILURE
            }
        },
        "check" => match ff_book::check_links(dir) {
            Ok(issues) if issues.is_empty() => {
                println!("links OK in {}", dir.display());
                ExitCode::SUCCESS
            }
            Ok(issues) => {
                for i in &issues {
                    eprintln!(
                        "{}:{}: broken link [{}]: {}",
                        i.file, i.line, i.target, i.reason
                    );
                }
                eprintln!("{} broken link(s)", issues.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("ff-book check failed: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("unknown command {other:?}; usage: ff-book <build|check> <book-dir>");
            ExitCode::from(2)
        }
    }
}
