//! # ff-book — the offline handbook builder
//!
//! The handbook under `docs/` is authored in mdBook's conventions
//! (`book.toml` + `SUMMARY.md` + Markdown chapters) so a stock
//! `mdbook build docs` works wherever mdBook is installed. This build
//! environment has no network access and no mdBook binary, so this
//! crate provides the std-only fallback the check scripts use:
//!
//! * [`build`] — parse `book.toml` and `SUMMARY.md`, render every
//!   chapter to HTML under `docs/book/`, and fail on structural errors
//!   (a `SUMMARY.md` entry whose file is missing, an unterminated code
//!   fence, …).
//! * [`check_links`] — resolve every relative Markdown link in every
//!   chapter (including links out into the repository, e.g.
//!   `../DESIGN.md` or `../crates/ff-sim/src/lib.rs`) and report the
//!   broken ones.
//!
//! The Markdown renderer is deliberately a subset — ATX headings,
//! fenced code blocks, inline code, links, emphasis, and lists — which
//! is exactly the subset the handbook chapters use. It is a build
//! fallback, not a Markdown engine; mdBook remains the reference
//! renderer.
//!
//! ```
//! use ff_book::render_markdown;
//!
//! let html = render_markdown("# Title\n\nSee [the design](DESIGN.md).\n");
//! assert!(html.contains("<h1 id=\"title\">Title</h1>"));
//! assert!(html.contains("<a href=\"DESIGN.md\">the design</a>"));
//! ```

#![warn(missing_docs)]

use ff_base::{Error, Result};
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed `book.toml` (the minimal subset mdBook requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookConfig {
    /// The book title (`[book] title = "…"`).
    pub title: String,
    /// Chapter source directory relative to the book root
    /// (`[book] src = "…"`, mdBook's default is `src`).
    pub src: String,
}

/// One `SUMMARY.md` entry: a chapter title and its Markdown file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chapter {
    /// Display title from the summary link text.
    pub title: String,
    /// Path of the chapter file, relative to the source directory.
    pub path: String,
}

/// What [`build`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// The book title.
    pub title: String,
    /// Chapters rendered, in `SUMMARY.md` order.
    pub chapters: Vec<Chapter>,
    /// HTML files written (relative to the output directory).
    pub written: Vec<String>,
}

/// One broken link found by [`check_links`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkIssue {
    /// Chapter file (relative to the source directory) containing the link.
    pub file: String,
    /// 1-based line of the link.
    pub line: usize,
    /// The link target as written.
    pub target: String,
    /// Why it is broken.
    pub reason: String,
}

fn config_err(msg: impl Into<String>) -> Error {
    Error::Config(msg.into())
}

/// Parse the minimal `book.toml` subset: the `title` and `src` keys of
/// the `[book]` table. Unknown keys and tables are ignored, exactly as
/// mdBook ignores keys it does not know.
pub fn parse_book_toml(text: &str) -> Result<BookConfig> {
    let mut title = None;
    let mut src = None;
    let mut in_book = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_book = line == "[book]";
            continue;
        }
        if !in_book {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let value = value.trim().trim_matches('"').to_string();
            match key.trim() {
                "title" => title = Some(value),
                "src" => src = Some(value),
                _ => {}
            }
        }
    }
    Ok(BookConfig {
        title: title.ok_or_else(|| config_err("book.toml: missing [book] title"))?,
        src: src.unwrap_or_else(|| "src".to_string()),
    })
}

/// Parse `SUMMARY.md`: every list item of the form `- [Title](file.md)`
/// (any indentation, `-` or `*`) is a chapter. Draft chapters
/// (`[Title]()`) and separator lines are skipped, as in mdBook.
pub fn parse_summary(text: &str) -> Result<Vec<Chapter>> {
    let mut chapters = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_start();
        let Some(rest) = line.strip_prefix("- ").or_else(|| line.strip_prefix("* ")) else {
            continue;
        };
        let Some((title, target)) = parse_link(rest) else {
            return Err(Error::Parse {
                line: idx + 1,
                msg: format!("SUMMARY.md list item is not a link: {line:?}"),
            });
        };
        if target.is_empty() {
            continue; // draft chapter
        }
        chapters.push(Chapter {
            title: title.to_string(),
            path: target.to_string(),
        });
    }
    if chapters.is_empty() {
        return Err(config_err("SUMMARY.md lists no chapters"));
    }
    Ok(chapters)
}

/// If `text` starts with `[label](target)`, return `(label, target)`.
fn parse_link(text: &str) -> Option<(&str, &str)> {
    let rest = text.strip_prefix('[')?;
    let close = rest.find(']')?;
    let after = rest[close + 1..].strip_prefix('(')?;
    let end = after.find(')')?;
    Some((&rest[..close], &after[..end]))
}

/// Escape the four HTML-significant characters.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Render inline Markdown: `code`, [links](x), **bold**, *emphasis*.
fn render_inline(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix('`') {
            if let Some(end) = tail.find('`') {
                out.push_str("<code>");
                out.push_str(&escape(&tail[..end]));
                out.push_str("</code>");
                rest = &tail[end + 1..];
                continue;
            }
        }
        if rest.starts_with('[') {
            if let Some((label, target)) = parse_link(rest) {
                let consumed = label.len() + target.len() + 4;
                out.push_str(&format!(
                    "<a href=\"{}\">{}</a>",
                    escape(target),
                    render_inline(label)
                ));
                rest = &rest[consumed..];
                continue;
            }
        }
        if let Some(tail) = rest.strip_prefix("**") {
            if let Some(end) = tail.find("**") {
                out.push_str("<strong>");
                out.push_str(&render_inline(&tail[..end]));
                out.push_str("</strong>");
                rest = &tail[end + 2..];
                continue;
            }
        }
        if let Some(tail) = rest.strip_prefix('*') {
            if let Some(end) = tail.find('*') {
                out.push_str("<em>");
                out.push_str(&render_inline(&tail[..end]));
                out.push_str("</em>");
                rest = &tail[end + 1..];
                continue;
            }
        }
        let mut chars = rest.char_indices();
        if let Some((_, c)) = chars.next() {
            out.push_str(&escape(&c.to_string()));
            rest = chars.as_str();
        } else {
            break;
        }
    }
    out
}

/// Render a whole Markdown chapter to an HTML body fragment.
///
/// Supported blocks: ATX headings (`#`–`####`), fenced code blocks
/// (triple backtick, optional language info kept as a CSS class),
/// unordered/ordered lists, block quotes, tables (rendered as
/// preformatted text), and paragraphs.
pub fn render_markdown(text: &str) -> String {
    let mut out = String::new();
    let mut lines = text.lines().peekable();
    let mut paragraph: Vec<String> = Vec::new();

    fn flush_paragraph(out: &mut String, paragraph: &mut Vec<String>) {
        if paragraph.is_empty() {
            return;
        }
        out.push_str("<p>");
        out.push_str(&render_inline(&paragraph.join(" ")));
        out.push_str("</p>\n");
        paragraph.clear();
    }

    while let Some(line) = lines.next() {
        let trimmed = line.trim_end();
        if let Some(info) = trimmed.strip_prefix("```") {
            flush_paragraph(&mut out, &mut paragraph);
            let class = if info.is_empty() {
                String::new()
            } else {
                format!(" class=\"language-{}\"", escape(info.trim()))
            };
            out.push_str(&format!("<pre><code{class}>"));
            for code in lines.by_ref() {
                if code.trim_end().starts_with("```") {
                    break;
                }
                out.push_str(&escape(code));
                out.push('\n');
            }
            out.push_str("</code></pre>\n");
            continue;
        }
        if trimmed.is_empty() {
            flush_paragraph(&mut out, &mut paragraph);
            continue;
        }
        if let Some(rest) = heading(trimmed) {
            flush_paragraph(&mut out, &mut paragraph);
            let (level, text) = rest;
            out.push_str(&format!(
                "<h{level} id=\"{}\">{}</h{level}>\n",
                anchor_of(text),
                render_inline(text)
            ));
            continue;
        }
        if trimmed.starts_with("- ") || trimmed.starts_with("* ") {
            flush_paragraph(&mut out, &mut paragraph);
            out.push_str("<ul>\n");
            out.push_str(&format!("<li>{}</li>\n", render_inline(&trimmed[2..])));
            while let Some(next) = lines.peek() {
                let n = next.trim();
                if n.starts_with("- ") || n.starts_with("* ") {
                    out.push_str(&format!("<li>{}</li>\n", render_inline(&n[2..])));
                    lines.next();
                } else {
                    break;
                }
            }
            out.push_str("</ul>\n");
            continue;
        }
        if trimmed.starts_with('|') {
            flush_paragraph(&mut out, &mut paragraph);
            out.push_str("<pre class=\"table\">\n");
            out.push_str(&escape(trimmed));
            out.push('\n');
            while let Some(next) = lines.peek() {
                if next.trim_start().starts_with('|') {
                    out.push_str(&escape(next.trim_end()));
                    out.push('\n');
                    lines.next();
                } else {
                    break;
                }
            }
            out.push_str("</pre>\n");
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("> ") {
            flush_paragraph(&mut out, &mut paragraph);
            out.push_str(&format!(
                "<blockquote>{}</blockquote>\n",
                render_inline(rest)
            ));
            continue;
        }
        paragraph.push(trimmed.to_string());
    }
    flush_paragraph(&mut out, &mut paragraph);
    out
}

/// `# Heading` → `(1, "Heading")`, up to `####`.
fn heading(line: &str) -> Option<(usize, &str)> {
    let level = line.chars().take_while(|&c| c == '#').count();
    if (1..=4).contains(&level) {
        line.get(level..)
            .map(str::trim)
            .filter(|rest| !rest.is_empty())
            .map(|rest| (level, rest))
    } else {
        None
    }
}

/// GitHub/mdBook-style anchor slug for a heading.
fn anchor_of(text: &str) -> String {
    let mut slug = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if (c == ' ' || c == '-') && !slug.ends_with('-') {
            slug.push('-');
        }
    }
    slug.trim_matches('-').to_string()
}

/// Load the book rooted at `dir` (the directory containing `book.toml`).
fn load(dir: &Path) -> Result<(BookConfig, PathBuf, Vec<Chapter>)> {
    let toml = fs::read_to_string(dir.join("book.toml"))
        .map_err(|e| config_err(format!("{}: {e}", dir.join("book.toml").display())))?;
    let config = parse_book_toml(&toml)?;
    let src = dir.join(&config.src);
    let summary = fs::read_to_string(src.join("SUMMARY.md"))
        .map_err(|e| config_err(format!("{}: {e}", src.join("SUMMARY.md").display())))?;
    let chapters = parse_summary(&summary)?;
    Ok((config, src, chapters))
}

/// Build the book at `dir` into `dir/book/` (mdBook's default output
/// directory): one HTML file per chapter plus an `index.html` table of
/// contents. Fails if any `SUMMARY.md` entry has no file.
pub fn build(dir: &Path) -> Result<BuildReport> {
    let (config, src, chapters) = load(dir)?;
    let out_dir = dir.join("book");
    fs::create_dir_all(&out_dir)?;

    let mut written = Vec::new();
    let mut toc = String::new();
    for ch in &chapters {
        let md_path = src.join(&ch.path);
        let markdown = fs::read_to_string(&md_path)
            .map_err(|e| config_err(format!("SUMMARY.md entry {}: {e}", md_path.display())))?;
        let body = render_markdown(&markdown);
        let html_name = ch.path.replace(".md", ".html");
        let html = page(&config.title, &ch.title, &body);
        let out_path = out_dir.join(&html_name);
        if let Some(parent) = out_path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(&out_path, html)?;
        toc.push_str(&format!(
            "<li><a href=\"{}\">{}</a></li>\n",
            escape(&html_name),
            escape(&ch.title)
        ));
        written.push(html_name);
    }
    let index = page(
        &config.title,
        &config.title,
        &format!("<h1>{}</h1>\n<ol>\n{toc}</ol>\n", escape(&config.title)),
    );
    fs::write(out_dir.join("index.html"), index)?;
    written.push("index.html".to_string());
    Ok(BuildReport {
        title: config.title,
        chapters,
        written,
    })
}

/// Wrap a rendered body in the page shell.
fn page(book_title: &str, chapter_title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{} — {}</title>\n\
         <style>body{{max-width:46rem;margin:2rem auto;padding:0 1rem;\
         font-family:sans-serif;line-height:1.5}}pre{{background:#f4f4f4;\
         padding:.7rem;overflow-x:auto}}code{{background:#f4f4f4}}</style>\n\
         </head>\n<body>\n{}\n</body>\n</html>\n",
        escape(chapter_title),
        escape(book_title),
        body
    )
}

/// Extract `(line, target)` for every Markdown link in `text`,
/// including links inside list items; code fences are skipped.
fn links_in(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find('[') {
            rest = &rest[pos..];
            if let Some((label, target)) = parse_link(rest) {
                out.push((idx + 1, target.to_string()));
                rest = &rest[label.len() + target.len() + 4..];
            } else {
                rest = &rest[1..];
            }
        }
    }
    out
}

/// Check every relative link in every chapter (and in `SUMMARY.md`)
/// of the book at `dir`. External (`http…`) links are skipped — this
/// environment is offline. Returns the broken links; empty means clean.
pub fn check_links(dir: &Path) -> Result<Vec<LinkIssue>> {
    let (_config, src, chapters) = load(dir)?;
    let mut issues = Vec::new();
    let mut files: Vec<String> = chapters.iter().map(|c| c.path.clone()).collect();
    files.push("SUMMARY.md".to_string());
    for file in &files {
        let path = src.join(file);
        let text = fs::read_to_string(&path)
            .map_err(|e| config_err(format!("{}: {e}", path.display())))?;
        let base = path.parent().map(Path::to_path_buf).unwrap_or_default();
        for (line, target) in links_in(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let bare = target.split('#').next().unwrap_or("");
            if bare.is_empty() {
                continue; // same-page anchor
            }
            if !base.join(bare).exists() {
                issues.push(LinkIssue {
                    file: file.clone(),
                    line,
                    target: target.clone(),
                    reason: format!("target {} does not exist", base.join(bare).display()),
                });
            }
        }
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn book_toml_subset_parses() {
        let cfg = parse_book_toml(
            "[book]\ntitle = \"FlexFetch Handbook\"\nsrc = \".\"\n[output.html]\nfold = true\n",
        )
        .unwrap();
        assert_eq!(cfg.title, "FlexFetch Handbook");
        assert_eq!(cfg.src, ".");
    }

    #[test]
    fn book_toml_without_title_is_rejected() {
        assert!(parse_book_toml("[book]\nsrc = \".\"\n").is_err());
    }

    #[test]
    fn summary_entries_and_drafts() {
        let chapters = parse_summary(
            "# Summary\n\n- [Intro](introduction.md)\n  - [Nested](sub/ch.md)\n- [Draft]()\n",
        )
        .unwrap();
        assert_eq!(chapters.len(), 2);
        assert_eq!(chapters[1].path, "sub/ch.md");
    }

    #[test]
    fn renderer_covers_the_handbook_subset() {
        let html = render_markdown(
            "# Title\n\nBody with `code` and **bold** and a [link](x.md#frag).\n\n\
             ```rust\nlet x = 1 < 2;\n```\n\n- item one\n- item two\n\n| a | b |\n|---|---|\n",
        );
        assert!(html.contains("<h1 id=\"title\">Title</h1>"));
        assert!(html.contains("<code>code</code>"));
        assert!(html.contains("<strong>bold</strong>"));
        assert!(html.contains("<a href=\"x.md#frag\">link</a>"));
        assert!(html.contains("let x = 1 &lt; 2;"));
        assert!(html.contains("<li>item one</li>"));
        assert!(html.contains("<pre class=\"table\">"));
    }

    #[test]
    fn anchors_match_github_style() {
        assert_eq!(
            anchor_of("Run your first simulation"),
            "run-your-first-simulation"
        );
        assert_eq!(anchor_of("What's in `bench/`?"), "whats-in-bench");
    }

    #[test]
    fn links_are_extracted_outside_fences_only() {
        let found = links_in("[a](one.md)\n```\n[b](two.md)\n```\nsee [c](three.md) end\n");
        let targets: Vec<&str> = found.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(targets, ["one.md", "three.md"]);
    }

    #[test]
    fn build_and_check_a_tiny_book() {
        let dir = std::env::temp_dir().join(format!("ff-book-test-{}", std::process::id()));
        let src = dir.join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(dir.join("book.toml"), "[book]\ntitle = \"T\"\n").unwrap();
        fs::write(src.join("SUMMARY.md"), "- [One](one.md)\n").unwrap();
        fs::write(src.join("one.md"), "# One\n\n[dead](missing.md)\n").unwrap();

        let report = build(&dir).unwrap();
        assert_eq!(report.written, ["one.html", "index.html"]);
        assert!(dir.join("book/one.html").exists());

        let issues = check_links(&dir).unwrap();
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].target, "missing.md");

        fs::remove_dir_all(&dir).unwrap();
    }
}
