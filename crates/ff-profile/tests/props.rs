//! Property tests for the profiling layer.

use ff_base::{Bytes, Dur, SimTime};
use ff_profile::{stages_of, Estimator, IoBurst, MergedRequest, Profile, ProfiledBurst};
use ff_trace::{DiskLayout, FileId, FileMeta, FileSet, IoOp};
use proptest::prelude::*;

/// Random burst sequence with realistic spans.
fn arb_bursts() -> impl Strategy<Value = Vec<ProfiledBurst>> {
    proptest::collection::vec((1u64..2_000_000, 0u64..60_000_000, 1u64..5_000_000), 0..40).prop_map(
        |raw| {
            let mut t = 0u64;
            raw.into_iter()
                .map(|(bytes, gap_us, dur_us)| {
                    let start = SimTime(t);
                    t += dur_us;
                    let end = SimTime(t);
                    t += gap_us;
                    ProfiledBurst {
                        burst: IoBurst {
                            start,
                            end,
                            requests: vec![MergedRequest {
                                file: FileId(1),
                                op: IoOp::Read,
                                offset: 0,
                                len: Bytes(bytes),
                            }],
                        },
                        gap_after: Dur(gap_us),
                    }
                })
                .collect()
        },
    )
}

fn one_file_layout() -> (FileSet, DiskLayout) {
    let mut fs = FileSet::new();
    fs.insert(FileMeta {
        id: FileId(1),
        name: "f".into(),
        size: Bytes(2_000_000),
    });
    let l = DiskLayout::build(&fs, 1);
    (fs, l)
}

proptest! {
    /// Stages partition the burst sequence exactly, in order.
    #[test]
    fn stages_partition(bursts in arb_bursts(), stage_secs in 1u64..300) {
        let stages = stages_of(&bursts, Dur::from_secs(stage_secs));
        let total: usize = stages.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, bursts.len());
        let mut idx = 0;
        for s in &stages {
            prop_assert_eq!(s.first_burst, idx);
            for (k, pb) in s.bursts.iter().enumerate() {
                prop_assert_eq!(pb, &bursts[idx + k]);
            }
            idx += s.len();
        }
        // Every stage except possibly the last exceeds the threshold.
        for s in stages.iter().rev().skip(1) {
            prop_assert!(s.span() > Dur::from_secs(stage_secs));
        }
    }

    /// `bursts_covering` is monotone in bytes and bounded by the length.
    #[test]
    fn covering_is_monotone(bursts in arb_bursts(), a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let p = Profile { app: "p".into(), bursts };
        let (lo, hi) = (a.min(b), a.max(b));
        let na = p.bursts_covering(Bytes(lo));
        let nb = p.bursts_covering(Bytes(hi));
        prop_assert!(na <= nb);
        prop_assert!(nb <= p.len());
        // Definition: the first n bursts hold at most `bytes`.
        let covered: u64 =
            p.bursts.iter().take(na).map(|x| x.burst.bytes().get()).sum();
        prop_assert!(covered <= lo || na == 0);
    }

    /// Device costs are monotone in payload: scaling every burst up never
    /// reduces estimated time or energy.
    #[test]
    fn estimates_monotone_in_bytes(bursts in arb_bursts()) {
        prop_assume!(!bursts.is_empty());
        let (_, layout) = one_file_layout();
        let est = Estimator::new(&layout);
        let bigger: Vec<ProfiledBurst> = bursts
            .iter()
            .map(|pb| {
                let mut out = pb.clone();
                for r in &mut out.burst.requests {
                    r.len = Bytes(r.len.get() * 2);
                }
                out
            })
            .collect();
        use ff_device::{DiskModel, DiskParams, WnicModel, WnicParams};
        let d_small = est.disk_cost(&bursts, DiskModel::new(DiskParams::hitachi_dk23da()));
        let d_big = est.disk_cost(&bigger, DiskModel::new(DiskParams::hitachi_dk23da()));
        prop_assert!(d_big.time >= d_small.time);
        prop_assert!(d_big.energy.get() >= d_small.energy.get() - 1e-9);
        let w_small =
            est.wnic_cost(&bursts, WnicModel::new(WnicParams::cisco_aironet350()));
        let w_big = est.wnic_cost(&bigger, WnicModel::new(WnicParams::cisco_aironet350()));
        prop_assert!(w_big.time >= w_small.time);
        prop_assert!(w_big.energy.get() >= w_small.energy.get() - 1e-9);
    }

    /// splice(observed, n) has the declared length and content.
    #[test]
    fn splice_shape(bursts in arb_bursts(), n in 0usize..50) {
        let p = Profile { app: "p".into(), bursts: bursts.clone() };
        let observed = &bursts[..bursts.len().min(3)];
        let s = p.splice(observed, n);
        let tail = p.len().saturating_sub(n);
        prop_assert_eq!(s.len(), observed.len() + tail);
    }

    /// merge_concurrent conserves bursts and bytes for any two profiles.
    #[test]
    fn merge_conserves(a in arb_bursts(), b in arb_bursts()) {
        let pa = Profile { app: "a".into(), bursts: a };
        let pb = Profile { app: "b".into(), bursts: b };
        let m = pa.merge_concurrent(&pb);
        prop_assert_eq!(m.len(), pa.len() + pb.len());
        prop_assert_eq!(
            m.total_bytes().get(),
            pa.total_bytes().get() + pb.total_bytes().get()
        );
        for w in m.bursts.windows(2) {
            prop_assert!(w[0].burst.start <= w[1].burst.start);
        }
    }
}
