//! # ff-profile — execution profiles and cost estimation
//!
//! The FlexFetch profiling layer (§2.1–2.2):
//!
//! * [`burst`] — turns a raw system-call trace into **I/O bursts**:
//!   sequences of calls whose think gaps are below the burst threshold
//!   (the disk access time, 20 ms), with sequential same-file requests
//!   merged up to the 128 KiB Linux prefetch window.
//! * [`stage`] — groups consecutive bursts (and the think times between
//!   them) into **evaluation stages** of just over 40 s.
//! * [`profile`] — the per-application [`Profile`]: the recorded burst
//!   sequence, serialisable to JSON so it persists across runs, plus the
//!   §2.3.1 *splice* operation (replace the first N bursts with the
//!   currently observed partial profile) and the §2.3.3 concurrent-merge.
//! * [`estimate`] — the on-line simulator (§2.2): walks a burst sequence
//!   over cloned device models to produce `(T_disk, E_disk)` and
//!   `(T_network, E_network)` for a stage.
//! * [`hoard`] — extension: pick which files to hoard locally from the
//!   recorded history under a disk-space budget (the paper delegates
//!   this to Kuenning-style automated hoarding).

//! ```
//! use ff_base::Dur;
//! use ff_profile::Profiler;
//! use ff_trace::{Xmms, Workload};
//!
//! // Profile a paced streaming run: every refill is its own burst.
//! let trace = Xmms { play_limit: Some(Dur::from_secs(60)), ..Default::default() }
//!     .build(7);
//! let profile = Profiler::standard().profile(&trace);
//! assert!(profile.len() > 5);
//! assert_eq!(profile.total_bytes(), trace.total_bytes());
//! // It persists as JSON and round-trips losslessly.
//! let back = ff_profile::Profile::from_json(&profile.to_json()).unwrap();
//! assert_eq!(profile, back);
//! ```

pub mod burst;
pub mod estimate;
pub mod hoard;
pub mod profile;
pub mod stage;

pub use burst::{BurstExtractor, IoBurst, MergedRequest, ProfiledBurst};
pub use estimate::{Estimate, Estimator};
pub use hoard::{HoardPlan, HoardPlanner};
pub use profile::{Profile, Profiler};
pub use stage::{stages_of, Stage};
