//! I/O burst extraction (§2.1).
//!
//! *"We define an I/O burst as a sequence of read/write system calls
//! where the think time is less than the I/O burst threshold. In our
//! experiments we set the threshold as the disk access time … Multiple
//! requests that sequentially access the same file are merged into one
//! request of size up to 128 KB, the maximum prefetching window size in
//! Linux, to simulate the prefetch effects."*

use ff_base::{Bytes, Dur, SimTime};
use ff_trace::{FileId, IoOp, Trace, TraceRecord};

/// One merged request inside a burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedRequest {
    /// The file accessed.
    pub file: FileId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset of the merged range.
    pub offset: u64,
    /// Merged length (≤ the merge window unless a single call was bigger).
    pub len: Bytes,
}

impl MergedRequest {
    /// Exclusive end offset.
    pub fn end_offset(&self) -> u64 {
        self.offset + self.len.get()
    }
}

/// A sequence of system calls with sub-threshold think gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct IoBurst {
    /// Issue time of the first call (collection run).
    pub start: SimTime,
    /// Completion time of the last call (collection run).
    pub end: SimTime,
    /// Merged requests, in order.
    pub requests: Vec<MergedRequest>,
}

impl IoBurst {
    /// Total bytes requested in the burst.
    pub fn bytes(&self) -> Bytes {
        self.requests.iter().map(|r| r.len).sum()
    }

    /// Collection-run duration of the burst.
    pub fn duration(&self) -> Dur {
        self.end.saturating_since(self.start)
    }

    /// Number of merged requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True iff the burst holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// A burst plus the think time separating it from the next one.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledBurst {
    /// The burst.
    pub burst: IoBurst,
    /// Think time until the next burst (zero for the final burst).
    pub gap_after: Dur,
}

impl ProfiledBurst {
    /// Wall-clock contribution of this entry: burst duration + gap.
    pub fn span(&self) -> Dur {
        self.burst.duration() + self.gap_after
    }
}

/// Burst extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstExtractor {
    /// Think gaps at or above this end the burst (§2.1: the disk access
    /// time — 13 ms seek + 7 ms rotation = 20 ms).
    pub threshold: Dur,
    /// Maximum merged-request size (§2.1: 128 KiB, the Linux prefetch
    /// window).
    pub merge_window: Bytes,
}

impl Default for BurstExtractor {
    fn default() -> Self {
        BurstExtractor {
            threshold: Dur::from_millis(20),
            merge_window: Bytes::kib(128),
        }
    }
}

impl BurstExtractor {
    /// Extract the burst sequence (with inter-burst think times) from a
    /// trace. The trailing entry's `gap_after` is zero.
    pub fn extract(&self, trace: &Trace) -> Vec<ProfiledBurst> {
        let mut out: Vec<ProfiledBurst> = Vec::new();
        let mut current: Option<IoBurst> = None;
        let mut prev_end = SimTime::ZERO;

        for rec in &trace.records {
            let gap = rec.ts.saturating_since(prev_end);
            if gap >= self.threshold {
                if let Some(burst) = current.take() {
                    out.push(ProfiledBurst {
                        burst,
                        gap_after: gap,
                    });
                }
            }
            match &mut current {
                Some(burst) => {
                    burst.end = rec.end();
                    merge_or_push(&mut burst.requests, rec, self.merge_window);
                }
                None => {
                    current = Some(IoBurst {
                        start: rec.ts,
                        end: rec.end(),
                        requests: vec![to_merged(rec)],
                    });
                }
            }
            prev_end = rec.end();
        }
        if let Some(burst) = current {
            out.push(ProfiledBurst {
                burst,
                gap_after: Dur::ZERO,
            });
        }
        out
    }
}

fn to_merged(rec: &TraceRecord) -> MergedRequest {
    MergedRequest {
        file: rec.file,
        op: rec.op,
        offset: rec.offset,
        len: rec.len,
    }
}

/// Merge `rec` into the last request if it sequentially extends it (same
/// file, same op, contiguous offset) and stays within the merge window;
/// otherwise push a new request.
fn merge_or_push(reqs: &mut Vec<MergedRequest>, rec: &TraceRecord, window: Bytes) {
    push_merged(reqs, to_merged(rec), window);
}

/// Incremental burst construction from live events (§2.3.1: *"a new
/// profile is being generated for the current execution"*).
///
/// Feed completed application requests in time order; bursts are closed
/// when a think gap at or above the threshold is observed.
#[derive(Debug, Clone)]
pub struct OnlineBurstBuilder {
    params: BurstExtractor,
    current: Option<IoBurst>,
    prev_end: SimTime,
    completed: Vec<ProfiledBurst>,
}

impl OnlineBurstBuilder {
    /// Builder with the given extraction parameters.
    pub fn new(params: BurstExtractor) -> Self {
        OnlineBurstBuilder {
            params,
            current: None,
            prev_end: SimTime::ZERO,
            completed: Vec::new(),
        }
    }

    /// Record one application request: issued at `start`, completed at
    /// `end`.
    pub fn observe(
        &mut self,
        start: SimTime,
        end: SimTime,
        file: FileId,
        op: IoOp,
        offset: u64,
        len: Bytes,
    ) {
        let gap = start.saturating_since(self.prev_end);
        if gap >= self.params.threshold {
            if let Some(burst) = self.current.take() {
                self.completed.push(ProfiledBurst {
                    burst,
                    gap_after: gap,
                });
            }
        }
        let rec = MergedRequest {
            file,
            op,
            offset,
            len,
        };
        match &mut self.current {
            Some(burst) => {
                burst.end = end.max(burst.end);
                push_merged(&mut burst.requests, rec, self.params.merge_window);
            }
            None => {
                self.current = Some(IoBurst {
                    start,
                    end,
                    requests: vec![rec],
                });
            }
        }
        self.prev_end = self.prev_end.max(end);
    }

    /// Bursts fully closed so far (drains them).
    pub fn take_completed(&mut self) -> Vec<ProfiledBurst> {
        std::mem::take(&mut self.completed)
    }

    /// Force-close the currently open burst (zero trailing gap) — used at
    /// evaluation-stage boundaries so a burst spanning the boundary is
    /// split and the finished part becomes visible to the stage's audit.
    pub fn split_now(&mut self) {
        if let Some(burst) = self.current.take() {
            self.completed.push(ProfiledBurst {
                burst,
                gap_after: Dur::ZERO,
            });
        }
    }

    /// All bursts including the still-open one (gap zero), draining state.
    pub fn flush(&mut self) -> Vec<ProfiledBurst> {
        let mut out = std::mem::take(&mut self.completed);
        if let Some(burst) = self.current.take() {
            out.push(ProfiledBurst {
                burst,
                gap_after: Dur::ZERO,
            });
        }
        out
    }

    /// Bytes observed so far (closed + open bursts).
    pub fn observed_bytes(&self) -> Bytes {
        let closed: Bytes = self.completed.iter().map(|b| b.burst.bytes()).sum();
        closed
            + self
                .current
                .as_ref()
                .map(|b| b.bytes())
                .unwrap_or(Bytes::ZERO)
    }
}

fn push_merged(reqs: &mut Vec<MergedRequest>, rec: MergedRequest, window: Bytes) {
    if let Some(last) = reqs.last_mut() {
        let contiguous =
            last.file == rec.file && last.op == rec.op && last.end_offset() == rec.offset;
        if contiguous && last.len.get() + rec.len.get() <= window.get() {
            last.len += rec.len;
            return;
        }
    }
    reqs.push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::TraceRecord;

    fn rec(ts_us: u64, dur_us: u64, file: u64, off: u64, len: u64) -> TraceRecord {
        TraceRecord {
            pid: 1,
            pgid: 1,
            file: FileId(file),
            op: IoOp::Read,
            offset: off,
            len: Bytes(len),
            ts: SimTime(ts_us),
            dur: Dur(dur_us),
        }
    }

    fn trace(records: Vec<TraceRecord>) -> Trace {
        // Tests here don't need a valid file set; extraction never looks
        // at file metadata.
        Trace {
            name: "t".into(),
            files: Default::default(),
            records,
        }
    }

    #[test]
    fn single_burst_from_dense_calls() {
        let t = trace(vec![
            rec(0, 100, 1, 0, 1000),
            rec(200, 100, 1, 5000, 1000), // 100 us gap
            rec(400, 100, 2, 0, 1000),    // 100 us gap
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].burst.bytes(), Bytes(3000));
        assert_eq!(bursts[0].gap_after, Dur::ZERO);
    }

    #[test]
    fn threshold_splits_bursts() {
        let t = trace(vec![
            rec(0, 100, 1, 0, 1000),
            // gap = 25 ms ≥ 20 ms threshold → new burst
            rec(25_100, 100, 1, 5000, 1000),
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].gap_after, Dur::from_millis(25));
        assert_eq!(bursts[1].gap_after, Dur::ZERO);
    }

    #[test]
    fn gap_is_measured_from_call_end_not_start() {
        // Call takes 30 ms; next call starts 5 ms after it ENDS. The
        // inter-call distance from issue to issue is 35 ms but the think
        // time is only 5 ms — same burst.
        let t = trace(vec![
            rec(0, 30_000, 1, 0, 1000),
            rec(35_000, 100, 1, 1000, 1000),
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts.len(), 1);
    }

    #[test]
    fn sequential_same_file_merges() {
        let t = trace(vec![
            rec(0, 10, 1, 0, 4096),
            rec(20, 10, 1, 4096, 4096),
            rec(40, 10, 1, 8192, 4096),
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts[0].burst.requests.len(), 1);
        assert_eq!(bursts[0].burst.requests[0].len, Bytes(3 * 4096));
    }

    #[test]
    fn merge_caps_at_window() {
        let window = Bytes::kib(128);
        // 40 sequential 4 KiB reads = 160 KiB > 128 KiB window.
        let records: Vec<_> = (0..40)
            .map(|i| rec(i * 20, 10, 1, i * 4096, 4096))
            .collect();
        let bursts = BurstExtractor::default().extract(&trace(records));
        let reqs = &bursts[0].burst.requests;
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].len, window);
        assert_eq!(reqs[1].len, Bytes(40 * 4096 - window.get()));
    }

    #[test]
    fn non_contiguous_or_cross_file_do_not_merge() {
        let t = trace(vec![
            rec(0, 10, 1, 0, 4096),
            rec(20, 10, 1, 100_000, 4096), // jump within file
            rec(40, 10, 2, 104_096, 4096), // different file
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts[0].burst.requests.len(), 3);
    }

    #[test]
    fn writes_do_not_merge_with_reads() {
        let mut w = rec(20, 10, 1, 4096, 4096);
        w.op = IoOp::Write;
        let t = trace(vec![rec(0, 10, 1, 0, 4096), w]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts[0].burst.requests.len(), 2);
    }

    #[test]
    fn empty_trace_gives_no_bursts() {
        let bursts = BurstExtractor::default().extract(&trace(vec![]));
        assert!(bursts.is_empty());
    }

    #[test]
    fn burst_spans_and_bytes() {
        let t = trace(vec![
            rec(0, 1000, 1, 0, 500),
            rec(30_000, 2000, 1, 500, 700),
        ]);
        let bursts = BurstExtractor::default().extract(&t);
        assert_eq!(bursts[0].burst.duration(), Dur::from_millis(1));
        assert_eq!(
            bursts[0].span(),
            Dur::from_micros(1000) + Dur::from_micros(29_000)
        );
        assert_eq!(bursts[1].burst.bytes(), Bytes(700));
    }

    #[test]
    fn online_builder_matches_batch_extraction() {
        use ff_trace::{Make, Workload};
        let trace = Make {
            units: 8,
            headers: 16,
            misc: 2,
            input_bytes: 500_000,
            ..Default::default()
        }
        .build(3);
        let batch = BurstExtractor::default().extract(&trace);
        let mut online = OnlineBurstBuilder::new(BurstExtractor::default());
        for r in &trace.records {
            online.observe(r.ts, r.end(), r.file, r.op, r.offset, r.len);
        }
        let got = online.flush();
        assert_eq!(batch, got, "online and batch extraction must agree");
    }

    #[test]
    fn online_builder_tracks_bytes_and_drains() {
        let mut b = OnlineBurstBuilder::new(BurstExtractor::default());
        b.observe(
            SimTime(0),
            SimTime(10),
            FileId(1),
            IoOp::Read,
            0,
            Bytes(100),
        );
        assert_eq!(b.observed_bytes(), Bytes(100));
        // Big gap closes the first burst.
        b.observe(
            SimTime(100_000),
            SimTime(100_010),
            FileId(1),
            IoOp::Read,
            100,
            Bytes(50),
        );
        assert_eq!(b.observed_bytes(), Bytes(150));
        let closed = b.take_completed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].gap_after, Dur::from_micros(99_990));
        // Bytes counter unaffected by draining closed bursts? It counts
        // only what remains.
        assert_eq!(b.observed_bytes(), Bytes(50));
        let rest = b.flush();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn split_now_closes_the_open_burst() {
        let mut b = OnlineBurstBuilder::new(BurstExtractor::default());
        b.observe(
            SimTime(0),
            SimTime(10),
            FileId(1),
            IoOp::Read,
            0,
            Bytes(100),
        );
        assert!(b.take_completed().is_empty(), "burst still open");
        b.split_now();
        let closed = b.take_completed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].gap_after, Dur::ZERO);
        // Continuing I/O starts a fresh burst.
        b.observe(
            SimTime(20),
            SimTime(30),
            FileId(1),
            IoOp::Read,
            100,
            Bytes(50),
        );
        b.split_now();
        assert_eq!(b.take_completed().len(), 1);
        assert_eq!(b.observed_bytes(), Bytes::ZERO);
    }

    #[test]
    fn grep_trace_is_one_burst_make_is_many() {
        use ff_trace::{Grep, Make, Workload};
        let x = BurstExtractor::default();
        let grep = x.extract(
            &Grep {
                files: 50,
                total_bytes: 2_000_000,
                ..Default::default()
            }
            .build(1),
        );
        assert_eq!(grep.len(), 1, "grep must profile as a single burst");
        let make = x.extract(
            &Make {
                units: 10,
                headers: 20,
                misc: 2,
                input_bytes: 1_000_000,
                ..Default::default()
            }
            .build(1),
        );
        assert!(
            make.len() > 10,
            "make must profile as many bursts, got {}",
            make.len()
        );
    }
}
