//! The on-line device simulator (§2.2).
//!
//! *"In order to estimate execution times and energy costs for servicing
//! I/O requests on various data sources, we need to calculate the length
//! of period of time when a device stays at each power mode. To this end,
//! we maintain an on-line simulator for each device to emulate their
//! power saving policies."*
//!
//! The estimator walks a burst sequence over a **cloned** device model:
//! requests inside a burst go back to back (the paper's
//! peak-bandwidth-within-burst assumption — merging already folded the
//! intra-burst think times away), and inter-burst think times advance
//! the device clock so its timeout policy (spin-down / CAM→PSM) fires
//! exactly as it would live.

use crate::burst::ProfiledBurst;
use ff_base::{Bytes, Dur, Joules};
use ff_device::{DeviceRequest, Dir, DiskModel, PowerModel, WnicModel};
use ff_trace::{DiskLayout, FileId, IoOp};

/// The `(T, E)` pair the decision rules consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated execution time of the stage (service + think).
    pub time: Dur,
    /// Estimated energy over that period (service + idle + transitions).
    pub energy: Joules,
}

/// Walks burst sequences over device models.
#[derive(Debug, Clone)]
pub struct Estimator<'a> {
    layout: &'a DiskLayout,
}

impl<'a> Estimator<'a> {
    /// Estimator resolving disk blocks through `layout`.
    pub fn new(layout: &'a DiskLayout) -> Self {
        Estimator { layout }
    }

    /// `(T_disk, E_disk)` for servicing `bursts` on `disk`, starting from
    /// the model's current power state. The passed model is consumed (pass
    /// a clone of the live disk to start from reality).
    ///
    /// The energy includes the **parking cost**: after the last burst the
    /// model runs until the device reaches its low-power resting state
    /// (idle timeout + spin-down). Without this, a decision to wake the
    /// disk for one small burst would look ~35 J cheaper than it really
    /// is — the idle tail is a direct consequence of the decision.
    pub fn disk_cost(&self, bursts: &[ProfiledBurst], mut disk: DiskModel) -> Estimate {
        if bursts.is_empty() {
            return Estimate {
                time: Dur::ZERO,
                energy: Joules::ZERO,
            };
        }
        disk.reset_meter();
        let start = disk.clock();
        let mut t = start;
        for pb in bursts {
            for req in &pb.burst.requests {
                let dev_req = DeviceRequest {
                    dir: to_dir(req.op),
                    bytes: req.len,
                    block: self.layout.block_of(req.file, req.offset),
                };
                let out = disk.service(t, &dev_req);
                t = out.complete;
            }
            t += pb.gap_after;
            disk.advance_to(t);
        }
        let time = t.saturating_since(start);
        // Park: run out the idle timeout and the spin-down transient.
        let park = disk.params().timeout + disk.params().spindown_time + Dur::from_millis(1);
        disk.advance_to(t + park);
        Estimate {
            time,
            energy: disk.energy(),
        }
    }

    /// `(T_network, E_network)` for servicing `bursts` on `wnic`.
    /// Includes the parking cost (CAM idle-out plus the CAM→PSM switch).
    pub fn wnic_cost(&self, bursts: &[ProfiledBurst], mut wnic: WnicModel) -> Estimate {
        if bursts.is_empty() {
            return Estimate {
                time: Dur::ZERO,
                energy: Joules::ZERO,
            };
        }
        wnic.reset_meter();
        let start = wnic.clock();
        let mut t = start;
        for pb in bursts {
            for req in &pb.burst.requests {
                let dev_req = DeviceRequest {
                    dir: to_dir(req.op),
                    bytes: req.len,
                    block: None,
                };
                let out = wnic.service(t, &dev_req);
                t = out.complete;
            }
            t += pb.gap_after;
            wnic.advance_to(t);
        }
        let time = t.saturating_since(start);
        let park = wnic.params().psm_timeout + wnic.params().to_psm_time + Dur::from_millis(1);
        wnic.advance_to(t + park);
        Estimate {
            time,
            energy: wnic.energy(),
        }
    }
}

impl<'a> Estimator<'a> {
    /// System-level `(T, E)` of the **disk option**: the disk serves the
    /// bursts while the WNIC idles from its current state (dropping to
    /// PSM). The paper optimises "energy consumption in a mobile
    /// computer" — both devices draw power whichever one serves.
    pub fn system_disk_cost(
        &self,
        bursts: &[ProfiledBurst],
        disk: DiskModel,
        mut wnic: WnicModel,
    ) -> Estimate {
        let serving = self.disk_cost(bursts, disk);
        wnic.reset_meter();
        let end = wnic.clock() + serving.time;
        wnic.advance_to(end);
        Estimate {
            time: serving.time,
            energy: serving.energy + wnic.energy(),
        }
    }

    /// System-level `(T, E)` of the **network option**: the WNIC serves
    /// while the disk idles from its current state (timing out into
    /// standby — the big win for non-bursty workloads).
    pub fn system_wnic_cost(
        &self,
        bursts: &[ProfiledBurst],
        mut disk: DiskModel,
        wnic: WnicModel,
    ) -> Estimate {
        let serving = self.wnic_cost(bursts, wnic);
        disk.reset_meter();
        let end = disk.clock() + serving.time;
        disk.advance_to(end);
        Estimate {
            time: serving.time,
            energy: serving.energy + disk.energy(),
        }
    }
}

fn to_dir(op: IoOp) -> Dir {
    match op {
        IoOp::Read => Dir::Read,
        IoOp::Write => Dir::Write,
    }
}

/// §2.3.2 cache filtering: shrink or drop profiled requests whose data is
/// already resident in the buffer cache. `resident(file, offset, len)`
/// returns the resident fraction of the range in `[0, 1]`.
pub fn filter_resident<F>(bursts: &[ProfiledBurst], resident: F) -> Vec<ProfiledBurst>
where
    F: Fn(FileId, u64, Bytes) -> f64,
{
    bursts
        .iter()
        .map(|pb| {
            let mut out = pb.clone();
            out.burst.requests.retain_mut(|req| {
                let frac = resident(req.file, req.offset, req.len).clamp(0.0, 1.0);
                if frac >= 1.0 {
                    return false; // fully cached — never reaches a device
                }
                // Partial residency: shrink the device-visible request.
                let remaining = ((req.len.get() as f64) * (1.0 - frac)).ceil() as u64;
                req.len = Bytes(remaining.max(1));
                true
            });
            out
        })
        .filter(|pb| !pb.burst.requests.is_empty() || !pb.gap_after.is_zero())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{IoBurst, MergedRequest};
    use ff_base::SimTime;
    use ff_device::{DiskParams, WnicParams};
    use ff_trace::{FileMeta, FileSet};

    fn layout_for(file: u64, size: u64) -> (FileSet, DiskLayout) {
        let mut fs = FileSet::new();
        fs.insert(FileMeta {
            id: FileId(file),
            name: "f".into(),
            size: Bytes(size),
        });
        let l = DiskLayout::build(&fs, 1);
        (fs, l)
    }

    fn burst(bytes_each: &[u64], gap: Dur) -> ProfiledBurst {
        let mut off = 0;
        let reqs = bytes_each
            .iter()
            .map(|&b| {
                let r = MergedRequest {
                    file: FileId(1),
                    op: IoOp::Read,
                    offset: off,
                    len: Bytes(b),
                };
                off += b;
                r
            })
            .collect();
        ProfiledBurst {
            burst: IoBurst {
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                requests: reqs,
            },
            gap_after: gap,
        }
    }

    #[test]
    fn disk_estimate_counts_positioning_transfer_and_idle() {
        let (_, l) = layout_for(1, 10_000_000);
        let est = Estimator::new(&l);
        // One burst: 1 MB sequential (one merged request), then 5 s think.
        let bursts = vec![burst(&[1_000_000], Dur::from_secs(5))];
        let disk = DiskModel::new(DiskParams::hitachi_dk23da());
        let e = est.disk_cost(&bursts, disk);
        // Time: 20 ms + 1/35 s + 5 s ≈ 5.0486 s (parking not counted in T).
        assert!((e.time.as_secs_f64() - 5.0486).abs() < 0.001, "{}", e.time);
        // Energy: 2 W × 48.6 ms + 1.6 W × 5 s ≈ 8.097 J, plus parking —
        // the 5 s gap already burned 5 s of the 20 s timeout, so 15 s
        // idle × 1.6 W + 2.94 J spin-down + ~0.75 J standby ≈ 35.79 J.
        assert!((e.energy.get() - 35.79).abs() < 0.05, "{}", e.energy);
    }

    #[test]
    fn long_gap_lets_the_estimated_disk_spin_down() {
        let (_, l) = layout_for(1, 10_000_000);
        let est = Estimator::new(&l);
        let bursts = vec![
            burst(&[100_000], Dur::from_secs(30)), // > 20 s timeout
            burst(&[100_000], Dur::ZERO),
        ];
        let e = est.disk_cost(&bursts, DiskModel::new(DiskParams::hitachi_dk23da()));
        // Second burst must pay a spin-up: ~23 ms + 30 s + 1.6 s + 23 ms.
        assert!(e.time > Dur::from_millis(31_600), "{}", e.time);
        assert!(e.time < Dur::from_secs(32), "{}", e.time);
        // Energy includes spin-down + spin-up ≈ 7.94 J of transitions.
        assert!(e.energy.get() > 7.94);
    }

    #[test]
    fn wnic_estimate_prefers_small_intermittent_loads() {
        let (_, l) = layout_for(1, 100_000_000);
        let est = Estimator::new(&l);
        // Paced streaming: 64 KiB every 2.5 s — the mplayer shape (the
        // disk burns 1.6 W between refills; the card drops to PSM).
        let bursts: Vec<_> = (0..80)
            .map(|_| burst(&[65_536], Dur::from_millis(2_500)))
            .collect();
        let disk = est.disk_cost(&bursts, DiskModel::new(DiskParams::hitachi_dk23da()));
        let wnic = est.wnic_cost(&bursts, WnicModel::new(WnicParams::cisco_aironet350()));
        assert!(
            wnic.energy < disk.energy,
            "intermittent small reads must favour the WNIC: {} vs {}",
            wnic.energy,
            disk.energy
        );
    }

    #[test]
    fn disk_wins_big_sequential_bursts() {
        let (_, l) = layout_for(1, 100_000_000);
        let est = Estimator::new(&l);
        // grep/search shape: one dense 50 MB burst.
        let reqs: Vec<u64> = vec![131_072; 400];
        let bursts = vec![burst(&reqs, Dur::ZERO)];
        let disk = est.disk_cost(&bursts, DiskModel::new(DiskParams::hitachi_dk23da()));
        let wnic = est.wnic_cost(&bursts, WnicModel::new(WnicParams::cisco_aironet350()));
        assert!(
            disk.energy < wnic.energy,
            "bulk sequential reads must favour the disk: {} vs {}",
            disk.energy,
            wnic.energy
        );
        assert!(disk.time < wnic.time);
    }

    #[test]
    fn estimate_starts_from_given_device_state() {
        let (_, l) = layout_for(1, 10_000_000);
        let est = Estimator::new(&l);
        let bursts = vec![burst(&[4096], Dur::ZERO)];
        let spun = est.disk_cost(&bursts, DiskModel::new(DiskParams::hitachi_dk23da()));
        let standby = est.disk_cost(
            &bursts,
            DiskModel::new_standby(DiskParams::hitachi_dk23da()),
        );
        assert!(
            standby.energy.get() > spun.energy.get() + 4.9,
            "spin-up must show up"
        );
        assert!(standby.time > spun.time + Dur::from_millis(1_500));
    }

    #[test]
    fn filter_drops_fully_resident_requests() {
        let bursts = vec![burst(&[4096, 4096], Dur::from_secs(1))];
        let filtered = filter_resident(&bursts, |_, offset, _| if offset == 0 { 1.0 } else { 0.0 });
        assert_eq!(filtered[0].burst.requests.len(), 1);
        assert_eq!(filtered[0].burst.requests[0].offset, 4096);
    }

    #[test]
    fn filter_shrinks_partially_resident_requests() {
        let bursts = vec![burst(&[10_000], Dur::ZERO)];
        let filtered = filter_resident(&bursts, |_, _, _| 0.5);
        assert_eq!(filtered[0].burst.requests[0].len, Bytes(5_000));
    }

    #[test]
    fn filter_removes_empty_zero_gap_bursts() {
        let bursts = vec![burst(&[4096], Dur::ZERO)];
        let filtered = filter_resident(&bursts, |_, _, _| 1.0);
        assert!(filtered.is_empty());
    }

    #[test]
    fn filter_keeps_gap_of_emptied_burst() {
        // The think time still passes even if the data was cached.
        let bursts = vec![burst(&[4096], Dur::from_secs(3))];
        let filtered = filter_resident(&bursts, |_, _, _| 1.0);
        assert_eq!(filtered.len(), 1);
        assert!(filtered[0].burst.requests.is_empty());
        assert_eq!(filtered[0].gap_after, Dur::from_secs(3));
    }

    #[test]
    fn system_costs_include_the_idle_device() {
        let (_, l) = layout_for(1, 100_000_000);
        let est = Estimator::new(&l);
        // A sparse window: 100 KB every 6 s for ~96 s — long enough for
        // the network option to amortise the disk's 20 s drain-down.
        let bursts: Vec<_> = (0..16)
            .map(|_| burst(&[100_000], Dur::from_millis(6_000)))
            .collect();
        let disk = DiskModel::new(DiskParams::hitachi_dk23da());
        let wnic = WnicModel::new(WnicParams::cisco_aironet350());
        let d_only = est.disk_cost(&bursts, disk.clone());
        let d_sys = est.system_disk_cost(&bursts, disk.clone(), wnic.clone());
        // System cost adds the WNIC's PSM idle (0.39 W × span).
        assert!(d_sys.energy > d_only.energy);
        assert_eq!(d_sys.time, d_only.time);
        let n_sys = est.system_wnic_cost(&bursts, disk.clone(), wnic.clone());
        // For this sparse pattern the network option must win at the
        // system level: the disk sleeps instead of idling at 1.6 W.
        assert!(
            n_sys.energy < d_sys.energy,
            "network option {} must beat disk option {}",
            n_sys.energy,
            d_sys.energy
        );
    }

    #[test]
    fn empty_bursts_cost_only_idle() {
        let (_, l) = layout_for(1, 10_000);
        let est = Estimator::new(&l);
        let e = est.disk_cost(&[], DiskModel::new(DiskParams::hitachi_dk23da()));
        assert_eq!(e.time, Dur::ZERO);
        assert_eq!(e.energy, Joules::ZERO);
    }
}
