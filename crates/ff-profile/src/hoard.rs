//! Hoard planning (extension).
//!
//! The paper assumes the full working set is hoarded on the local disk
//! (§1, §5: synchronisation and hoarding are delegated to a system like
//! Kuenning & Popek's automated hoarding \[11\]). This module closes the
//! loop: given recorded access history (a [`Profile`]) and a disk-space
//! budget, pick which files to hoard. Files left out are reachable only
//! over the WNIC (`SimConfig::network_only_files`), which degrades
//! FlexFetch's freedom of choice — quantified in the `extensions`
//! experiment binary.
//!
//! The heuristic follows the hoarding literature: rank files by observed
//! access intensity (bytes requested in the profile, with a recency tie
//! towards files touched in later bursts) and take greedily until the
//! budget is spent. Kuenning's semantic clustering is out of scope; the
//! ranking interface is pluggable.

use crate::profile::Profile;
use ff_base::Bytes;
use ff_trace::{FileId, FileSet};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of hoard planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoardPlan {
    /// Files replicated on the local disk.
    pub hoarded: BTreeSet<FileId>,
    /// Disk space the hoard occupies.
    pub hoarded_bytes: Bytes,
    /// Files left on the server only.
    pub missed: BTreeSet<FileId>,
}

impl HoardPlan {
    /// Fraction of the file population hoarded.
    pub fn coverage(&self, total_files: usize) -> f64 {
        if total_files == 0 {
            return 1.0;
        }
        self.hoarded.len() as f64 / total_files as f64
    }
}

/// Greedy hotness-ranked hoard planner.
#[derive(Debug, Clone, Copy)]
pub struct HoardPlanner {
    /// Local disk space available for hoarding.
    pub budget: Bytes,
}

impl HoardPlanner {
    /// Planner with the given budget.
    pub fn new(budget: Bytes) -> Self {
        HoardPlanner { budget }
    }

    /// Rank `files` by the access history in `profile` and hoard the
    /// hottest ones that fit the budget. Files absent from the profile
    /// rank last (hotness 0) but are still hoarded if room remains.
    pub fn plan(&self, profile: &Profile, files: &FileSet) -> HoardPlan {
        // Hotness: total bytes requested per file across the profile,
        // weighted by how recently (burst index) the file was touched.
        let mut hotness: BTreeMap<FileId, f64> = BTreeMap::new();
        let n = profile.len().max(1) as f64;
        for (i, pb) in profile.bursts.iter().enumerate() {
            let recency = 0.5 + 0.5 * (i as f64 + 1.0) / n;
            for req in &pb.burst.requests {
                *hotness.entry(req.file).or_insert(0.0) += req.len.get() as f64 * recency;
            }
        }

        let mut ranked: Vec<(&ff_trace::FileMeta, f64)> = files
            .iter()
            .map(|m| (m, hotness.get(&m.id).copied().unwrap_or(0.0)))
            .collect();
        // Hottest first; among equals, smaller files first (more coverage
        // per byte); stable by inode for determinism.
        ranked.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(a.0.size.cmp(&b.0.size))
                .then(a.0.id.cmp(&b.0.id))
        });

        let mut plan = HoardPlan {
            hoarded: BTreeSet::new(),
            hoarded_bytes: Bytes::ZERO,
            missed: BTreeSet::new(),
        };
        for (meta, _) in ranked {
            if plan.hoarded_bytes + meta.size <= self.budget {
                plan.hoarded_bytes = plan.hoarded_bytes.saturating_add(meta.size);
                plan.hoarded.insert(meta.id);
            } else {
                plan.missed.insert(meta.id);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{IoBurst, MergedRequest, ProfiledBurst};
    use ff_base::{Dur, SimTime};
    use ff_trace::{FileMeta, IoOp};

    fn files(sizes: &[u64]) -> FileSet {
        let mut fs = FileSet::new();
        for (i, &s) in sizes.iter().enumerate() {
            fs.insert(FileMeta {
                id: FileId(i as u64 + 1),
                name: format!("f{i}"),
                size: Bytes(s),
            });
        }
        fs
    }

    fn profile_touching(file_bytes: &[(u64, u64)]) -> Profile {
        let requests = file_bytes
            .iter()
            .map(|&(f, b)| MergedRequest {
                file: FileId(f),
                op: IoOp::Read,
                offset: 0,
                len: Bytes(b),
            })
            .collect();
        Profile {
            app: "t".into(),
            bursts: vec![ProfiledBurst {
                burst: IoBurst {
                    start: SimTime::ZERO,
                    end: SimTime::ZERO,
                    requests,
                },
                gap_after: Dur::ZERO,
            }],
        }
    }

    #[test]
    fn hot_files_are_hoarded_first() {
        let fs = files(&[1000, 1000, 1000]);
        // File 3 is hottest, file 1 cold.
        let p = profile_touching(&[(3, 9000), (2, 100)]);
        let plan = HoardPlanner::new(Bytes(2000)).plan(&p, &fs);
        assert!(plan.hoarded.contains(&FileId(3)));
        assert!(plan.hoarded.contains(&FileId(2)));
        assert!(plan.missed.contains(&FileId(1)));
        assert_eq!(plan.hoarded_bytes, Bytes(2000));
    }

    #[test]
    fn budget_zero_hoards_nothing() {
        let fs = files(&[10, 20]);
        let plan = HoardPlanner::new(Bytes::ZERO).plan(&Profile::empty("x"), &fs);
        assert!(plan.hoarded.is_empty());
        assert_eq!(plan.missed.len(), 2);
        assert_eq!(plan.coverage(2), 0.0);
    }

    #[test]
    fn big_budget_hoards_everything() {
        let fs = files(&[10, 20, 30]);
        let plan = HoardPlanner::new(Bytes(1000)).plan(&Profile::empty("x"), &fs);
        assert_eq!(plan.hoarded.len(), 3);
        assert!(plan.missed.is_empty());
        assert_eq!(plan.hoarded_bytes, Bytes(60));
        assert_eq!(plan.coverage(3), 1.0);
    }

    #[test]
    fn skipping_a_big_file_still_fits_smaller_ones() {
        // Budget 25: hottest file (size 30) does not fit, but the two
        // colder small files do.
        let fs = files(&[10, 15, 30]);
        let p = profile_touching(&[(3, 5000)]);
        let plan = HoardPlanner::new(Bytes(25)).plan(&p, &fs);
        assert!(plan.missed.contains(&FileId(3)));
        assert_eq!(plan.hoarded.len(), 2);
    }

    #[test]
    fn recency_breaks_ties_toward_later_bursts() {
        let fs = files(&[100, 100]);
        // Same bytes, but file 2 is touched in a later burst.
        let mut p = profile_touching(&[(1, 500)]);
        p.bursts
            .push(profile_touching(&[(2, 500)]).bursts.pop().unwrap());
        let plan = HoardPlanner::new(Bytes(100)).plan(&p, &fs);
        assert!(
            plan.hoarded.contains(&FileId(2)),
            "recent file wins the tie"
        );
        assert!(plan.missed.contains(&FileId(1)));
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        let fs = files(&[100; 20]);
        let p = Profile::empty("x");
        let a = HoardPlanner::new(Bytes(500)).plan(&p, &fs);
        let b = HoardPlanner::new(Bytes(500)).plan(&p, &fs);
        assert_eq!(a, b);
    }
}
