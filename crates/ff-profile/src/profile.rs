//! The per-application profile store (§2.1, §2.3.1, §2.3.3).

use crate::burst::{BurstExtractor, IoBurst, MergedRequest, ProfiledBurst};
use crate::stage::{stages_of, Stage};
use ff_base::json::Value;
use ff_base::{Bytes, Dur, Error, Result, SimTime};
use ff_trace::{FileId, IoOp, Trace};
use std::path::Path;

/// A recorded, device-independent execution profile: the application's
/// burst sequence with inter-burst think times.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Application name the profile belongs to.
    pub app: String,
    /// The burst sequence.
    pub bursts: Vec<ProfiledBurst>,
}

impl Profile {
    /// Empty profile for `app` (first-ever run: no history).
    pub fn empty(app: impl Into<String>) -> Self {
        Profile {
            app: app.into(),
            bursts: Vec::new(),
        }
    }

    /// Number of bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True iff no bursts were recorded.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total bytes requested across the profile.
    pub fn total_bytes(&self) -> Bytes {
        self.bursts.iter().map(|b| b.burst.bytes()).sum()
    }

    /// Wall-clock span of the profiled run.
    pub fn span(&self) -> Dur {
        self.bursts.iter().map(|b| b.span()).sum()
    }

    /// Form evaluation stages of `stage_len` (§2.2; the paper uses 40 s).
    pub fn stages(&self, stage_len: Dur) -> Vec<Stage> {
        stages_of(&self.bursts, stage_len)
    }

    /// §2.3.1 splice: *"we use the new profile for this run to replace
    /// the N I/O bursts in the old profile"*. Returns the assembled
    /// profile: `observed` followed by `self.bursts[n..]`.
    pub fn splice(&self, observed: &[ProfiledBurst], n: usize) -> Profile {
        let tail = self.bursts.iter().skip(n).cloned();
        Profile {
            app: self.app.clone(),
            bursts: observed.iter().cloned().chain(tail).collect(),
        }
    }

    /// The number of leading bursts the observed amount has fully
    /// covered: the largest `N` with `sum(bursts[..N].bytes) <= bytes` —
    /// "whenever the amount just exceeds the amount of data requested in
    /// the first N I/O bursts" (§2.3.1), splicing replaces exactly those
    /// N bursts.
    pub fn bursts_covering(&self, bytes: Bytes) -> usize {
        let mut acc = Bytes::ZERO;
        for (i, b) in self.bursts.iter().enumerate() {
            acc += b.burst.bytes();
            if acc > bytes {
                return i;
            }
        }
        self.bursts.len()
    }

    /// §2.3.3: merge profiles of concurrently running programs into one
    /// aggregate, interleaving bursts on their recorded start times and
    /// recomputing the think gaps from the merged timeline.
    pub fn merge_concurrent(&self, other: &Profile) -> Profile {
        let mut all: Vec<ProfiledBurst> = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.bursts.len() && j < other.bursts.len() {
            if other.bursts[j].burst.start < self.bursts[i].burst.start {
                all.push(other.bursts[j].clone());
                j += 1;
            } else {
                all.push(self.bursts[i].clone());
                i += 1;
            }
        }
        all.extend(self.bursts[i..].iter().cloned());
        all.extend(other.bursts[j..].iter().cloned());
        // Recompute gaps from the merged timeline.
        for k in 0..all.len() {
            let gap = if k + 1 < all.len() {
                all[k + 1].burst.start.saturating_since(all[k].burst.end)
            } else {
                Dur::ZERO
            };
            all[k].gap_after = gap;
        }
        Profile {
            app: format!("{}||{}", self.app, other.app),
            bursts: all,
        }
    }

    /// Serialise to pretty JSON. The document shape matches what the
    /// earlier serde-based implementation produced, so profiles saved by
    /// older builds stay loadable.
    pub fn to_json(&self) -> String {
        let bursts = self.bursts.iter().map(burst_to_value).collect();
        let doc = Value::Object(vec![
            ("app".into(), Value::Str(self.app.clone())),
            ("bursts".into(), Value::Array(bursts)),
        ]);
        doc.to_pretty()
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Profile> {
        let doc = Value::parse(text)?;
        let app = field(&doc, "app")?
            .as_str()
            .ok_or_else(|| shape_err("\"app\" must be a string"))?
            .to_owned();
        let bursts = field(&doc, "bursts")?
            .as_array()
            .ok_or_else(|| shape_err("\"bursts\" must be an array"))?
            .iter()
            .map(burst_from_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(Profile { app, bursts })
    }

    /// Persist to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Profile> {
        let text = std::fs::read_to_string(path)?;
        Profile::from_json(&text)
    }
}

fn shape_err(msg: impl Into<String>) -> Error {
    Error::Parse {
        line: 0,
        msg: msg.into(),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value> {
    v.get(key)
        .ok_or_else(|| shape_err(format!("missing field \"{key}\"")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| shape_err(format!("\"{key}\" must be a non-negative integer")))
}

fn burst_to_value(pb: &ProfiledBurst) -> Value {
    let requests = pb
        .burst
        .requests
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("file".into(), Value::UInt(r.file.0)),
                (
                    "op".into(),
                    Value::Str(match r.op {
                        IoOp::Read => "Read".into(),
                        IoOp::Write => "Write".into(),
                    }),
                ),
                ("offset".into(), Value::UInt(r.offset)),
                ("len".into(), Value::UInt(r.len.get())),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "burst".into(),
            Value::Object(vec![
                ("start".into(), Value::UInt(pb.burst.start.as_micros())),
                ("end".into(), Value::UInt(pb.burst.end.as_micros())),
                ("requests".into(), Value::Array(requests)),
            ]),
        ),
        ("gap_after".into(), Value::UInt(pb.gap_after.as_micros())),
    ])
}

fn burst_from_value(v: &Value) -> Result<ProfiledBurst> {
    let b = field(v, "burst")?;
    let requests = field(b, "requests")?
        .as_array()
        .ok_or_else(|| shape_err("\"requests\" must be an array"))?
        .iter()
        .map(|r| {
            let op = match field(r, "op")?.as_str() {
                Some("Read") => IoOp::Read,
                Some("Write") => IoOp::Write,
                _ => return Err(shape_err("\"op\" must be \"Read\" or \"Write\"")),
            };
            Ok(MergedRequest {
                file: FileId(u64_field(r, "file")?),
                op,
                offset: u64_field(r, "offset")?,
                len: Bytes(u64_field(r, "len")?),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ProfiledBurst {
        burst: IoBurst {
            start: SimTime(u64_field(b, "start")?),
            end: SimTime(u64_field(b, "end")?),
            requests,
        },
        gap_after: Dur(u64_field(v, "gap_after")?),
    })
}

/// Trace → profile pipeline: burst extraction with the paper's defaults.
#[derive(Debug, Clone, Copy)]
pub struct Profiler {
    /// Burst extraction parameters.
    pub extractor: BurstExtractor,
}

impl Profiler {
    /// The paper's configuration: 20 ms burst threshold, 128 KiB merge.
    pub fn standard() -> Self {
        Profiler {
            extractor: BurstExtractor::default(),
        }
    }

    /// Profile a recorded trace.
    pub fn profile(&self, trace: &Trace) -> Profile {
        Profile {
            app: trace.name.clone(),
            bursts: self.extractor.extract(trace),
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{IoBurst, MergedRequest};
    use ff_base::SimTime;
    use ff_trace::{FileId, Grep, IoOp, Workload};

    fn pb(start_ms: u64, dur_ms: u64, gap_ms: u64, bytes: u64) -> ProfiledBurst {
        ProfiledBurst {
            burst: IoBurst {
                start: SimTime::from_millis(start_ms),
                end: SimTime::from_millis(start_ms + dur_ms),
                requests: vec![MergedRequest {
                    file: FileId(1),
                    op: IoOp::Read,
                    offset: 0,
                    len: Bytes(bytes),
                }],
            },
            gap_after: Dur::from_millis(gap_ms),
        }
    }

    #[test]
    fn profiler_extracts_from_real_workload() {
        let trace = Grep {
            files: 30,
            total_bytes: 1_000_000,
            ..Default::default()
        }
        .build(1);
        let p = Profiler::standard().profile(&trace);
        assert_eq!(p.app, "grep");
        assert_eq!(p.total_bytes(), Bytes(1_000_000));
    }

    #[test]
    fn json_round_trip() {
        let p = Profile {
            app: "x".into(),
            bursts: vec![pb(0, 10, 100, 5000)],
        };
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ff_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let p = Profile {
            app: "x".into(),
            bursts: vec![pb(0, 10, 100, 5000)],
        };
        p.save(&path).unwrap();
        assert_eq!(Profile::load(&path).unwrap(), p);
    }

    #[test]
    fn bad_json_reports_parse_error() {
        assert!(Profile::from_json("{not json").is_err());
    }

    #[test]
    fn splice_replaces_head() {
        let old = Profile {
            app: "a".into(),
            bursts: vec![pb(0, 1, 1, 100), pb(10, 1, 1, 200), pb(20, 1, 1, 300)],
        };
        let observed = vec![pb(0, 2, 2, 999)];
        let spliced = old.splice(&observed, 2);
        assert_eq!(spliced.len(), 2);
        assert_eq!(spliced.bursts[0].burst.bytes(), Bytes(999));
        assert_eq!(spliced.bursts[1].burst.bytes(), Bytes(300));
    }

    #[test]
    fn splice_beyond_end_keeps_only_observed() {
        let old = Profile {
            app: "a".into(),
            bursts: vec![pb(0, 1, 1, 100)],
        };
        let spliced = old.splice(&[pb(0, 1, 1, 1)], 10);
        assert_eq!(spliced.len(), 1);
    }

    #[test]
    fn bursts_covering_finds_prefix() {
        let p = Profile {
            app: "a".into(),
            bursts: vec![pb(0, 1, 1, 100), pb(10, 1, 1, 200), pb(20, 1, 1, 300)],
        };
        assert_eq!(p.bursts_covering(Bytes(50)), 0, "burst 1 not yet exceeded");
        assert_eq!(p.bursts_covering(Bytes(100)), 1, "burst 1 exactly covered");
        assert_eq!(p.bursts_covering(Bytes(101)), 1);
        assert_eq!(p.bursts_covering(Bytes(300)), 2);
        assert_eq!(p.bursts_covering(Bytes(600)), 3);
        assert_eq!(p.bursts_covering(Bytes(10_000)), 3, "saturates at len");
    }

    #[test]
    fn merge_concurrent_interleaves_and_recomputes_gaps() {
        let a = Profile {
            app: "a".into(),
            bursts: vec![pb(0, 10, 999, 1), pb(100, 10, 0, 2)],
        };
        let b = Profile {
            app: "b".into(),
            bursts: vec![pb(50, 10, 0, 3)],
        };
        let m = a.merge_concurrent(&b);
        assert_eq!(m.app, "a||b");
        let starts: Vec<u64> = m
            .bursts
            .iter()
            .map(|x| x.burst.start.as_micros() / 1000)
            .collect();
        assert_eq!(starts, vec![0, 50, 100]);
        // Gap between burst 0 (ends 10 ms) and burst 1 (starts 50 ms).
        assert_eq!(m.bursts[0].gap_after, Dur::from_millis(40));
        assert_eq!(m.bursts[2].gap_after, Dur::ZERO);
    }

    #[test]
    fn empty_profile_behaviour() {
        let p = Profile::empty("fresh");
        assert!(p.is_empty());
        assert_eq!(p.total_bytes(), Bytes::ZERO);
        assert_eq!(p.span(), Dur::ZERO);
        assert!(p.stages(Dur::from_secs(40)).is_empty());
        assert_eq!(p.bursts_covering(Bytes(1)), 0);
    }
}
