//! Evaluation stages (§2.2).
//!
//! *"To characterize the behaviors of a long running program in an
//! appropriate granularity, we collect continuous I/O bursts, including
//! think times between them, whose length just exceeds a pre-determined
//! threshold, say 40 seconds used in our experiments, into an evaluation
//! stage."*

use crate::burst::ProfiledBurst;
use ff_base::{Bytes, Dur};

/// A window of consecutive bursts whose combined span (bursts + think
/// times) just exceeds the stage threshold — the unit at which FlexFetch
/// makes and re-evaluates data-source decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Index of the first burst of this stage in the profile.
    pub first_burst: usize,
    /// The bursts (with their trailing gaps) in this stage.
    pub bursts: Vec<ProfiledBurst>,
}

impl Stage {
    /// Wall-clock span: burst durations plus think gaps (the trailing
    /// burst's gap is included — it separates this stage from the next).
    pub fn span(&self) -> Dur {
        self.bursts.iter().map(|b| b.span()).sum()
    }

    /// Total bytes requested in the stage.
    pub fn bytes(&self) -> Bytes {
        self.bursts.iter().map(|b| b.burst.bytes()).sum()
    }

    /// Number of bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True iff the stage holds no bursts.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }
}

/// Group a burst sequence into stages whose span *just exceeds*
/// `stage_len` (the last stage may be shorter). A single burst longer
/// than `stage_len` forms its own stage.
pub fn stages_of(bursts: &[ProfiledBurst], stage_len: Dur) -> Vec<Stage> {
    let mut stages = Vec::new();
    let mut cur: Vec<ProfiledBurst> = Vec::new();
    let mut cur_first = 0usize;
    let mut cur_span = Dur::ZERO;
    for (i, pb) in bursts.iter().enumerate() {
        if cur.is_empty() {
            cur_first = i;
        }
        cur_span += pb.span();
        cur.push(pb.clone());
        if cur_span > stage_len {
            stages.push(Stage {
                first_burst: cur_first,
                bursts: std::mem::take(&mut cur),
            });
            cur_span = Dur::ZERO;
        }
    }
    if !cur.is_empty() {
        stages.push(Stage {
            first_burst: cur_first,
            bursts: cur,
        });
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{IoBurst, MergedRequest};
    use ff_base::SimTime;
    use ff_trace::{FileId, IoOp};

    fn pb(dur_ms: u64, gap_ms: u64) -> ProfiledBurst {
        ProfiledBurst {
            burst: IoBurst {
                start: SimTime::ZERO,
                end: SimTime::from_millis(dur_ms),
                requests: vec![MergedRequest {
                    file: FileId(1),
                    op: IoOp::Read,
                    offset: 0,
                    len: ff_base::Bytes(1000),
                }],
            },
            gap_after: Dur::from_millis(gap_ms),
        }
    }

    #[test]
    fn stage_closes_just_past_threshold() {
        // Each entry spans 11 s; threshold 40 s → 4 entries (44 s) close
        // a stage.
        let bursts: Vec<_> = (0..8).map(|_| pb(1_000, 10_000)).collect();
        let stages = stages_of(&bursts, Dur::from_secs(40));
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].len(), 4);
        assert!(stages[0].span() > Dur::from_secs(40));
        assert_eq!(stages[1].first_burst, 4);
    }

    #[test]
    fn trailing_partial_stage_survives() {
        let bursts: Vec<_> = (0..5).map(|_| pb(1_000, 10_000)).collect();
        let stages = stages_of(&bursts, Dur::from_secs(40));
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[1].len(), 1, "partial stage kept");
        assert!(stages[1].span() < Dur::from_secs(40));
    }

    #[test]
    fn giant_burst_is_its_own_stage() {
        let bursts = vec![pb(120_000, 0), pb(1_000, 0)];
        let stages = stages_of(&bursts, Dur::from_secs(40));
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].len(), 1);
    }

    #[test]
    fn empty_input_no_stages() {
        assert!(stages_of(&[], Dur::from_secs(40)).is_empty());
    }

    #[test]
    fn stage_bytes_sum_requests() {
        let bursts: Vec<_> = (0..3).map(|_| pb(1_000, 1_000)).collect();
        let stages = stages_of(&bursts, Dur::from_secs(400));
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].bytes(), ff_base::Bytes(3000));
    }

    #[test]
    fn indices_partition_the_profile() {
        let bursts: Vec<_> = (0..10).map(|_| pb(5_000, 9_000)).collect();
        let stages = stages_of(&bursts, Dur::from_secs(30));
        let mut expect = 0;
        for s in &stages {
            assert_eq!(s.first_burst, expect);
            expect += s.len();
        }
        assert_eq!(expect, 10);
    }
}
