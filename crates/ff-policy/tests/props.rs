//! Property tests for the decision layer.

use ff_base::{Dur, Joules};
use ff_policy::{decide, Source};
use ff_profile::Estimate;
use proptest::prelude::*;

fn est(t_us: u64, e: f64) -> Estimate {
    Estimate {
        time: Dur(t_us),
        energy: Joules(e),
    }
}

proptest! {
    /// Strict dominance always wins, whatever the loss rate.
    #[test]
    fn dominance_is_respected(
        t in 1u64..1 << 40, e in 0.0f64..1e6,
        dt in 1u64..1 << 30, de in 1e-6f64..1e5,
        loss in 0.0f64..2.0,
    ) {
        // Disk strictly better on both axes → Disk.
        prop_assert_eq!(
            decide(est(t, e), est(t + dt, e + de), loss),
            Source::Disk
        );
        // Network strictly better on both axes → Wnic.
        prop_assert_eq!(
            decide(est(t + dt, e + de), est(t, e), loss),
            Source::Wnic
        );
    }

    /// The decision is scale-invariant: multiplying every time and energy
    /// by the same positive factor never changes it (the rules compare
    /// only relative quantities).
    #[test]
    fn scale_invariance(
        td in 1u64..1 << 20, tn in 1u64..1 << 20,
        ed in 0.001f64..1e4, en in 0.001f64..1e4,
        k in 2u64..100, loss in 0.0f64..1.0,
    ) {
        let base = decide(est(td, ed), est(tn, en), loss);
        let scaled = decide(
            est(td * k, ed * k as f64),
            est(tn * k, en * k as f64),
            loss,
        );
        prop_assert_eq!(base, scaled);
    }

    /// Raising the loss rate can only move decisions disk→network, never
    /// network→disk (the budget for trading time only grows).
    #[test]
    fn loss_rate_is_monotone(
        td in 1u64..1 << 20, tn in 1u64..1 << 20,
        ed in 0.001f64..1e4, en in 0.001f64..1e4,
        lo in 0.0f64..1.0, hi in 0.0f64..1.0,
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let a = decide(est(td, ed), est(tn, en), lo);
        let b = decide(est(td, ed), est(tn, en), hi);
        if a == Source::Wnic {
            prop_assert_eq!(b, Source::Wnic, "raising the loss rate revoked the network");
        }
    }

    /// A network that saves no energy is never chosen unless it strictly
    /// dominates on time too.
    #[test]
    fn costlier_network_needs_time_dominance(
        td in 1u64..1 << 20, tn in 1u64..1 << 20,
        e in 0.001f64..1e4, extra in 0.0f64..1e3,
        loss in 0.0f64..1.0,
    ) {
        let got = decide(est(td, e), est(tn, e + extra), loss);
        if got == Source::Wnic {
            prop_assert!(tn < td && extra == 0.0);
        }
    }
}
