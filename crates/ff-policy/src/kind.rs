//! Policy factory used by the simulator, examples and benches.

use crate::bluefs::BlueFs;
use crate::fixed::{DiskOnly, WnicOnly};
use crate::flexfetch::{FlexFetch, FlexFetchConfig};
use crate::source::Policy;
use ff_profile::Profile;

/// A recipe for constructing one of the four simulated policies (§3.1).
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Everything from the disk.
    DiskOnly,
    /// Everything from the WNIC.
    WnicOnly,
    /// Reactive per-request selection with ghost hints.
    BlueFs,
    /// FlexFetch with a recorded profile and explicit config.
    FlexFetch {
        /// The recorded prior-run profile.
        profile: Profile,
        /// Policy tuning.
        config: FlexFetchConfig,
    },
}

impl PolicyKind {
    /// Adaptive FlexFetch with the paper's defaults (25 % loss rate,
    /// 40 s stages).
    pub fn flexfetch(profile: Profile) -> Self {
        PolicyKind::FlexFetch {
            profile,
            config: FlexFetchConfig::default(),
        }
    }

    /// FlexFetch-static (§3.3.4): profile-driven, no run-time adaptation.
    pub fn flexfetch_static(profile: Profile) -> Self {
        PolicyKind::FlexFetch {
            profile,
            config: FlexFetchConfig {
                adaptive: false,
                ..Default::default()
            },
        }
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::DiskOnly => Box::new(DiskOnly),
            PolicyKind::WnicOnly => Box::new(WnicOnly),
            PolicyKind::BlueFs => Box::new(BlueFs::new()),
            PolicyKind::FlexFetch { profile, config } => {
                Box::new(FlexFetch::new(profile.clone(), config.clone()))
            }
        }
    }

    /// The scheme's display name (figure legend).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::DiskOnly => "Disk-only",
            PolicyKind::WnicOnly => "WNIC-only",
            PolicyKind::BlueFs => "BlueFS",
            PolicyKind::FlexFetch { config, .. } => {
                if config.adaptive {
                    "FlexFetch"
                } else {
                    "FlexFetch-static"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_built_policies() {
        let kinds = [
            PolicyKind::DiskOnly,
            PolicyKind::WnicOnly,
            PolicyKind::BlueFs,
            PolicyKind::flexfetch(Profile::empty("x")),
            PolicyKind::flexfetch_static(Profile::empty("x")),
        ];
        for k in kinds {
            assert_eq!(k.label(), k.build().name());
        }
    }

    #[test]
    fn flexfetch_kind_carries_config() {
        let k = PolicyKind::flexfetch_static(Profile::empty("x"));
        match &k {
            PolicyKind::FlexFetch { config, .. } => assert!(!config.adaptive),
            _ => panic!("wrong variant"),
        }
    }
}
