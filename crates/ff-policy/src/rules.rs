//! The §2.2 decision rules.
//!
//! > 1. If `T_disk < T_network` and `E_disk < E_network`, choose the
//! >    local disk as data source;
//! > 2. If `T_network < T_disk` and `E_network < E_disk`, choose the
//! >    wireless network as data source;
//! > 3. If `E_network < E_disk` and
//! >    `(E_disk − E_network)/E_disk >= (T_network − T_disk)/T_disk` and
//! >    `(T_network − T_disk)/T_disk < loss_rate`, choose the network as
//! >    data source; otherwise, choose the disk.

use crate::source::Source;
use ff_profile::Estimate;

/// Apply the FlexFetch decision rules to the two estimates.
///
/// `loss_rate` is the user's maximum tolerable I/O performance loss
/// (§2.2; the paper's experiments use 0.25).
pub fn decide(disk: Estimate, net: Estimate, loss_rate: f64) -> Source {
    let (t_d, t_n) = (disk.time.as_secs_f64(), net.time.as_secs_f64());
    let (e_d, e_n) = (disk.energy.get(), net.energy.get());

    // Rule 1: disk dominates.
    if t_d < t_n && e_d < e_n {
        return Source::Disk;
    }
    // Rule 2: network dominates.
    if t_n < t_d && e_n < e_d {
        return Source::Wnic;
    }
    // Rule 3: network saves energy but costs time — accept the slowdown
    // only if the relative saving beats the relative slowdown and the
    // slowdown stays under the loss rate.
    if e_n < e_d && t_d > 0.0 {
        let saving = (e_d - e_n) / e_d;
        let slowdown = (t_n - t_d) / t_d;
        if saving >= slowdown && slowdown < loss_rate {
            return Source::Wnic;
        }
    }
    Source::Disk
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::{Dur, Joules};

    fn est(secs: f64, joules: f64) -> Estimate {
        Estimate {
            time: Dur::from_secs_f64(secs),
            energy: Joules(joules),
        }
    }

    #[test]
    fn rule1_disk_dominates() {
        assert_eq!(decide(est(1.0, 10.0), est(2.0, 20.0), 0.25), Source::Disk);
    }

    #[test]
    fn rule2_network_dominates() {
        assert_eq!(decide(est(2.0, 20.0), est(1.0, 10.0), 0.25), Source::Wnic);
    }

    #[test]
    fn rule3_accepts_bounded_slowdown_for_energy() {
        // Net: 10 % slower, 50 % cheaper → take it (10 % < 25 %, 50 ≥ 10).
        assert_eq!(decide(est(10.0, 20.0), est(11.0, 10.0), 0.25), Source::Wnic);
    }

    #[test]
    fn rule3_rejects_slowdown_beyond_loss_rate() {
        // Net: 30 % slower — over the 25 % budget even though cheaper.
        assert_eq!(decide(est(10.0, 20.0), est(13.0, 10.0), 0.25), Source::Disk);
    }

    #[test]
    fn rule3_rejects_saving_smaller_than_slowdown() {
        // Net: 20 % slower but only 10 % cheaper (x < n) → disk.
        assert_eq!(decide(est(10.0, 20.0), est(12.0, 18.0), 0.25), Source::Disk);
    }

    #[test]
    fn loss_rate_zero_never_trades_time_for_energy() {
        assert_eq!(decide(est(10.0, 20.0), est(10.5, 1.0), 0.0), Source::Disk);
        // But strict dominance still picks the network.
        assert_eq!(decide(est(10.0, 20.0), est(9.0, 1.0), 0.0), Source::Wnic);
    }

    #[test]
    fn exact_ties_fall_through_to_disk() {
        assert_eq!(decide(est(1.0, 1.0), est(1.0, 1.0), 0.25), Source::Disk);
    }

    #[test]
    fn faster_but_costlier_network_falls_to_disk() {
        // t_n < t_d but e_n > e_d: neither rule 1, 2 nor 3 → disk.
        assert_eq!(decide(est(2.0, 5.0), est(1.0, 50.0), 0.25), Source::Disk);
    }

    #[test]
    fn zero_disk_time_degenerate() {
        // Empty stage on disk: t_d = 0 guards rule 3's division.
        assert_eq!(decide(est(0.0, 0.0), est(0.0, 0.0), 0.25), Source::Disk);
    }
}
