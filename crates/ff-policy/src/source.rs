//! The policy interface between the simulator and the selection schemes.

use ff_base::{Bytes, Dur, Joules, SimTime};
use ff_device::{DiskModel, ServiceOutcome, WnicModel};
use ff_profile::ProfiledBurst;
use ff_trace::{DiskLayout, FileId, IoOp};

/// Where a request is serviced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The local hard disk.
    Disk,
    /// The remote server over the wireless NIC.
    Wnic,
}

impl Source {
    /// The other device.
    pub fn other(self) -> Source {
        match self {
            Source::Disk => Source::Wnic,
            Source::Wnic => Source::Disk,
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Source::Disk => "disk",
            Source::Wnic => "wnic",
        }
    }
}

/// One device-visible application request (post buffer cache):
/// what the policy routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppRequest {
    /// File accessed.
    pub file: FileId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset.
    pub offset: u64,
    /// Length.
    pub len: Bytes,
}

/// Read-only view of the world a policy may consult when deciding.
pub struct PolicyCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The live disk (read-only — use [`ff_device::PowerModel::estimate`]).
    pub disk: &'a DiskModel,
    /// The live WNIC.
    pub wnic: &'a WnicModel,
    /// File → block layout (for disk cost estimates).
    pub layout: &'a DiskLayout,
    /// Buffer-cache residency probe: fraction of `(file, offset, len)`
    /// currently cached, in `[0, 1]`.
    pub resident: &'a dyn Fn(FileId, u64, Bytes) -> f64,
}

/// A mid-run environment perturbation the simulator reports to the
/// policy (fault injection, §2.3's hostile-environment adaptation).
///
/// Notices come in down/up pairs so a policy can degrade while the
/// fault is active and re-decide when it clears. Policies that ignore
/// these (the fixed baselines) still work: the simulator's router
/// refuses to route to an unreachable device regardless of what
/// [`Policy::select`] answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultNotice {
    /// The wireless link lost association; no traffic gets through.
    LinkDown,
    /// The wireless link re-associated.
    LinkUp,
    /// The remote storage server stopped answering (the link itself is
    /// fine — requests time out instead of failing fast).
    ServerDown,
    /// The remote storage server answers again.
    ServerUp,
    /// The link bandwidth changed (fade began/ended or a scripted
    /// schedule point fired); `mbps` is the new rate.
    BandwidthChanged {
        /// New link bandwidth in Mbit/s.
        mbps: f64,
    },
}

impl FaultNotice {
    /// Stable tag used in decision logs and event streams.
    pub fn label(self) -> &'static str {
        match self {
            FaultNotice::LinkDown => "link_down",
            FaultNotice::LinkUp => "link_up",
            FaultNotice::ServerDown => "server_down",
            FaultNotice::ServerUp => "server_up",
            FaultNotice::BandwidthChanged { .. } => "bandwidth_changed",
        }
    }
}

/// What the simulator measured over one finished evaluation stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage ordinal (0-based).
    pub index: usize,
    /// When the stage started / ended.
    pub start: SimTime,
    /// Stage end time.
    pub end: SimTime,
    /// Device-visible bursts observed during the stage.
    pub observed: Vec<ProfiledBurst>,
    /// Energy actually drawn by the disk over the stage.
    pub disk_energy: Joules,
    /// Energy actually drawn by the WNIC over the stage.
    pub wnic_energy: Joules,
}

impl StageReport {
    /// Wall-clock length of the stage.
    pub fn span(&self) -> Dur {
        self.end.saturating_since(self.start)
    }

    /// Combined I/O energy of the stage.
    pub fn total_energy(&self) -> Joules {
        self.disk_energy + self.wnic_energy
    }
}

/// A data-source selection scheme.
///
/// The simulator calls [`Policy::select`] for every device-visible
/// request, [`Policy::observe`] after servicing it,
/// [`Policy::on_external_disk`] whenever a *non-profiled* program forces
/// disk activity, and [`Policy::on_stage_end`] at each evaluation-stage
/// boundary.
pub trait Policy {
    /// Scheme name (figure legend).
    fn name(&self) -> &'static str;

    /// Route one request.
    fn select(&mut self, ctx: &PolicyCtx<'_>, req: &AppRequest) -> Source;

    /// Feedback after an application call completed. `source` is the
    /// device that serviced it, or `None` when the buffer cache absorbed
    /// the call entirely (no device was touched).
    fn observe(
        &mut self,
        ctx: &PolicyCtx<'_>,
        req: &AppRequest,
        source: Option<Source>,
        outcome: &ServiceOutcome,
    ) {
        let _ = (ctx, req, source, outcome);
    }

    /// A non-profiled program just used the disk (it is, or will be,
    /// spinning regardless of this policy's choices).
    fn on_external_disk(&mut self, now: SimTime) {
        let _ = now;
    }

    /// An evaluation stage ended; `report` carries what actually happened.
    fn on_stage_end(&mut self, ctx: &PolicyCtx<'_>, report: &StageReport) {
        let _ = (ctx, report);
    }

    /// The environment changed mid-run (link lost/regained, server
    /// unreachable/back, bandwidth fade). Policies that adapt should
    /// degrade to the least-bad source while the fault is active and
    /// re-decide when it clears; the default ignores the notice.
    fn on_fault(&mut self, ctx: &PolicyCtx<'_>, notice: FaultNotice) {
        let _ = (ctx, notice);
    }

    /// Replace the policy's execution profile mid-run (fault injection:
    /// a stale or corrupted profile landed). History-driven policies
    /// should adopt it and re-decide; everyone else ignores it.
    fn inject_profile(&mut self, ctx: &PolicyCtx<'_>, profile: ff_profile::Profile) {
        let _ = (ctx, profile);
    }

    /// The profile recorded for the finished run, if this policy builds
    /// one (persisted for the program's next execution, §2.3.1).
    fn recorded_profile(&mut self) -> Option<ff_profile::Profile> {
        None
    }

    /// Some policies manage the disk spin-down timeout themselves: the
    /// energy-adaptive BlueFS spins the disk down aggressively because
    /// the network remains available as a fallback. Returning `Some`
    /// overrides the simulated disk's timeout for this run.
    fn disk_timeout_override(&self) -> Option<Dur> {
        None
    }

    /// Drain the policy's decision history (when, source, trigger), if
    /// it keeps one. Surfaces as `SimReport::decisions` for post-run
    /// analysis.
    fn take_decision_log(&mut self) -> Vec<(SimTime, Source, &'static str)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(Source::Disk.other(), Source::Wnic);
        assert_eq!(Source::Wnic.other(), Source::Disk);
        assert_eq!(Source::Disk.other().other(), Source::Disk);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Source::Disk.label(), "disk");
        assert_eq!(Source::Wnic.label(), "wnic");
    }

    #[test]
    fn fault_notice_labels_are_stable() {
        assert_eq!(FaultNotice::LinkDown.label(), "link_down");
        assert_eq!(FaultNotice::LinkUp.label(), "link_up");
        assert_eq!(FaultNotice::ServerDown.label(), "server_down");
        assert_eq!(FaultNotice::ServerUp.label(), "server_up");
        assert_eq!(
            FaultNotice::BandwidthChanged { mbps: 2.0 }.label(),
            "bandwidth_changed"
        );
    }

    #[test]
    fn stage_report_accessors() {
        let r = StageReport {
            index: 0,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(52),
            observed: vec![],
            disk_energy: Joules(3.0),
            wnic_energy: Joules(1.5),
        };
        assert_eq!(r.span(), Dur::from_secs(42));
        assert_eq!(r.total_energy(), Joules(4.5));
    }
}
