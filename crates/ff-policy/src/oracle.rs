//! An offline near-optimal baseline (extension).
//!
//! FlexFetch's premise is that history predicts the future; the natural
//! upper bound is a scheme that *knows* the future. [`Oracle`] is given
//! the profile of the run actually being replayed and plans per-stage
//! device choices by dynamic programming:
//!
//! * stages are the same 40 s windows FlexFetch evaluates;
//! * the per-stage cost of each device comes from the same estimator
//!   (including parking costs), conditioned on the disk's spin state at
//!   the stage boundary;
//! * the DP tracks that spin state across stages, so the plan accounts
//!   for spin-up/-down round trips between consecutive choices.
//!
//! The result is not exactly optimal for the replay (stage boundaries
//! are wall-clock there, and the buffer cache shifts traffic), but it is
//! a tight, honest reference: FlexFetch's distance above it is its
//! *regret* from having only history instead of the future.

use crate::rules::decide;
use crate::source::{AppRequest, Policy, PolicyCtx, Source, StageReport};
use ff_base::Dur;
use ff_device::{DiskModel, DiskParams, DiskState, PowerModel, WnicModel, WnicParams};
use ff_profile::{Estimator, Profile};
use ff_trace::DiskLayout;

/// The planned choice sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OraclePlan {
    /// One choice per evaluation stage.
    pub per_stage: Vec<Source>,
}

/// Build the oracle plan for `true_profile` (the profile of the run that
/// will be replayed).
pub fn plan_oracle(
    true_profile: &Profile,
    layout: &DiskLayout,
    disk_params: &DiskParams,
    wnic_params: &WnicParams,
    stage_len: Dur,
    loss_rate: f64,
) -> OraclePlan {
    let stages = true_profile.stages(stage_len);
    if stages.is_empty() {
        return OraclePlan {
            per_stage: vec![Source::Disk],
        };
    }
    let est = Estimator::new(layout);

    // Per (stage, disk-up?) costs and the disk state each option leaves
    // behind. The WNIC is approximated as starting each stage from PSM —
    // its transition costs are an order of magnitude below the disk's.
    #[derive(Clone, Copy, Default)]
    struct Opt {
        /// Serving device's own cost for the stage.
        energy: f64,
        time: f64,
        /// State-transition bookkeeping charged to the total only (e.g.
        /// the idle disk draining to standby during a network stage) —
        /// kept out of the per-stage permissibility test.
        extra: f64,
        disk_up_after: bool,
    }
    let n = stages.len();
    let mut disk_opt = vec![[Opt::default(); 2]; n];
    let mut wnic_opt = vec![[Opt::default(); 2]; n];

    for (i, stage) in stages.iter().enumerate() {
        for (s, start_up) in [(0usize, false), (1usize, true)] {
            let mk_disk = || {
                if start_up {
                    DiskModel::new(disk_params.clone())
                } else {
                    DiskModel::new_standby(disk_params.clone())
                }
            };
            // Disk option: disk serves. The estimator's parking run leaves
            // the model in standby, but whether the *stage itself* ends
            // with the disk up depends on its trailing gap; re-walk
            // without parking to read the end state.
            let d = est.disk_cost(&stage.bursts, mk_disk());
            let mut probe = mk_disk();
            let mut t = probe.clock();
            for pb in &stage.bursts {
                for req in &pb.burst.requests {
                    let dev_req = ff_device::DeviceRequest {
                        dir: match req.op {
                            ff_trace::IoOp::Read => ff_device::Dir::Read,
                            ff_trace::IoOp::Write => ff_device::Dir::Write,
                        },
                        bytes: req.len,
                        block: layout.block_of(req.file, req.offset),
                    };
                    t = probe.service(t, &dev_req).complete;
                }
                t += pb.gap_after;
                probe.advance_to(t);
            }
            let up_after = matches!(probe.state(), DiskState::Idle | DiskState::SpinningUp(_));
            disk_opt[i][s] = Opt {
                energy: d.energy.get(),
                time: d.time.as_secs_f64(),
                extra: 0.0,
                disk_up_after: up_after,
            };

            // Network option: WNIC serves; an initially-up disk drains to
            // standby on its own (cost included), a down disk stays down.
            let w = est.wnic_cost(&stage.bursts, WnicModel::new(wnic_params.clone()));
            let mut idle_disk = mk_disk();
            idle_disk.reset_meter();
            let end = idle_disk.clock() + w.time;
            idle_disk.advance_to(end);
            wnic_opt[i][s] = Opt {
                energy: w.energy.get(),
                time: w.time.as_secs_f64(),
                extra: idle_disk.energy().get(),
                disk_up_after: start_up && w.time.as_secs_f64() < disk_params.timeout.as_secs_f64(),
            };
        }
    }

    // DP backwards: best[i][s] = min total energy over permissible
    // choices. Permissibility applies the §2.2 rules *per stage* (the
    // network may only be used where the live scheme would be allowed to
    // trade time for energy); the DP then minimises energy over the
    // permitted tree — the best any rules-respecting scheme could do.
    let mut best = vec![[f64::INFINITY; 2]; n + 1];
    best[n] = [0.0, 0.0];
    let mut choice = vec![[Source::Disk; 2]; n];
    for i in (0..n).rev() {
        for s in 0..2 {
            let d = disk_opt[i][s];
            let w = wnic_opt[i][s];
            let d_total = d.energy + d.extra + best[i + 1][usize::from(d.disk_up_after)];
            let w_total = w.energy + w.extra + best[i + 1][usize::from(w.disk_up_after)];
            let w_permitted = decide(
                ff_profile::Estimate {
                    time: Dur::from_secs_f64(d.time),
                    energy: ff_base::Joules(d.energy),
                },
                ff_profile::Estimate {
                    time: Dur::from_secs_f64(w.time),
                    energy: ff_base::Joules(w.energy),
                },
                loss_rate,
            ) == Source::Wnic;
            let (c, v) = if w_permitted && w_total < d_total {
                (Source::Wnic, w_total)
            } else {
                (Source::Disk, d_total)
            };
            choice[i][s] = c;
            best[i][s] = v;
        }
    }

    // Roll the plan forward from a standby disk (the runs start parked).
    let mut per_stage = Vec::with_capacity(n);
    let mut s = 0usize;
    for i in 0..n {
        let c = choice[i][s];
        per_stage.push(c);
        let opt = match c {
            Source::Disk => disk_opt[i][s],
            Source::Wnic => wnic_opt[i][s],
        };
        s = usize::from(opt.disk_up_after);
    }
    OraclePlan { per_stage }
}

/// The oracle policy: replays a precomputed per-stage plan.
#[derive(Debug, Clone)]
pub struct Oracle {
    plan: OraclePlan,
    stage: usize,
}

impl Oracle {
    /// Policy following `plan`.
    pub fn new(plan: OraclePlan) -> Self {
        Oracle { plan, stage: 0 }
    }

    /// Convenience: plan directly from the true profile and constants.
    pub fn for_run(
        true_profile: &Profile,
        layout: &DiskLayout,
        disk: &DiskParams,
        wnic: &WnicParams,
        stage_len: Dur,
        loss_rate: f64,
    ) -> Self {
        Oracle::new(plan_oracle(
            true_profile,
            layout,
            disk,
            wnic,
            stage_len,
            loss_rate,
        ))
    }

    /// The planned choices.
    pub fn plan(&self) -> &OraclePlan {
        &self.plan
    }
}

impl Policy for Oracle {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn select(&mut self, _ctx: &PolicyCtx<'_>, _req: &AppRequest) -> Source {
        let idx = self.stage.min(self.plan.per_stage.len() - 1);
        self.plan.per_stage[idx]
    }

    fn on_stage_end(&mut self, _ctx: &PolicyCtx<'_>, _report: &StageReport) {
        self.stage += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_profile::Profiler;
    use ff_trace::{Grep, Make, Workload, Xmms};

    fn plan_for(trace: &ff_trace::Trace) -> OraclePlan {
        let layout = DiskLayout::build(&trace.files, 7);
        let profile = Profiler::standard().profile(trace);
        plan_oracle(
            &profile,
            &layout,
            &DiskParams::hitachi_dk23da(),
            &WnicParams::cisco_aironet350(),
            Dur::from_secs(40),
            0.25,
        )
    }

    #[test]
    fn bursty_run_plans_disk() {
        let t = Grep::default().build(1);
        let plan = plan_for(&t);
        assert_eq!(
            plan.per_stage[0],
            Source::Disk,
            "grep's dense burst belongs on disk"
        );
    }

    #[test]
    fn sparse_run_plans_network() {
        let t = Xmms {
            play_limit: Some(Dur::from_secs(300)),
            ..Default::default()
        }
        .build(1);
        let plan = plan_for(&t);
        let wnic_stages = plan
            .per_stage
            .iter()
            .filter(|&&s| s == Source::Wnic)
            .count();
        assert!(
            wnic_stages * 2 > plan.per_stage.len(),
            "paced streaming belongs on the WNIC: {:?}",
            plan.per_stage
        );
    }

    #[test]
    fn mixed_run_plans_both() {
        let t = Grep::default()
            .build(1)
            .concat(&Make::default().build(1), Dur::from_secs(2))
            .unwrap();
        let plan = plan_for(&t);
        assert!(plan.per_stage.contains(&Source::Disk));
        assert!(plan.per_stage.contains(&Source::Wnic));
    }

    #[test]
    fn empty_profile_degenerates() {
        let layout = DiskLayout::build(&ff_trace::FileSet::new(), 0);
        let plan = plan_oracle(
            &Profile::empty("x"),
            &layout,
            &DiskParams::hitachi_dk23da(),
            &WnicParams::cisco_aironet350(),
            Dur::from_secs(40),
            0.25,
        );
        assert_eq!(plan.per_stage.len(), 1);
    }

    #[test]
    fn policy_walks_the_plan() {
        let plan = OraclePlan {
            per_stage: vec![Source::Disk, Source::Wnic, Source::Disk],
        };
        let mut p = Oracle::new(plan);
        assert_eq!(p.name(), "Oracle");
        // Fake stage advance without a ctx: on_stage_end only counts.
        assert_eq!(p.stage, 0);
        p.stage += 1;
        assert_eq!(p.plan().per_stage[p.stage], Source::Wnic);
    }
}
