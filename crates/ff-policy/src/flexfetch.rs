//! The FlexFetch policy (§2.2–2.3).
//!
//! Per evaluation stage, the policy estimates `(T, E)` for servicing the
//! stage's profiled bursts on each device (starting from the devices'
//! *current* power states) and applies the §2.2 rules. With
//! `adaptive = true` it additionally implements every §2.3 mechanism:
//!
//! * **profile splicing & re-evaluation** (§2.3.1) — whenever the bytes
//!   observed this run pass the bytes of the first *N* profiled bursts,
//!   the observed prefix replaces those bursts and the rules re-run on
//!   the assembled profile's upcoming stage;
//! * **stage-end audit** (§2.3.1) — at each stage boundary, the measured
//!   energy of the chosen device is compared against the estimated cost
//!   of the alternative on the *observed* bursts; if the alternative was
//!   cheaper, the next stage uses it, disregarding the profile;
//! * **cache filtering** (§2.3.2) — profiled requests resident in the
//!   buffer cache are removed before estimation;
//! * **free riding** (§2.3.3) — while non-profiled programs keep the disk
//!   spinning (external request intervals below the spin-down timeout),
//!   requests ride the disk for free.
//!
//! With `adaptive = false` the policy is the paper's **FlexFetch-static**
//! strawman: it trusts the recorded profile stage by stage and never
//! corrects course.

use crate::rules::decide;
use crate::source::{AppRequest, FaultNotice, Policy, PolicyCtx, Source, StageReport};
use ff_base::{Bytes, Dur, SimTime};
use ff_device::ServiceOutcome;
use ff_profile::{
    burst::OnlineBurstBuilder, estimate::filter_resident, stages_of, BurstExtractor, Estimator,
    Profile, ProfiledBurst,
};

/// FlexFetch tuning.
#[derive(Debug, Clone)]
pub struct FlexFetchConfig {
    /// Maximum tolerable I/O performance loss (§2.2; experiments: 25 %).
    pub loss_rate: f64,
    /// Evaluation-stage length (§2.2; experiments: 40 s).
    pub stage_len: Dur,
    /// Enable the §2.3 run-time adaptation. `false` = FlexFetch-static.
    pub adaptive: bool,
    /// Hysteresis for the stage-end audit: the alternative must beat the
    /// measured cost by this relative margin before the decision flips.
    /// Damps flapping when the two options are within estimation noise
    /// (each flap costs a spin-up/spin-down round trip).
    pub audit_margin: f64,
    /// Burst extraction parameters for the on-line profiler.
    pub extractor: BurstExtractor,
}

impl Default for FlexFetchConfig {
    fn default() -> Self {
        FlexFetchConfig {
            loss_rate: 0.25,
            stage_len: Dur::from_secs(40),
            adaptive: true,
            audit_margin: 0.10,
            extractor: BurstExtractor::default(),
        }
    }
}

/// The history-aware, environment-adaptive data-source selector.
#[derive(Debug, Clone)]
pub struct FlexFetch {
    config: FlexFetchConfig,
    /// The profile recorded in a prior run (may be empty on first run).
    old_profile: Profile,
    /// On-line profiler for the current run.
    online: OnlineBurstBuilder,
    /// Closed bursts observed so far this run.
    observed: Vec<ProfiledBurst>,
    /// Current stage decision.
    current: Source,
    /// Whether the initial decision has been made.
    decided: bool,
    /// Last re-evaluation's N (bursts of the old profile covered).
    last_n: usize,
    /// Stage ordinal.
    stage_index: usize,
    /// Set when the stage-end audit overrides the profile for one stage.
    forced: Option<Source>,
    /// Timestamps of the last two external (non-profiled) disk uses.
    last_external: Option<SimTime>,
    prev_external: Option<SimTime>,
    /// Decision history: `(when, what, why)` — inspection/report hook.
    log: Vec<(SimTime, Source, &'static str)>,
    /// Whether any decision was ever logged. Kept separate from
    /// `log.is_empty()` so draining the log mid-run (incremental
    /// observability export) cannot perturb decision behaviour.
    logged: bool,
    /// Instant the current decision took effect (audit stability gate).
    stable_since: SimTime,
    /// The wireless link is currently down (fault notice pending an up).
    link_down: bool,
    /// The remote server is currently unreachable.
    server_down: bool,
}

impl FlexFetch {
    /// Adaptive FlexFetch driven by `profile`.
    pub fn new(profile: Profile, config: FlexFetchConfig) -> Self {
        let online = OnlineBurstBuilder::new(config.extractor);
        FlexFetch {
            config,
            old_profile: profile,
            online,
            observed: Vec::new(),
            current: Source::Disk,
            decided: false,
            last_n: 0,
            stage_index: 0,
            forced: None,
            last_external: None,
            prev_external: None,
            log: Vec::new(),
            logged: false,
            stable_since: SimTime::ZERO,
            link_down: false,
            server_down: false,
        }
    }

    /// The paper's FlexFetch-static baseline (§3.3.4): same profile-based
    /// decisions, no run-time adaptation.
    pub fn new_static(profile: Profile) -> Self {
        FlexFetch::new(
            profile,
            FlexFetchConfig {
                adaptive: false,
                ..Default::default()
            },
        )
    }

    /// Current stage decision (inspection hook).
    pub fn current_source(&self) -> Source {
        self.current
    }

    /// Decision history: every change of data source with its trigger.
    pub fn decision_log(&self) -> &[(SimTime, Source, &'static str)] {
        &self.log
    }

    fn set_current(&mut self, now: SimTime, src: Source, why: &'static str) {
        if self.current != src || !self.logged {
            self.log.push((now, src, why));
            self.logged = true;
            self.stable_since = now;
        }
        self.current = src;
    }

    /// Whether the network path is currently known-bad (link lost or
    /// server unreachable). While degraded, the adaptive policy pins
    /// itself to the disk — the least-bad reachable source.
    pub fn degraded(&self) -> bool {
        self.link_down || self.server_down
    }

    /// §2.3.3 free-rider check: the disk is being kept spinning by
    /// others iff the last two external uses are within the spin-down
    /// timeout of each other *and* of now.
    fn free_ride_active(&self, ctx: &PolicyCtx<'_>) -> bool {
        let timeout = ctx.disk.params().timeout;
        match (self.last_external, self.prev_external) {
            (Some(last), Some(prev)) => {
                ctx.now.saturating_since(last) < timeout && last.saturating_since(prev) < timeout
            }
            _ => false,
        }
    }

    /// Decide the source for the burst window `bursts`, starting from the
    /// live device states in `ctx`.
    fn decide_for(&self, ctx: &PolicyCtx<'_>, bursts: &[ProfiledBurst]) -> Source {
        if bursts.is_empty() {
            // Nothing known about the future: keep whatever we have.
            return self.current;
        }
        let bursts = if self.config.adaptive {
            filter_resident(bursts, |f, o, l| (ctx.resident)(f, o, l))
        } else {
            bursts.to_vec()
        };
        let est = Estimator::new(ctx.layout);
        // The paper's literal (T_disk, E_disk) vs (T_network, E_network):
        // each device's own energy while it services the stage. E_disk
        // includes the disk idling at 1.6 W between bursts; E_network
        // includes the card's PSM dwell at 0.39 W — the asymmetry that
        // sends sparse workloads to the network.
        let disk = est.disk_cost(&bursts, ctx.disk.clone());
        let wnic = est.wnic_cost(&bursts, ctx.wnic.clone());
        decide(disk, wnic, self.config.loss_rate)
    }

    /// The upcoming stage-worth of bursts according to the (possibly
    /// spliced) profile.
    fn upcoming_stage(&self, skip: usize) -> Vec<ProfiledBurst> {
        let remaining: Vec<ProfiledBurst> =
            self.old_profile.bursts.iter().skip(skip).cloned().collect();
        stages_of(&remaining, self.config.stage_len)
            .into_iter()
            .next()
            .map(|s| s.bursts)
            .unwrap_or_default()
    }

    /// Pull newly closed bursts out of the on-line profiler.
    fn sync_observed(&mut self) {
        self.observed.extend(self.online.take_completed());
    }
}

impl Policy for FlexFetch {
    fn name(&self) -> &'static str {
        if self.config.adaptive {
            "FlexFetch"
        } else {
            "FlexFetch-static"
        }
    }

    fn select(&mut self, ctx: &PolicyCtx<'_>, req: &AppRequest) -> Source {
        if !self.decided {
            self.decided = true;
            if self.old_profile.is_empty() {
                // First-ever run: no history. Start from the disk and let
                // the stage-end audit steer (adaptive), or stay (static).
                self.set_current(ctx.now, Source::Disk, "initial:no-profile");
            } else {
                let stage = self.upcoming_stage(0);
                let d = self.decide_for(ctx, &stage);
                self.set_current(ctx.now, d, "initial:profile");
            }
        }
        let _ = req;
        if self.config.adaptive && self.degraded() {
            // §2.3 degradation: the network path is known-bad; the disk
            // is the least-bad reachable source until the fault clears.
            return Source::Disk;
        }
        if self.config.adaptive && self.current == Source::Wnic && self.free_ride_active(ctx) {
            // Someone else is paying for the spinning disk — ride along.
            return Source::Disk;
        }
        self.current
    }

    fn observe(
        &mut self,
        ctx: &PolicyCtx<'_>,
        req: &AppRequest,
        _source: Option<Source>,
        outcome: &ServiceOutcome,
    ) {
        let start = outcome.complete - outcome.service_time;
        self.online.observe(
            start,
            outcome.complete,
            req.file,
            req.op,
            req.offset,
            req.len,
        );
        if !self.config.adaptive {
            return;
        }
        self.sync_observed();
        // §2.3.1 re-evaluation: observed bytes just passed the first N
        // profiled bursts → splice and re-run the rules. Suspended while
        // a stage-end audit override is active (the profile was proven
        // ineffective; measurements drive until it recovers).
        let bytes: Bytes =
            self.online.observed_bytes() + self.observed.iter().map(|b| b.burst.bytes()).sum();
        let n = self.old_profile.bursts_covering(bytes);
        if n > self.last_n && !self.old_profile.is_empty() {
            self.last_n = n;
            if self.forced.is_none() && !self.degraded() {
                let stage = self.upcoming_stage(n);
                if !stage.is_empty() {
                    let d = self.decide_for(ctx, &stage);
                    self.set_current(ctx.now, d, "reeval:splice");
                }
            }
        }
    }

    fn on_external_disk(&mut self, now: SimTime) {
        self.prev_external = self.last_external;
        self.last_external = Some(now);
    }

    fn on_stage_end(&mut self, ctx: &PolicyCtx<'_>, report: &StageReport) {
        self.stage_index = report.index + 1;
        if !self.config.adaptive {
            // Static: re-decide for the next stage purely from the
            // recorded profile position (by stage count).
            let skip: usize = self
                .old_profile
                .stages(self.config.stage_len)
                .iter()
                .take(self.stage_index)
                .map(|s| s.len())
                .sum();
            let stage = self.upcoming_stage(skip);
            if !stage.is_empty() {
                let d = self.decide_for(ctx, &stage);
                self.set_current(ctx.now, d, "static:stage");
            }
            return;
        }
        self.sync_observed();
        if self.degraded() {
            // Mid-outage: measured evidence is dominated by the fault,
            // and the network is not a legal choice anyway. Stay pinned.
            return;
        }
        if report.observed.is_empty() {
            // Nothing reached a device this stage — no evidence to audit.
            return;
        }
        if self.stable_since > report.start {
            // The decision changed mid-stage: the observed mix belongs
            // partly to the previous choice, so judging the new one on it
            // would be unfair. Audit after a full stable stage.
            return;
        }

        // §2.3.1 stage-end audit: re-run the §2.2 rules over what was
        // *actually observed* this stage, with the devices' current
        // states (so a bandwidth change or a spun-up disk shows up). If
        // the stage's true winner differs from the device the profile
        // chose, the next stage uses the winner, "disregarding the
        // profile"; the profile resumes steering only once its advice
        // agrees with measured reality again.
        let est = Estimator::new(ctx.layout);
        let disk_est = est.disk_cost(&report.observed, ctx.disk.clone());
        let wnic_est = est.wnic_cost(&report.observed, ctx.wnic.clone());
        let winner = decide(disk_est, wnic_est, self.config.loss_rate);

        // Hysteresis: flipping costs a device transition, so require the
        // winner to either dominate outright or clear the energy margin.
        let (cur_est, win_est) = match (self.current, winner) {
            (Source::Disk, Source::Wnic) => (disk_est, wnic_est),
            (Source::Wnic, Source::Disk) => (wnic_est, disk_est),
            _ => (disk_est, disk_est), // same device — no flip below
        };
        let dominates = win_est.time <= cur_est.time && win_est.energy <= cur_est.energy;
        let energy_margin =
            win_est.energy.get() < cur_est.energy.get() * (1.0 - self.config.audit_margin);
        // The rules may prefer the winner on *time* (the loss-rate bound
        // rejects a slow-but-cheap device); gate that path on a time
        // margin instead.
        let time_margin = win_est.time.as_secs_f64()
            < cur_est.time.as_secs_f64() * (1.0 - self.config.audit_margin);
        let flip = winner != self.current && (dominates || energy_margin || time_margin);

        let stage = self.upcoming_stage(self.last_n);
        let profile_choice = (!stage.is_empty()).then(|| self.decide_for(ctx, &stage));
        let new = if flip { winner } else { self.current };
        self.set_current(
            ctx.now,
            new,
            if flip { "audit:flip" } else { "audit:confirm" },
        );
        self.forced = match profile_choice {
            Some(pc) if pc == new => None,
            _ => Some(new),
        };
    }

    fn on_fault(&mut self, ctx: &PolicyCtx<'_>, notice: FaultNotice) {
        if !self.config.adaptive {
            // FlexFetch-static trusts the recorded profile and never
            // corrects course — faults included (the router still
            // refuses to use an unreachable device on its behalf).
            return;
        }
        match notice {
            FaultNotice::LinkDown => self.link_down = true,
            FaultNotice::ServerDown => self.server_down = true,
            FaultNotice::LinkUp => self.link_down = false,
            FaultNotice::ServerUp => self.server_down = false,
            FaultNotice::BandwidthChanged { .. } => {
                // The network's cost basis shifted: re-run the rules on
                // the upcoming stage against the new link rate, unless an
                // audit override says measurements are steering.
                if self.decided && !self.degraded() && self.forced.is_none() {
                    let stage = self.upcoming_stage(self.last_n);
                    if !stage.is_empty() {
                        let d = self.decide_for(ctx, &stage);
                        self.set_current(ctx.now, d, "fault:bandwidth");
                    }
                }
                return;
            }
        }
        if self.degraded() {
            self.set_current(ctx.now, Source::Disk, "fault:degraded");
        } else {
            // The last network fault cleared. Any audit override was
            // earned under faulted conditions — drop it and let the
            // profile re-decide from the devices' current states.
            self.forced = None;
            if self.decided {
                let stage = self.upcoming_stage(self.last_n);
                if !stage.is_empty() {
                    let d = self.decide_for(ctx, &stage);
                    self.set_current(ctx.now, d, "fault:recovered");
                }
            }
        }
    }

    fn inject_profile(&mut self, ctx: &PolicyCtx<'_>, profile: Profile) {
        // A replacement execution profile landed mid-run (stale or
        // corrupted history). Both variants adopt it — that is the point
        // of the fault — but only the adaptive variant can later audit
        // its way out of bad advice. Splice bookkeeping restarts: the
        // observed prefix means nothing against the new burst list.
        self.old_profile = profile;
        self.last_n = 0;
        self.forced = None;
        if self.config.adaptive && self.degraded() {
            return; // stay pinned to the disk until the outage clears
        }
        if self.decided {
            let stage = self.upcoming_stage(0);
            if !stage.is_empty() {
                let d = self.decide_for(ctx, &stage);
                self.set_current(ctx.now, d, "fault:profile");
            }
        }
    }

    fn take_decision_log(&mut self) -> Vec<(SimTime, Source, &'static str)> {
        std::mem::take(&mut self.log)
    }

    fn recorded_profile(&mut self) -> Option<Profile> {
        self.sync_observed();
        let mut bursts = std::mem::take(&mut self.observed);
        bursts.extend(self.online.flush());
        Some(Profile {
            app: self.old_profile.app.clone(),
            bursts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::Joules;
    use ff_device::{DiskModel, DiskParams, WnicModel, WnicParams};
    use ff_profile::{IoBurst, MergedRequest};
    use ff_trace::{DiskLayout, FileId, FileMeta, FileSet, IoOp};

    struct World {
        disk: DiskModel,
        wnic: WnicModel,
        layout: DiskLayout,
    }

    fn world() -> World {
        let mut fs = FileSet::new();
        fs.insert(FileMeta {
            id: FileId(1),
            name: "f".into(),
            size: Bytes::mib(400),
        });
        World {
            disk: DiskModel::new(DiskParams::hitachi_dk23da()),
            wnic: WnicModel::new(WnicParams::cisco_aironet350()),
            layout: DiskLayout::build(&fs, 1),
        }
    }

    fn ctx<'a>(
        w: &'a World,
        now: SimTime,
        resident: &'a dyn Fn(FileId, u64, Bytes) -> f64,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            now,
            disk: &w.disk,
            wnic: &w.wnic,
            layout: &w.layout,
            resident,
        }
    }

    fn pb(start_ms: u64, dur_ms: u64, gap_ms: u64, bytes: u64) -> ProfiledBurst {
        ProfiledBurst {
            burst: IoBurst {
                start: SimTime::from_millis(start_ms),
                end: SimTime::from_millis(start_ms + dur_ms),
                requests: vec![MergedRequest {
                    file: FileId(1),
                    op: IoOp::Read,
                    offset: 0,
                    len: Bytes(bytes),
                }],
            },
            gap_after: Dur::from_millis(gap_ms),
        }
    }

    /// A bursty profile: one dense multi-megabyte burst → disk territory.
    fn bursty_profile() -> Profile {
        Profile {
            app: "bursty".into(),
            bursts: vec![pb(0, 500, 0, 50_000_000)],
        }
    }

    /// An intermittent profile: small reads every 6 s → WNIC territory
    /// (long enough for the card to drop to PSM between refills, short
    /// enough that a disk would idle at 1.6 W the whole time — and the
    /// margin survives the first stage's disk drain-down, where the
    /// network option still pays 20 s of disk idle before the timeout).
    fn intermittent_profile() -> Profile {
        let mut t = 0;
        let bursts = (0..30)
            .map(|_| {
                let b = pb(t, 5, 6_000, 65_536);
                t += 6_005;
                b
            })
            .collect();
        Profile {
            app: "stream".into(),
            bursts,
        }
    }

    fn nores(_: FileId, _: u64, _: Bytes) -> f64 {
        0.0
    }

    fn any_req() -> AppRequest {
        AppRequest {
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(65_536),
        }
    }

    #[test]
    fn bursty_profile_selects_disk() {
        let w = world();
        let mut p = FlexFetch::new(bursty_profile(), FlexFetchConfig::default());
        assert_eq!(
            p.select(&ctx(&w, SimTime::ZERO, &nores), &any_req()),
            Source::Disk
        );
    }

    #[test]
    fn intermittent_profile_selects_wnic() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        assert_eq!(
            p.select(&ctx(&w, SimTime::ZERO, &nores), &any_req()),
            Source::Wnic
        );
    }

    #[test]
    fn static_and_adaptive_agree_on_initial_decision() {
        let w = world();
        let mut a = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let mut s = FlexFetch::new_static(intermittent_profile());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(a.select(&c, &any_req()), s.select(&c, &any_req()));
        assert_eq!(a.name(), "FlexFetch");
        assert_eq!(s.name(), "FlexFetch-static");
    }

    #[test]
    fn free_rider_overrides_wnic_choice() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::from_secs(10), &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        // xmms hits the disk twice, 5 s apart — well inside the timeout.
        p.on_external_disk(SimTime::from_secs(4));
        p.on_external_disk(SimTime::from_secs(9));
        assert_eq!(p.select(&c, &any_req()), Source::Disk, "must free-ride");
        // Static version ignores it.
        let mut s = FlexFetch::new_static(intermittent_profile());
        s.select(&c, &any_req());
        s.on_external_disk(SimTime::from_secs(4));
        s.on_external_disk(SimTime::from_secs(9));
        assert_eq!(s.select(&c, &any_req()), Source::Wnic);
    }

    #[test]
    fn free_ride_expires_with_the_timeout() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c0 = ctx(&w, SimTime::from_secs(10), &nores);
        p.select(&c0, &any_req());
        p.on_external_disk(SimTime::from_secs(4));
        p.on_external_disk(SimTime::from_secs(9));
        // 30 s later the external activity is stale (> 20 s timeout).
        let c1 = ctx(&w, SimTime::from_secs(39), &nores);
        assert_eq!(p.select(&c1, &any_req()), Source::Wnic);
    }

    #[test]
    fn stage_audit_flips_a_wrong_decision() {
        let w = world();
        // Profile says intermittent (→ WNIC), but the observed stage was
        // one huge burst that the disk would have served far cheaper.
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        let report = StageReport {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(42),
            observed: vec![pb(0, 2_000, 0, 60_000_000)],
            disk_energy: Joules::ZERO,
            wnic_energy: Joules(400.0), // measured: WNIC was expensive
        };
        p.on_stage_end(&c, &report);
        assert_eq!(
            p.current_source(),
            Source::Disk,
            "audit must switch to the disk"
        );
    }

    #[test]
    fn stage_audit_keeps_a_good_decision() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        p.select(&c, &any_req());
        // Observed matches the profile; WNIC really was cheap.
        let report = StageReport {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(42),
            observed: intermittent_profile().bursts[..20].to_vec(),
            disk_energy: Joules::ZERO,
            wnic_energy: Joules(30.0),
        };
        p.on_stage_end(&c, &report);
        assert_eq!(p.current_source(), Source::Wnic);
    }

    #[test]
    fn reevaluation_splices_observed_prefix() {
        let w = world();
        // Old profile: small first burst (100 KB), then a huge tail the
        // rules would send to the disk.
        let mut bursts = vec![pb(0, 10, 1_000, 100_000)];
        bursts.push(pb(2_000, 500, 0, 80_000_000));
        let profile = Profile {
            app: "x".into(),
            bursts,
        };
        let mut p = FlexFetch::new(profile, FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        let initial = p.select(&c, &any_req());
        assert_eq!(initial, Source::Disk, "tail dominates the estimate");
        // Observe > 100 KB: crosses burst 1's bytes → re-evaluation runs
        // against the remaining profile (still the huge burst → disk).
        let out = ServiceOutcome {
            complete: SimTime::from_millis(10),
            service_time: Dur::from_millis(10),
            energy: Joules(0.1),
        };
        let req = AppRequest {
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(200_000),
        };
        p.observe(&c, &req, Some(Source::Disk), &out);
        assert_eq!(p.current_source(), Source::Disk);
    }

    #[test]
    fn empty_profile_defaults_to_disk_until_audited() {
        let w = world();
        let mut p = FlexFetch::new(Profile::empty("new-app"), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Disk);
    }

    #[test]
    fn recorded_profile_contains_observed_run() {
        let w = world();
        let mut p = FlexFetch::new(Profile::empty("app"), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        p.select(&c, &any_req());
        let out = ServiceOutcome {
            complete: SimTime::from_millis(5),
            service_time: Dur::from_millis(5),
            energy: Joules(0.01),
        };
        p.observe(&c, &any_req(), Some(Source::Disk), &out);
        let recorded = p.recorded_profile().unwrap();
        assert_eq!(recorded.app, "app");
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded.total_bytes(), Bytes(65_536));
    }

    #[test]
    fn forced_override_suspends_splice_reevaluation() {
        let w = world();
        // Profile says WNIC; force an audit flip to disk, then feed
        // observations that would normally trigger a splice re-eval back
        // to WNIC — it must be suppressed while forced.
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        let report = StageReport {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(42),
            observed: vec![pb(0, 2_000, 0, 60_000_000)],
            disk_energy: Joules::ZERO,
            wnic_energy: Joules(400.0),
        };
        p.on_stage_end(&c, &report);
        assert_eq!(p.current_source(), Source::Disk, "audit flips to disk");
        // Observe enough bytes to cross several profile bursts.
        let out = ServiceOutcome {
            complete: SimTime::from_secs(43),
            service_time: Dur::from_millis(10),
            energy: Joules(0.1),
        };
        let big = AppRequest {
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(1_000_000),
        };
        p.observe(&c, &big, Some(Source::Disk), &out);
        assert_eq!(
            p.current_source(),
            Source::Disk,
            "splice re-eval must stay suspended while the audit override holds"
        );
    }

    #[test]
    fn static_variant_advances_stage_by_stage() {
        let w = world();
        // Profile: a WNIC-ish first stage (sparse) then a disk-ish second
        // stage (one huge burst). Static FlexFetch must switch at the
        // stage boundary purely from the profile.
        let mut bursts: Vec<ProfiledBurst> = Vec::new();
        let mut t = 0;
        for _ in 0..8 {
            bursts.push(pb(t, 5, 6_000, 65_536)); // sparse ~48 s
            t += 6_005;
        }
        bursts.push(pb(t, 2_000, 0, 80_000_000)); // dense tail
        let profile = Profile {
            app: "two-phase".into(),
            bursts,
        };
        let mut p = FlexFetch::new_static(profile);
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic, "stage 1 is sparse");
        let report = StageReport {
            index: 0,
            start: SimTime::ZERO,
            end: SimTime::from_secs(40),
            observed: vec![],
            disk_energy: Joules(1.0),
            wnic_energy: Joules(1.0),
        };
        p.on_stage_end(&c, &report);
        assert_eq!(
            p.current_source(),
            Source::Disk,
            "stage 2 of the profile is the dense burst"
        );
    }

    #[test]
    fn free_ride_needs_two_external_touches() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::from_secs(10), &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        // A single external touch is not an interval — no free ride yet.
        p.on_external_disk(SimTime::from_secs(9));
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        p.on_external_disk(SimTime::from_secs(9) + Dur::from_secs(1));
        assert_eq!(p.select(&c, &any_req()), Source::Disk);
    }

    #[test]
    fn link_outage_degrades_to_disk_and_recovers() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        p.on_fault(&c, FaultNotice::LinkDown);
        assert!(p.degraded());
        assert_eq!(p.select(&c, &any_req()), Source::Disk, "must degrade");
        let c1 = ctx(&w, SimTime::from_secs(5), &nores);
        p.on_fault(&c1, FaultNotice::LinkUp);
        assert!(!p.degraded());
        assert_eq!(
            p.select(&c1, &any_req()),
            Source::Wnic,
            "profile steers again once the fault clears"
        );
        let triggers: Vec<&str> = p.decision_log().iter().map(|d| d.2).collect();
        assert!(triggers.contains(&"fault:degraded"), "{triggers:?}");
        assert!(triggers.contains(&"fault:recovered"), "{triggers:?}");
    }

    #[test]
    fn overlapping_faults_recover_only_when_all_clear() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        p.select(&c, &any_req());
        p.on_fault(&c, FaultNotice::LinkDown);
        p.on_fault(&c, FaultNotice::ServerDown);
        p.on_fault(&c, FaultNotice::LinkUp);
        assert!(p.degraded(), "server is still down");
        assert_eq!(p.select(&c, &any_req()), Source::Disk);
        p.on_fault(&c, FaultNotice::ServerUp);
        assert!(!p.degraded());
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
    }

    #[test]
    fn static_variant_ignores_fault_notices() {
        let w = world();
        let mut p = FlexFetch::new_static(intermittent_profile());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        p.on_fault(&c, FaultNotice::LinkDown);
        assert!(!p.degraded());
        assert_eq!(
            p.select(&c, &any_req()),
            Source::Wnic,
            "static never corrects course; the router shields it"
        );
    }

    #[test]
    fn injected_profile_redecides() {
        let w = world();
        // Start on a sparse (WNIC) profile, then inject a dense one: the
        // policy must adopt it and flip to the disk with a fault trigger.
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        p.inject_profile(&c, bursty_profile());
        assert_eq!(p.current_source(), Source::Disk);
        assert_eq!(p.decision_log().last().map(|d| d.2), Some("fault:profile"));
    }

    #[test]
    fn bandwidth_change_triggers_reevaluation() {
        let mut w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        {
            let c = ctx(&w, SimTime::ZERO, &nores);
            assert_eq!(p.select(&c, &any_req()), Source::Wnic);
        }
        // The link collapses to a crawl: the same sparse stage is now far
        // slower over the network, so the re-decision flips to the disk.
        w.wnic
            .set_bandwidth(ff_base::BytesPerSec::from_mbit_per_sec(0.1));
        let c = ctx(&w, SimTime::ZERO, &nores);
        p.on_fault(&c, FaultNotice::BandwidthChanged { mbps: 0.1 });
        assert_eq!(
            p.decision_log().last().map(|d| d.2),
            Some("fault:bandwidth")
        );
    }

    #[test]
    fn decision_log_records_triggers() {
        let w = world();
        let mut p = FlexFetch::new(intermittent_profile(), FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &nores);
        p.select(&c, &any_req());
        let log = p.decision_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].2, "initial:profile");
        let drained = p.take_decision_log();
        assert_eq!(drained.len(), 1);
        assert!(p.decision_log().is_empty());
    }

    #[test]
    fn cache_filter_changes_the_decision() {
        let w = world();
        // Profile: one modest burst. If it is fully cached, the disk cost
        // collapses to idle-only and the decision may differ; here we
        // check that a fully-resident profile yields no device work, so
        // the previous (default disk) choice is kept rather than computed.
        let allres = |_: FileId, _: u64, _: Bytes| 1.0;
        let profile = Profile {
            app: "c".into(),
            bursts: vec![pb(0, 5, 0, 1_000_000)],
        };
        let mut p = FlexFetch::new(profile, FlexFetchConfig::default());
        let c = ctx(&w, SimTime::ZERO, &allres);
        // Fully resident single burst with zero gap → filtered to nothing
        // → keeps the default current source (disk).
        assert_eq!(p.select(&c, &any_req()), Source::Disk);
    }
}
