//! # ff-policy — the data-source selection policies
//!
//! Everything §2 and §3.1 of the paper describe as a "policy":
//!
//! * [`FlexFetch`] — the paper's contribution: profile-driven per-stage
//!   decisions (§2.2 rules 1–3 with a user loss rate), plus the §2.3
//!   run-time adaptation (profile splicing, stage-end audit, buffer-cache
//!   filtering, free-riding on an externally spun-up disk). With
//!   adaptation disabled it is the paper's **FlexFetch-static** baseline
//!   (§3.3.4–3.3.5).
//! * [`BlueFs`] — the reactive baseline modelled after BlueFS (OSDI'04)
//!   as the paper characterises it: per-request lowest-cost device
//!   selection from *current* device states plus ghost hints that spin
//!   the disk up once the foregone savings exceed the wake-up cost.
//! * [`DiskOnly`] / [`WnicOnly`] — the fixed baselines.
//!
//! The simulator talks to policies through the [`Policy`] trait and
//! [`PolicyCtx`].

//! ```
//! use ff_base::{Dur, Joules};
//! use ff_policy::{decide, Source};
//! use ff_profile::Estimate;
//!
//! // §2.2 rule 3: the network is 10 % slower but 50 % cheaper — within
//! // the user's 25 % loss budget, so it wins.
//! let disk = Estimate { time: Dur::from_secs(10), energy: Joules(20.0) };
//! let net = Estimate { time: Dur::from_secs(11), energy: Joules(10.0) };
//! assert_eq!(decide(disk, net, 0.25), Source::Wnic);
//! // With a 5 % budget the slowdown is unacceptable.
//! assert_eq!(decide(disk, net, 0.05), Source::Disk);
//! ```

#![warn(missing_docs)]

pub mod bluefs;
pub mod fixed;
pub mod flexfetch;
pub mod kind;
pub mod oracle;
pub mod rules;
pub mod source;

pub use bluefs::BlueFs;
pub use fixed::{DiskOnly, WnicOnly};
pub use flexfetch::{FlexFetch, FlexFetchConfig};
pub use kind::PolicyKind;
pub use oracle::{plan_oracle, Oracle, OraclePlan};
pub use rules::decide;
pub use source::{AppRequest, FaultNotice, Policy, PolicyCtx, Source, StageReport};
