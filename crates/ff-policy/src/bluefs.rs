//! The BlueFS-like reactive baseline (§1.2, §3.3).
//!
//! The paper characterises BlueFS (Nightingale & Flinn, OSDI'04) as a
//! scheme that (a) has *"no knowledge of future accesses and solely
//! relies on the recent history of data accesses and current storage
//! device status"*, (b) dispatches each request to the device *"currently
//! of the lowest access cost"*, and (c) issues *"ghost hints"* to the
//! disk when accumulated opportunity cost suggests that an active disk
//! would have been cheaper — spinning the disk up once the foregone
//! savings exceed the wake-up cost.

use crate::source::{AppRequest, FaultNotice, Policy, PolicyCtx, Source};
use ff_base::{Dur, Joules};
use ff_device::{DeviceRequest, Dir, DiskModel, PowerModel, ServiceOutcome};
use ff_trace::IoOp;

/// Reactive lowest-current-cost selection with ghost hints.
#[derive(Debug, Clone)]
pub struct BlueFs {
    /// Accumulated opportunity cost: energy the WNIC spent beyond what an
    /// *already-spinning* disk would have spent on the same requests.
    ghost_hint: Joules,
    /// Spin the disk up when the hint passes this threshold (defaults to
    /// the spin-up + spin-down round trip, 7.94 J for the DK23DA).
    threshold: Joules,
    /// Optional disk spin-down timeout override (ablation knob). The
    /// paper-faithful default is `None`: BlueFS rides the standard 20 s
    /// laptop-mode timeout, so once ghost hints wake the disk it idles at
    /// 1.6 W while small requests keep flowing to the WNIC in CAM — the
    /// paper's "significant energy consumption for both devices".
    timeout_override: Option<Dur>,
    /// The wireless link is down (fault notice).
    link_down: bool,
    /// The remote server is unreachable (fault notice).
    server_down: bool,
}

impl BlueFs {
    /// Baseline with the DK23DA wake-cost threshold.
    pub fn new() -> Self {
        BlueFs {
            ghost_hint: Joules::ZERO,
            threshold: Joules(5.0 + 2.94),
            timeout_override: None,
            link_down: false,
            server_down: false,
        }
    }

    /// Override the ghost-hint threshold (ablation).
    pub fn with_threshold(threshold: Joules) -> Self {
        BlueFs {
            threshold,
            ..BlueFs::new()
        }
    }

    /// Override the disk spin-down timeout (ablation: an energy-adaptive
    /// BlueFS variant that parks the disk aggressively).
    pub fn with_disk_timeout(mut self, timeout: Dur) -> Self {
        self.timeout_override = Some(timeout);
        self
    }

    /// Current accumulated hint (test/inspection hook).
    pub fn ghost_hint(&self) -> Joules {
        self.ghost_hint
    }

    pub(crate) fn to_dev(req: &AppRequest, block: Option<u64>) -> DeviceRequest {
        DeviceRequest {
            dir: match req.op {
                IoOp::Read => Dir::Read,
                IoOp::Write => Dir::Write,
            },
            bytes: req.len,
            block,
        }
    }
}

impl Default for BlueFs {
    fn default() -> Self {
        BlueFs::new()
    }
}

impl Policy for BlueFs {
    fn name(&self) -> &'static str {
        "BlueFS"
    }

    fn select(&mut self, ctx: &PolicyCtx<'_>, req: &AppRequest) -> Source {
        if self.link_down || self.server_down {
            // The network path is known-bad: its "current access cost" is
            // effectively infinite, so the reactive rule collapses to the
            // disk. Hints earned against a dead network are meaningless.
            self.ghost_hint = Joules::ZERO;
            return Source::Disk;
        }
        let block = ctx.layout.block_of(req.file, req.offset);
        let disk_req = Self::to_dev(req, block);
        let wnic_req = Self::to_dev(req, None);

        let disk_cost = ctx.disk.estimate(ctx.now, &disk_req).energy;
        let wnic_cost = ctx.wnic.estimate(ctx.now, &wnic_req).energy;

        if disk_cost < wnic_cost {
            return Source::Disk;
        }

        // WNIC is cheaper *given the current disk state*; take it, but
        // check whether accumulated ghost hints have paid for a wake-up.
        if self.ghost_hint > self.threshold {
            self.ghost_hint = Joules::ZERO;
            return Source::Disk;
        }
        Source::Wnic
    }

    fn observe(
        &mut self,
        ctx: &PolicyCtx<'_>,
        req: &AppRequest,
        source: Option<Source>,
        outcome: &ServiceOutcome,
    ) {
        match source {
            None => {} // cache hit — no device evidence either way
            Some(Source::Disk) => {
                // The disk is spinning now; stale hints no longer apply.
                self.ghost_hint = Joules::ZERO;
            }
            Some(Source::Wnic) => {
                // Ghost hint from *measured* energy: what the network
                // actually charged (wake-ups included) beyond what an
                // already-spinning disk would have charged.
                let block = ctx.layout.block_of(req.file, req.offset);
                let active_disk = DiskModel::new(ctx.disk.params().clone());
                let active_cost = active_disk
                    .estimate(ff_base::SimTime::ZERO, &Self::to_dev(req, block))
                    .energy;
                if outcome.energy > active_cost {
                    self.ghost_hint += outcome.energy - active_cost;
                }
            }
        }
    }

    fn on_fault(&mut self, ctx: &PolicyCtx<'_>, notice: FaultNotice) {
        let _ = ctx;
        match notice {
            FaultNotice::LinkDown => self.link_down = true,
            FaultNotice::LinkUp => self.link_down = false,
            FaultNotice::ServerDown => self.server_down = true,
            FaultNotice::ServerUp => self.server_down = false,
            // Reactive by construction: the next estimate sees the new
            // bandwidth through the live WNIC model automatically.
            FaultNotice::BandwidthChanged { .. } => {}
        }
    }

    fn disk_timeout_override(&self) -> Option<Dur> {
        self.timeout_override
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::{Bytes, SimTime};
    use ff_device::{DiskParams, WnicModel, WnicParams};
    use ff_trace::{DiskLayout, FileId, FileMeta, FileSet};

    struct World {
        disk: DiskModel,
        wnic: WnicModel,
        layout: DiskLayout,
    }

    fn world(disk_standby: bool) -> World {
        let mut fs = FileSet::new();
        fs.insert(FileMeta {
            id: FileId(1),
            name: "f".into(),
            size: Bytes::mib(100),
        });
        let layout = DiskLayout::build(&fs, 1);
        let disk = if disk_standby {
            DiskModel::new_standby(DiskParams::hitachi_dk23da())
        } else {
            DiskModel::new(DiskParams::hitachi_dk23da())
        };
        World {
            disk,
            wnic: WnicModel::new(WnicParams::cisco_aironet350()),
            layout,
        }
    }

    fn ctx<'a>(w: &'a World, resident: &'a dyn Fn(FileId, u64, Bytes) -> f64) -> PolicyCtx<'a> {
        PolicyCtx {
            now: SimTime::ZERO,
            disk: &w.disk,
            wnic: &w.wnic,
            layout: &w.layout,
            resident,
        }
    }

    fn req(len: u64) -> AppRequest {
        AppRequest {
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(len),
        }
    }

    #[test]
    fn standby_disk_small_request_goes_to_wnic() {
        let w = world(true);
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let mut p = BlueFs::new();
        // 64 KiB from standby disk: 5 J spin-up ≫ WNIC wake-up (0.51 J).
        assert_eq!(p.select(&ctx(&w, &nores), &req(65_536)), Source::Wnic);
    }

    #[test]
    fn spinning_disk_wins_requests() {
        let w = world(false);
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let mut p = BlueFs::new();
        // Disk idle & spinning: ~40 ms of active power ≪ WNIC wake + xfer.
        assert_eq!(p.select(&ctx(&w, &nores), &req(65_536)), Source::Disk);
    }

    /// Drive one select→observe round as the simulator would: the
    /// observed energy is what the live WNIC would actually charge.
    fn round(p: &mut BlueFs, w: &World, len: u64) -> Source {
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let c = ctx(w, &nores);
        let r = req(len);
        let src = p.select(&c, &r);
        if src == Source::Wnic {
            let est = w.wnic.estimate(SimTime::ZERO, &BlueFs::to_dev(&r, None));
            let out = ff_device::ServiceOutcome {
                complete: est.complete,
                service_time: est.service_time,
                energy: est.energy,
            };
            p.observe(&c, &r, Some(Source::Wnic), &out);
        }
        src
    }

    #[test]
    fn ghost_hints_eventually_spin_the_disk_up() {
        let w = world(true);
        let mut p = BlueFs::new();
        let mut sources = Vec::new();
        // Many large reads from a sleeping disk: WNIC at first, but the
        // accumulated measured opportunity cost must flip one to the disk.
        for _ in 0..200 {
            sources.push(round(&mut p, &w, 1_000_000));
        }
        assert_eq!(sources[0], Source::Wnic);
        assert!(
            sources.contains(&Source::Disk),
            "ghost hints never fired over 200 MB of WNIC traffic"
        );
    }

    #[test]
    fn hint_resets_after_disk_use() {
        let w = world(true);
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let mut p = BlueFs::new();
        for _ in 0..2 {
            round(&mut p, &w, 1_000_000);
        }
        assert!(p.ghost_hint().get() > 0.0);
        let out = ff_device::ServiceOutcome {
            complete: SimTime::ZERO,
            service_time: ff_base::Dur::ZERO,
            energy: Joules::ZERO,
        };
        p.observe(&ctx(&w, &nores), &req(1), Some(Source::Disk), &out);
        assert_eq!(p.ghost_hint(), Joules::ZERO);
    }

    #[test]
    fn cache_hits_do_not_touch_hints() {
        let w = world(true);
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let mut p = BlueFs::new();
        for _ in 0..2 {
            round(&mut p, &w, 1_000_000);
        }
        let before = p.ghost_hint();
        assert!(before.get() > 0.0);
        let out = ff_device::ServiceOutcome {
            complete: SimTime::ZERO,
            service_time: ff_base::Dur::ZERO,
            energy: Joules::ZERO,
        };
        // A fully cache-hit syscall carries no device evidence.
        p.observe(&ctx(&w, &nores), &req(1), None, &out);
        assert_eq!(p.ghost_hint(), before, "cache hit must not reset hints");
    }

    #[test]
    fn outage_pins_selection_to_disk_and_clears_hints() {
        let w = world(true);
        let nores = |_: FileId, _: u64, _: Bytes| 0.0;
        let mut p = BlueFs::new();
        for _ in 0..2 {
            round(&mut p, &w, 1_000_000);
        }
        assert!(p.ghost_hint().get() > 0.0);
        p.on_fault(&ctx(&w, &nores), FaultNotice::LinkDown);
        // Even a request the WNIC would normally win goes to the disk,
        // and the stale hints are discarded.
        assert_eq!(p.select(&ctx(&w, &nores), &req(65_536)), Source::Disk);
        assert_eq!(p.ghost_hint(), Joules::ZERO);
        p.on_fault(&ctx(&w, &nores), FaultNotice::LinkUp);
        assert_eq!(
            p.select(&ctx(&w, &nores), &req(65_536)),
            Source::Wnic,
            "reactive selection resumes once the link is back"
        );
    }

    #[test]
    fn tiny_requests_on_sleeping_disk_stay_on_wnic_longer() {
        let w = world(true);
        let mut small = BlueFs::new();
        let mut n_small = 0;
        for _ in 0..500 {
            if round(&mut small, &w, 1_000) == Source::Wnic {
                n_small += 1;
            } else {
                break;
            }
        }
        let mut big = BlueFs::new();
        let mut n_big = 0;
        for _ in 0..500 {
            if round(&mut big, &w, 1_000_000) == Source::Wnic {
                n_big += 1;
            } else {
                break;
            }
        }
        assert!(
            n_small > n_big,
            "hint should build faster for large transfers ({n_small} vs {n_big})"
        );
    }
}
