//! The fixed-source baselines of §3.3: *Disk-only* and *WNIC-only*.

use crate::source::{AppRequest, Policy, PolicyCtx, Source};

/// Service everything from the local hard disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskOnly;

impl Policy for DiskOnly {
    fn name(&self) -> &'static str {
        "Disk-only"
    }

    fn select(&mut self, _ctx: &PolicyCtx<'_>, _req: &AppRequest) -> Source {
        Source::Disk
    }
}

/// Service everything from the remote server over the WNIC.
#[derive(Debug, Clone, Copy, Default)]
pub struct WnicOnly;

impl Policy for WnicOnly {
    fn name(&self) -> &'static str {
        "WNIC-only"
    }

    fn select(&mut self, _ctx: &PolicyCtx<'_>, _req: &AppRequest) -> Source {
        Source::Wnic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_base::{Bytes, SimTime};
    use ff_device::{DiskModel, DiskParams, WnicModel, WnicParams};
    use ff_trace::{DiskLayout, FileId, FileSet, IoOp};

    fn with_ctx<R>(f: impl FnOnce(&PolicyCtx<'_>) -> R) -> R {
        let disk = DiskModel::new(DiskParams::hitachi_dk23da());
        let wnic = WnicModel::new(WnicParams::cisco_aironet350());
        let layout = DiskLayout::build(&FileSet::new(), 0);
        let resident = |_: FileId, _: u64, _: Bytes| 0.0;
        let ctx = PolicyCtx {
            now: SimTime::ZERO,
            disk: &disk,
            wnic: &wnic,
            layout: &layout,
            resident: &resident,
        };
        f(&ctx)
    }

    fn req() -> AppRequest {
        AppRequest {
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(4096),
        }
    }

    #[test]
    fn disk_only_always_disk() {
        with_ctx(|ctx| {
            let mut p = DiskOnly;
            for _ in 0..3 {
                assert_eq!(p.select(ctx, &req()), Source::Disk);
            }
            assert_eq!(p.name(), "Disk-only");
        });
    }

    #[test]
    fn wnic_only_always_wnic() {
        with_ctx(|ctx| {
            let mut p = WnicOnly;
            for _ in 0..3 {
                assert_eq!(p.select(ctx, &req()), Source::Wnic);
            }
            assert_eq!(p.name(), "WNIC-only");
        });
    }
}
