//! Cross-file time-unit flow analysis.
//!
//! The workspace convention (DESIGN.md §6) is that raw integers and
//! floats carrying time encode their unit in the identifier suffix:
//! `deadline_us`, `budget_ms`, `timeout_s`. The per-line unit-safety
//! rule can flag raw casts, but it cannot see a microsecond value
//! flowing into a second-denominated parameter two files away. This
//! pass can, conservatively:
//!
//! * identifiers gain a unit from their suffix (`_us`, `_ms`, `_s`,
//!   `_secs`, `_millis`, `_micros`) or from a known accessor
//!   (`.as_micros()` → µs, `.as_millis()` → ms, `.as_secs_f64()` /
//!   `.as_secs()` → s);
//! * `let` bindings propagate the unit of their initialiser when it is
//!   unambiguous (a single known unit on the right-hand side and no
//!   multiplicative rescaling);
//! * additive arithmetic (`+`, `-`, `+=`, `-=`) and ordering
//!   comparisons between two *different* known units are findings —
//!   adding microseconds to seconds is never right;
//! * call sites are checked cross-file through the item tree: passing
//!   an `_s`-suffixed variable to a parameter declared `ts_us` is a
//!   finding when the callee resolves uniquely by name and arity.
//!
//! Multiplication and division clear the unit (rescaling is exactly how
//! units are *supposed* to change), so the analysis only reports
//! mismatches it can justify — every finding quotes both units.

use crate::items::{split_args, ItemTree};
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// A time unit recovered from a suffix or accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    Micros,
    Millis,
    Secs,
}

impl Unit {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Unit::Micros => "us",
            Unit::Millis => "ms",
            Unit::Secs => "s",
        }
    }

    /// Unit implied by an identifier's suffix.
    pub(crate) fn of_ident(name: &str) -> Option<Unit> {
        for (suffix, unit) in [
            ("_us", Unit::Micros),
            ("_micros", Unit::Micros),
            ("_ms", Unit::Millis),
            ("_millis", Unit::Millis),
            ("_s", Unit::Secs),
            ("_secs", Unit::Secs),
        ] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if !stem.is_empty() {
                    return Some(unit);
                }
            }
        }
        None
    }

    /// Unit produced by a known accessor method.
    pub(crate) fn of_accessor(name: &str) -> Option<Unit> {
        match name {
            "as_micros" => Some(Unit::Micros),
            "as_millis" => Some(Unit::Millis),
            "as_secs" | "as_secs_f64" => Some(Unit::Secs),
            _ => None,
        }
    }
}

/// Per-fn environment: variable name → inferred unit.
type Env = BTreeMap<String, Unit>;

/// Run the unit-flow pass over every first-party library file.
pub fn analyze(sources: &[SourceFile], trees: &[ItemTree]) -> Vec<Finding> {
    let params_by_name = collect_params(sources, trees);
    let mut out = Vec::new();
    for (fi, file) in sources.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (_, item) in trees[fi].fns() {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            let mut env: Env = Env::new();
            for p in &item.params {
                if let Some(u) = Unit::of_ident(p) {
                    env.insert(p.clone(), u);
                }
            }
            for line_no in item.body_start..=item.body_end {
                let Some(line) = file.lines.get(line_no - 1) else {
                    continue;
                };
                if line.in_test {
                    continue;
                }
                scan_line(
                    &line.code,
                    &mut env,
                    &params_by_name,
                    &file.rel_path,
                    line_no,
                    &mut out,
                );
            }
        }
    }
    out
}

/// Callee parameter units: fn name → (param units, arity), kept only
/// when the name resolves uniquely across the workspace.
pub(crate) fn collect_params(
    sources: &[SourceFile],
    trees: &[ItemTree],
) -> BTreeMap<String, Vec<Option<Unit>>> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut params: BTreeMap<String, Vec<Option<Unit>>> = BTreeMap::new();
    for (fi, tree) in trees.iter().enumerate() {
        if sources[fi].kind != FileKind::Lib {
            continue;
        }
        for (_, item) in tree.fns() {
            if item.in_test {
                continue;
            }
            *seen.entry(item.name.clone()).or_insert(0) += 1;
            params.insert(
                item.name.clone(),
                item.params.iter().map(|p| Unit::of_ident(p)).collect(),
            );
        }
    }
    params.retain(|name, units| seen.get(name) == Some(&1) && units.iter().any(Option::is_some));
    params
}

/// Tokens of one line: identifiers (with optional accessor-call unit)
/// and operator positions.
fn scan_line(
    code: &str,
    env: &mut Env,
    params_by_name: &BTreeMap<String, Vec<Option<Unit>>>,
    file: &str,
    line_no: usize,
    out: &mut Vec<Finding>,
) {
    check_additive(code, env, file, line_no, out);
    check_calls(code, env, params_by_name, file, line_no, out);
    bind_let(code, env);
}

/// `let [mut] name = expr;` — record `name`'s unit when inferable, and
/// flag a suffix that contradicts the initialiser.
fn bind_let(code: &str, env: &mut Env) {
    let Some(pos) = find_word(code, "let") else {
        return;
    };
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return;
    }
    let name = &rest[..end];
    let after = rest[end..].trim_start();
    // Only plain bindings: `let x = …` / `let x: T = …`; patterns
    // (`let (a, b)`, `if let Some(x)`) are skipped.
    let init = if let Some(eq) = after.strip_prefix('=') {
        if eq.starts_with('=') {
            return; // `==`
        }
        eq
    } else if after.starts_with(':') {
        match after.split_once('=') {
            Some((_, init)) => init,
            None => return,
        }
    } else {
        return;
    };
    let unit = match Unit::of_ident(name) {
        Some(u) => Some(u),
        None => expr_unit(init, env),
    };
    if let Some(u) = unit {
        env.insert(name.to_owned(), u);
    }
}

/// The single unambiguous unit of an expression, if any: exactly one
/// distinct known unit among its identifiers/accessors and no `*`/`/`
/// rescaling.
fn expr_unit(expr: &str, env: &Env) -> Option<Unit> {
    if has_rescaling(expr) {
        return None;
    }
    let mut found: Option<Unit> = None;
    for (name, unit) in idents_with_units(expr, env) {
        let _ = name;
        match found {
            None => found = Some(unit),
            Some(u) if u == unit => {}
            Some(_) => return None,
        }
    }
    found
}

/// Does the expression multiply or divide (i.e. legitimately rescale)?
pub(crate) fn has_rescaling(expr: &str) -> bool {
    let bytes = expr.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'/' => {
                // `//` cannot appear (comments are blanked); `/` is division.
                return true;
            }
            b'*' => {
                // Deref `*x` has no left operand; multiplication does.
                let prev = bytes[..i]
                    .iter()
                    .rev()
                    .find(|b| !b.is_ascii_whitespace())
                    .copied()
                    .unwrap_or(b'(');
                if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Identifiers in an expression that carry a unit (by suffix, env, or
/// as an accessor call).
fn idents_with_units<'a>(expr: &'a str, env: &Env) -> Vec<(&'a str, Unit)> {
    let mut out = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let name = &expr[start..i];
            let called = bytes.get(i) == Some(&b'(');
            let is_field_or_method = start > 0 && bytes[start - 1] == b'.';
            let unit = if called {
                Unit::of_accessor(name)
            } else if is_field_or_method {
                Unit::of_ident(name) // `self.deadline_us`
            } else {
                Unit::of_ident(name).or_else(|| env.get(name).copied())
            };
            if let Some(u) = unit {
                out.push((name, u));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Flag `a + b`, `a - b`, `a += b`, `a -= b` and ordering comparisons
/// whose operands carry different units.
fn check_additive(code: &str, env: &Env, file: &str, line_no: usize, out: &mut Vec<Finding>) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        let op: &str = match b {
            b'+' | b'-' => {
                // Skip `->`, `+=`/`-=` handled the same, unary minus by
                // the empty-left check below.
                if bytes.get(i + 1) == Some(&b'>') {
                    continue;
                }
                if b == b'+' && bytes.get(i + 1) == Some(&b'+') {
                    continue;
                }
                if b == b'+' {
                    "+"
                } else {
                    "-"
                }
            }
            b'<' | b'>' => {
                // Ordering comparison, not generics: require spaces
                // around it (rustfmt style) so `Vec<u8>` never matches.
                let spaced = i > 0
                    && bytes[i - 1] == b' '
                    && matches!(bytes.get(i + 1), Some(&b' ') | Some(&b'='));
                if !spaced {
                    continue;
                }
                if b == b'<' {
                    "<"
                } else {
                    ">"
                }
            }
            _ => continue,
        };
        let skip = usize::from(bytes.get(i + 1) == Some(&b'='));
        let left = operand_before(code, i);
        let right = operand_after(code, i + 1 + skip);
        let lu = operand_unit(left, env);
        let ru = operand_unit(right, env);
        if let (Some(lu), Some(ru)) = (lu, ru) {
            if lu != ru {
                out.push(Finding {
                    rule: Rule::UnitFlow,
                    file: file.to_owned(),
                    line: line_no,
                    token: format!("{}{op}{}", lu.label(), ru.label()),
                    message: format!(
                        "mixed time units: `{left}` is {} but `{right}` is {} — rescale \
                         explicitly or move both into Dur",
                        lu.label(),
                        ru.label()
                    ),
                });
            }
        }
    }
}

/// Check call arguments against uniquely-resolved callee param units.
fn check_calls(
    code: &str,
    env: &Env,
    params_by_name: &BTreeMap<String, Vec<Option<Unit>>>,
    file: &str,
    line_no: usize,
    out: &mut Vec<Finding>,
) {
    for name in crate::callgraph::call_names(code) {
        let Some(param_units) = params_by_name.get(name) else {
            continue;
        };
        // The args of *this* call: text between its parens, one line only.
        let Some(call_pos) = code.find(&format!("{name}(")) else {
            continue;
        };
        let open = call_pos + name.len();
        let Some(close) = matching_paren(code, open) else {
            continue;
        };
        let args = split_args(&code[open + 1..close]);
        if args.len() != param_units.len() {
            continue; // method-call `self` offset or multi-line call
        }
        for (arg, want) in args.iter().zip(param_units) {
            let Some(want) = want else { continue };
            let arg = arg.trim();
            if !arg
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                continue; // only plain identifiers/paths are judged
            }
            let got = operand_unit(arg, env);
            if let Some(got) = got {
                if got != *want {
                    out.push(Finding {
                        rule: Rule::UnitFlow,
                        file: file.to_owned(),
                        line: line_no,
                        token: format!("call:{name}"),
                        message: format!(
                            "`{arg}` carries {} but `{name}` expects {} here",
                            got.label(),
                            want.label()
                        ),
                    });
                }
            }
        }
    }
}

/// Unit of a single operand: a plain ident/path, or an accessor call.
fn operand_unit(operand: &str, env: &Env) -> Option<Unit> {
    let operand = operand.trim();
    if operand.is_empty() || operand.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    // `a.b.c_us` / `d.as_micros()` — judge the last segment.
    let last = operand.trim_end_matches("()");
    let last = last.rsplit('.').next().unwrap_or(last);
    if operand.ends_with("()") {
        return Unit::of_accessor(last);
    }
    if !last.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Unit::of_ident(last).or_else(|| {
        if operand.contains('.') {
            None // field of another struct — suffix only
        } else {
            env.get(operand).copied()
        }
    })
}

/// The expression-ish operand left of byte `pos` (ident path, maybe an
/// accessor call).
pub(crate) fn operand_before(code: &str, pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    // Swallow a trailing `()` of an accessor call.
    if start >= 2 && &code[start - 2..start] == "()" {
        start -= 2;
    }
    while start > 0
        && (bytes[start - 1].is_ascii_alphanumeric()
            || bytes[start - 1] == b'_'
            || bytes[start - 1] == b'.')
    {
        start -= 1;
    }
    &code[start..end]
}

/// The operand right of byte `pos`.
pub(crate) fn operand_after(code: &str, pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_' || bytes[end] == b'.')
    {
        end += 1;
    }
    // Swallow an accessor call's `()`.
    if code[end..].starts_with("()") {
        end += 2;
    }
    &code[start..end]
}

/// Word-boundary find.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(rel) = code[search..].find(word) {
        let pos = search + rel;
        let before_ok =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let after = pos + word.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        search = pos + word.len();
    }
    None
}

/// The matching `)` for the `(` at byte `open`.
pub(crate) fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::preprocess;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile {
                rel_path: (*path).to_owned(),
                crate_name: "ff-sim".to_owned(),
                kind: FileKind::Lib,
                lines: preprocess(src),
            })
            .collect();
        let trees = items::build(&sources);
        analyze(&sources, &trees)
    }

    #[test]
    fn mixed_addition_is_flagged() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(start_us: u64, budget_s: u64) -> u64 {\n    start_us + budget_s\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "us+s");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn consistent_units_are_clean() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(start_us: u64, dur_us: u64) -> u64 {\n    start_us + dur_us\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn let_binding_propagates_units() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(start_us: u64, end_s: u64) -> u64 {\n    let begin = start_us;\n    begin + end_s\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn rescaling_clears_the_unit() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(start_us: u64, end_s: u64) -> u64 {\n    let begin = start_us / 1_000_000;\n    begin + end_s\n}\n",
        )]);
        assert!(f.is_empty(), "division rescales: {f:?}");
    }

    #[test]
    fn accessor_calls_carry_units() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(d: Dur, start_us: u64) -> f64 {\n    d.as_secs_f64() + start_us\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "s+us");
    }

    #[test]
    fn cross_file_call_mismatch() {
        let f = run(&[
            (
                "crates/ff-sim/src/a.rs",
                "pub fn caller(deadline_s: u64) {\n    record(deadline_s, 4)\n}\n",
            ),
            (
                "crates/ff-sim/src/b.rs",
                "pub fn record(ts_us: u64, n: u64) {\n    let _ = (ts_us, n);\n}\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "call:record");
        assert!(f[0].message.contains("expects us"), "{}", f[0].message);
    }

    #[test]
    fn comparisons_between_units_are_flagged() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(t_us: u64, limit_ms: u64) -> bool {\n    t_us < limit_ms\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "us<ms");
    }

    #[test]
    fn generics_are_not_comparisons() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn f(xs_us: Vec<u64>, cap_ms: u64) -> Vec<u64> {\n    let v: Vec<u64> = xs_us;\n    v\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
