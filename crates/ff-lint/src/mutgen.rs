//! Automated mutation engine — the linter's regression net.
//!
//! Earlier revisions kept a directory of handcrafted "mutation twin"
//! fixtures: for every rule family, a deliberately-broken copy of some
//! workspace idiom that the family had to flag. Those twins rotted —
//! they drifted from the real sources they mirrored, and adding a
//! family meant hand-writing new broken code.
//!
//! This module replaces them with *generated* mutants of the actual
//! workspace sources. A fixed probe table ([`probes`]) pins, for each
//! rule family, a real source location and a semantic mutation:
//!
//! - **operator-flip** — `+=` ↔ `-=`, a comparison direction, a clamp
//!   removed from an expression;
//! - **constant-perturbation** — a Table 1/2 registry constant nudged
//!   off its pinned value;
//! - **guard-removal** — a determinism or zero-guard discipline broken
//!   (ordered map → hash map, a wall-clock read introduced);
//! - **transition-drop** — a state-machine commit edge or its meter
//!   record removed.
//!
//! Each mutant is applied **in memory**: the file's raw text is edited
//! at a needle occurrence (fixed, or derived from the seed when several
//! occurrences exist), re-preprocessed, and the full eighteen-family
//! analysis re-runs against the mutated source set. Mutants are never
//! compiled — the lint is the system under test, not the compiler. A
//! mutant is *killed* when the families the probe aims at all report
//! new findings relative to a self-baseline of the clean tree.
//!
//! The per-family kill matrix serialises to `results/lint-killscore.json`
//! and is ratcheted: [`KillMatrix::floor_violations`] lists every family
//! whose kill rate fell below its recorded floor (currently 1.0 across
//! the board), and tier-1 tests, `scripts/check.sh` and CI fail on any
//! violation. Same seed ⇒ byte-identical mutant set and matrix.

use crate::baseline::Baseline;
use crate::rules::{count_occurrences, Rule};
use crate::scan;
use ff_base::json::Value;
use ff_base::{Error, Result};
use std::collections::BTreeSet;
use std::path::Path;

/// Seed used by the committed kill-score runs (tests, check.sh, CI).
pub const DEFAULT_SEED: u64 = 0x00F1EE;

/// Ratcheted minimum kill rate per family. Every family currently
/// kills all of its probes; lowering a floor requires editing this
/// table in the same commit that explains why.
pub const FLOORS: [(Rule, f64); 18] = [
    (Rule::Determinism, 1.0),
    (Rule::PanicSafety, 1.0),
    (Rule::PanicReach, 1.0),
    (Rule::UnitSafety, 1.0),
    (Rule::UnitFlow, 1.0),
    (Rule::FloatEq, 1.0),
    (Rule::ModelInvariants, 1.0),
    (Rule::Fsm, 1.0),
    (Rule::Hygiene, 1.0),
    (Rule::UnitFlowInterproc, 1.0),
    (Rule::ConstProvenance, 1.0),
    (Rule::EventCoverage, 1.0),
    (Rule::ProductFsm, 1.0),
    (Rule::NondetTaint, 1.0),
    (Rule::TraceConformance, 1.0),
    (Rule::ArithSafety, 1.0),
    (Rule::EnergyBounds, 1.0),
    (Rule::TimeoutOrder, 1.0),
];

/// Mutation strategy, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutKind {
    /// An arithmetic/comparison operator or clamp flipped or removed.
    OperatorFlip,
    /// A pinned registry constant nudged off its Table 1/2 value.
    ConstPerturb,
    /// A discipline guard broken (ordered map, wall-clock hygiene,
    /// zero-floor divisor guard).
    GuardRemoval,
    /// A state-machine commit edge or its meter record dropped.
    TransitionDrop,
}

impl MutKind {
    /// Stable string id for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            MutKind::OperatorFlip => "operator-flip",
            MutKind::ConstPerturb => "constant-perturbation",
            MutKind::GuardRemoval => "guard-removal",
            MutKind::TransitionDrop => "transition-drop",
        }
    }
}

/// Which needle occurrence a probe edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// The n-th occurrence (1-based) — used where only a specific site
    /// exercises the aimed family.
    Fixed(usize),
    /// Seed-derived choice among all occurrences — used where every
    /// occurrence is an equally valid mutation site.
    Auto,
}

/// One pinned mutation site.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Stable id (JSON key, also folded into the occurrence stream).
    pub id: &'static str,
    /// Strategy bucket.
    pub kind: MutKind,
    /// Workspace-relative file to mutate.
    pub file: &'static str,
    /// Text to replace (must occur in the file; the engine errors on a
    /// stale needle rather than silently passing).
    pub needle: &'static str,
    /// Replacement text. Mutants are analysed, never compiled, so the
    /// replacement only has to be plausible source text.
    pub replacement: &'static str,
    /// Which occurrence to edit.
    pub occurrence: Occurrence,
    /// Families this mutant must be killed by.
    pub aimed: &'static [Rule],
}

/// The probe table: every family appears in at least one `aimed` set.
pub fn probes() -> Vec<Probe> {
    vec![
        Probe {
            id: "ordered-map-to-hash",
            kind: MutKind::GuardRemoval,
            file: "crates/ff-sim/src/record.rs",
            needle: "BTreeMap",
            replacement: "HashMap",
            occurrence: Occurrence::Auto,
            aimed: &[Rule::Determinism],
        },
        Probe {
            id: "wall-clock-in-report-path",
            kind: MutKind::GuardRemoval,
            file: "crates/ff-sim/src/sim.rs",
            needle: "self.disk.advance_to(final_t);",
            replacement: "self.disk.advance_to(final_t); \
                          let _wall = std::time::SystemTime::now();",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::Determinism, Rule::NondetTaint],
        },
        Probe {
            id: "debug-assert-to-panic",
            kind: MutKind::GuardRemoval,
            file: "crates/ff-sim/src/battery.rs",
            needle: "debug_assert!(total > 0.0);",
            replacement: "if total <= 0.0 { panic!(\"zero draw\"); }",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::PanicSafety, Rule::PanicReach],
        },
        Probe {
            id: "raw-f64-cast",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/battery.rs",
            needle: ".as_secs_f64();",
            replacement: ".as_secs_f64() as f64;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::UnitSafety],
        },
        Probe {
            id: "float-guard-to-equality",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/battery.rs",
            needle: "if secs > 0.0 {",
            replacement: "if secs == 0.0 {",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::FloatEq],
        },
        Probe {
            id: "allow-suppression",
            kind: MutKind::GuardRemoval,
            file: "crates/ff-sim/src/battery.rs",
            needle: "pub struct Battery {",
            replacement: "#[allow(dead_code)] pub struct Battery {",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::Hygiene],
        },
        Probe {
            id: "mixed-unit-sum",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-sim/src/faults.rs",
            needle: "let span_us = span.as_micros().max(1_000_000);",
            replacement: "let wakeup_ms = 50; let span_us = \
                          span.as_micros().max(1_000_000); \
                          let span_us = span_us + wakeup_ms;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::UnitFlow],
        },
        Probe {
            id: "joules-into-time",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-sim/src/faults.rs",
            needle: "let span_us = span.as_micros().max(1_000_000);",
            replacement: "let cost_j = 3; let span_us = \
                          span.as_micros().max(1_000_000); \
                          let span_us = span_us + cost_j;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::UnitFlowInterproc],
        },
        Probe {
            id: "standby-power-bump",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-device/src/consts.rs",
            needle: "pub const DISK_STANDBY_POWER_W: f64 = 0.15;",
            replacement: "pub const DISK_STANDBY_POWER_W: f64 = 5.15;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::ModelInvariants, Rule::ConstProvenance],
        },
        Probe {
            id: "beacon-interval-drift",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-device/src/consts.rs",
            needle: "pub const WNIC_BEACON_INTERVAL_MS: u64 = 100;",
            replacement: "pub const WNIC_BEACON_INTERVAL_MS: u64 = 250;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::ConstProvenance],
        },
        Probe {
            id: "spindown-commit-drop",
            kind: MutKind::TransitionDrop,
            file: "crates/ff-device/src/disk.rs",
            needle: "self.state = DiskState::Standby;",
            replacement: "self.state = DiskState::Idle;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::Fsm, Rule::TraceConformance],
        },
        Probe {
            id: "spindown-meter-drop",
            kind: MutKind::TransitionDrop,
            file: "crates/ff-device/src/disk.rs",
            needle: ".transition(\"spin_down\", self.params.spindown_energy);",
            replacement: ".dwell_only();",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::EventCoverage],
        },
        Probe {
            id: "server-path-recovery-drop",
            kind: MutKind::TransitionDrop,
            file: "crates/ff-sim/src/sim.rs",
            needle: "self.state = ServerPathState::Healthy;",
            replacement: "self.state = ServerPathState::MarkedDead(until, dead);",
            occurrence: Occurrence::Fixed(2),
            aimed: &[Rule::ProductFsm],
        },
        Probe {
            id: "divisor-floor-to-zero",
            kind: MutKind::GuardRemoval,
            file: "crates/ff-trace/src/analysis.rs",
            needle: "trace.len().max(1)",
            replacement: "trace.len().max(0)",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::ArithSafety],
        },
        Probe {
            id: "unchecked-float-trunc",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-bench/src/sweep.rs",
            needle: "checked::f64_to_u64(b * 1000.0)",
            replacement: "(b * 1000.0) as u64",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::ArithSafety],
        },
        Probe {
            id: "unchecked-counter-sum",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/sim.rs",
            needle: "self.disk_bytes.saturating_add(self.wnic_bytes)",
            replacement: "self.disk_bytes + self.wnic_bytes",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::ArithSafety],
        },
        Probe {
            id: "energy-accumulator-flip",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/sim.rs",
            needle: "energy += out.energy;",
            replacement: "energy -= out.energy;",
            occurrence: Occurrence::Auto,
            aimed: &[Rule::EnergyBounds],
        },
        Probe {
            id: "negative-spinup-charge",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-device/src/disk.rs",
            needle: "request_energy += self.params.spinup_energy;",
            replacement: "request_energy += -self.params.spinup_energy;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::EnergyBounds],
        },
        Probe {
            id: "drain-monotone-flip",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/battery.rs",
            needle: "report.total_energy() + self.base_power * report.exec_time",
            replacement: "report.total_energy() - self.base_power * report.exec_time",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::EnergyBounds],
        },
        Probe {
            id: "spinup-cost-bump",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-device/src/consts.rs",
            needle: "pub const DISK_SPINUP_ENERGY_J: f64 = 5.0;",
            replacement: "pub const DISK_SPINUP_ENERGY_J: f64 = 50.0;",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::TimeoutOrder],
        },
        Probe {
            id: "ladder-clamp-drop",
            kind: MutKind::OperatorFlip,
            file: "crates/ff-sim/src/sim.rs",
            needle: "(1u64 << (attempt - 1).min(16))",
            replacement: "(1u64 << (attempt - 1))",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::TimeoutOrder],
        },
        Probe {
            id: "zero-backoff-base",
            kind: MutKind::ConstPerturb,
            file: "crates/ff-sim/src/faults.rs",
            needle: "backoff: Dur::from_millis(500),",
            replacement: "backoff: Dur::from_millis(0),",
            occurrence: Occurrence::Fixed(1),
            aimed: &[Rule::TimeoutOrder],
        },
    ]
}

/// Outcome of one applied mutant.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Probe id.
    pub id: String,
    /// Strategy bucket.
    pub kind: MutKind,
    /// File mutated.
    pub file: String,
    /// 1-based occurrence actually edited.
    pub occurrence: usize,
    /// Families the probe aims at.
    pub aimed: Vec<Rule>,
    /// Families that reported new findings on the mutant.
    pub fired: Vec<Rule>,
    /// True when every aimed family fired.
    pub killed: bool,
}

/// Per-family kill score.
#[derive(Debug, Clone)]
pub struct FamilyScore {
    /// The family.
    pub rule: Rule,
    /// Probes aiming at it.
    pub probes: u64,
    /// Probes whose mutant it killed.
    pub kills: u64,
    /// Ratcheted minimum rate.
    pub floor: f64,
}

impl FamilyScore {
    /// Kill rate in `[0, 1]`; a family with no probes scores zero so a
    /// probe-table regression is loud, not silently perfect.
    pub fn rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.kills as f64 / self.probes as f64
        }
    }
}

/// The full kill-score matrix of one engine run.
#[derive(Debug, Clone)]
pub struct KillMatrix {
    /// Seed the occurrence choices were derived from.
    pub seed: u64,
    /// Every mutant, in probe-table order.
    pub mutants: Vec<MutantOutcome>,
    /// Per-family scores, in [`Rule::all`] order.
    pub families: Vec<FamilyScore>,
}

impl KillMatrix {
    /// Families whose kill rate fell below the recorded floor — the
    /// ratchet CI and tier-1 tests enforce.
    pub fn floor_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for fam in &self.families {
            if fam.rate() < fam.floor {
                out.push(format!(
                    "{}: kill rate {:.2} below recorded floor {:.2} \
                     ({}/{} probes killed)",
                    fam.rule,
                    fam.rate(),
                    fam.floor,
                    fam.kills,
                    fam.probes
                ));
            }
        }
        out
    }

    /// Serialise the matrix (pretty JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let rules_arr = |rules: &[Rule]| {
            Value::Array(
                rules
                    .iter()
                    .map(|r| Value::Str(r.as_str().into()))
                    .collect(),
            )
        };
        let mutants: Vec<Value> = self
            .mutants
            .iter()
            .map(|m| {
                Value::Object(vec![
                    ("id".into(), Value::Str(m.id.clone())),
                    ("kind".into(), Value::Str(m.kind.as_str().into())),
                    ("file".into(), Value::Str(m.file.clone())),
                    ("occurrence".into(), Value::UInt(m.occurrence as u64)),
                    ("aimed".into(), rules_arr(&m.aimed)),
                    ("fired".into(), rules_arr(&m.fired)),
                    ("killed".into(), Value::Bool(m.killed)),
                ])
            })
            .collect();
        let families: Vec<Value> = self
            .families
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("rule".into(), Value::Str(f.rule.as_str().into())),
                    ("probes".into(), Value::UInt(f.probes)),
                    ("kills".into(), Value::UInt(f.kills)),
                    ("rate".into(), Value::Float(f.rate())),
                    ("floor".into(), Value::Float(f.floor)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("seed".into(), Value::UInt(self.seed)),
            ("mutants".into(), Value::Array(mutants)),
            ("families".into(), Value::Array(families)),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }
}

/// splitmix64 — the deterministic occurrence stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed + probe id → occurrence stream value.
fn probe_stream(seed: u64, id: &str) -> u64 {
    let mut acc = seed;
    for b in id.bytes() {
        acc = mix(acc ^ u64::from(b));
    }
    mix(acc)
}

/// Replace the `occ`-th (1-based) occurrence of `needle` in `text`.
fn replace_occurrence(text: &str, needle: &str, occ: usize, replacement: &str) -> Option<String> {
    let mut seen = 0usize;
    let mut search = 0usize;
    while let Some(rel) = text.get(search..).and_then(|t| t.find(needle)) {
        let pos = search + rel;
        seen += 1;
        if seen == occ {
            let mut out = String::with_capacity(text.len() + replacement.len());
            out.push_str(text.get(..pos)?);
            out.push_str(replacement);
            out.push_str(text.get(pos + needle.len()..)?);
            return Some(out);
        }
        search = pos + needle.len();
    }
    None
}

/// Run the engine: apply every probe to the clean tree, re-analyse
/// in memory, and score kills against a self-baseline.
pub fn run(root: &Path, seed: u64) -> Result<KillMatrix> {
    let sources = scan::collect_sources(root)
        .map_err(|e| Error::Io(format!("scanning {}: {e}", root.display())))?;
    let clean = crate::analyze_sources(&sources, root);
    let self_base = Baseline::from_findings(&clean.findings);
    let mut mutants = Vec::new();
    for probe in probes() {
        let Some(src_idx) = sources.iter().position(|s| s.rel_path == probe.file) else {
            return Err(Error::Config(format!(
                "mutation probe `{}`: file {} not in scanned set",
                probe.id, probe.file
            )));
        };
        let text = std::fs::read_to_string(root.join(probe.file))
            .map_err(|e| Error::Io(format!("reading {}: {e}", probe.file)))?;
        let total = count_occurrences(&text, probe.needle);
        if total == 0 {
            return Err(Error::Config(format!(
                "mutation probe `{}`: needle `{}` no longer occurs in {} — \
                 the probe table is stale",
                probe.id, probe.needle, probe.file
            )));
        }
        let occ = match probe.occurrence {
            Occurrence::Fixed(n) if n >= 1 && n <= total => n,
            Occurrence::Fixed(n) => {
                return Err(Error::Config(format!(
                    "mutation probe `{}`: occurrence {n} out of range (1..={total})",
                    probe.id
                )));
            }
            Occurrence::Auto => 1 + (probe_stream(seed, probe.id) as usize) % total,
        };
        let Some(mutated) = replace_occurrence(&text, probe.needle, occ, probe.replacement) else {
            return Err(Error::Internal(format!(
                "mutation probe `{}`: replacement failed",
                probe.id
            )));
        };
        let mut mutated_sources = sources.clone();
        if let Some(slot) = mutated_sources.get_mut(src_idx) {
            slot.lines = scan::preprocess(&mutated);
        }
        let analysis = crate::analyze_sources(&mutated_sources, root);
        let delta = self_base.compare(&analysis.findings);
        let fired: BTreeSet<Rule> = delta
            .new
            .iter()
            .flat_map(|(_, _, members)| members.iter().map(|f| f.rule))
            .collect();
        let killed = probe.aimed.iter().all(|r| fired.contains(r));
        mutants.push(MutantOutcome {
            id: probe.id.to_owned(),
            kind: probe.kind,
            file: probe.file.to_owned(),
            occurrence: occ,
            aimed: probe.aimed.to_vec(),
            fired: fired.into_iter().collect(),
            killed,
        });
    }
    let families = Rule::all()
        .into_iter()
        .map(|rule| {
            let aimed_at: Vec<&MutantOutcome> =
                mutants.iter().filter(|m| m.aimed.contains(&rule)).collect();
            let kills = aimed_at.iter().filter(|m| m.fired.contains(&rule)).count() as u64;
            let floor = FLOORS
                .iter()
                .find(|(r, _)| *r == rule)
                .map(|(_, f)| *f)
                .unwrap_or(1.0);
            FamilyScore {
                rule,
                probes: aimed_at.len() as u64,
                kills,
                floor,
            }
        })
        .collect();
    Ok(KillMatrix {
        seed,
        mutants,
        families,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_has_a_probe_and_a_floor() {
        let table = probes();
        for rule in Rule::all() {
            assert!(
                table.iter().any(|p| p.aimed.contains(&rule)),
                "no probe aims at {rule}"
            );
            assert!(
                FLOORS.iter().any(|(r, _)| *r == rule),
                "no recorded floor for {rule}"
            );
        }
        let mut ids: Vec<&str> = table.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), table.len(), "probe ids must be unique");
    }

    #[test]
    fn occurrence_stream_is_deterministic() {
        assert_eq!(probe_stream(1, "a"), probe_stream(1, "a"));
        assert_ne!(probe_stream(1, "a"), probe_stream(2, "a"));
        assert_ne!(probe_stream(1, "a"), probe_stream(1, "b"));
    }

    #[test]
    fn replace_occurrence_targets_the_right_site() {
        let text = "x + y + z";
        assert_eq!(
            replace_occurrence(text, "+", 2, "-").as_deref(),
            Some("x + y - z")
        );
        assert_eq!(replace_occurrence(text, "+", 3, "-"), None);
        assert_eq!(replace_occurrence(text, "??", 1, "-"), None);
    }
}
