//! FSM extraction and model checking for the device power models.
//!
//! The paper's results rest on two small state machines: the DK23DA
//! disk (Idle → SpinningDown → Standby → SpinningUp, §3 Table 1) and
//! the Aironet 350 WNIC (Cam → ToPsm → Psm → ToCam, Table 2). This
//! module recovers their transition tables from the `match self.state`
//! arms and `self.state = …` assignments in `ff-device`, then model-
//! checks the result:
//!
//! * **exhaustiveness** — every `match self.state` covers every enum
//!   variant (or has a `_` arm);
//! * **reachability** — every state is reachable from the constructor
//!   entry states over the extracted transitions;
//! * **liveness** — every state has an outgoing transition (no
//!   accidental deadlock states);
//! * **required paths** — the disk's spin-down path
//!   (`Idle → SpinningDown`) and wake path (`Standby → SpinningUp`),
//!   and the WNIC's CAM→PSM timeout path (`Cam → ToPsm`) and wake path
//!   (`Psm → ToCam`) must exist;
//! * **constant consistency** — the timeout arms must reference the
//!   same pinned parameters the model-invariants family audits
//!   (`timeout`/`spindown_energy`, `psm_timeout`/`to_psm_energy`).
//!
//! The two expected machines are *required*: if `disk.rs`/`wnic.rs`
//! move or their `match self.state` disappears, that is itself a
//! finding (`fsm-missing`), mirroring the model-invariants family —
//! the checker must not silently pass when the code it audits is gone.
//!
//! Extracted tables are also surfaced verbatim in the `--json` report
//! so downstream tooling (and the tier-1 gate) can assert on them.

use crate::items::ItemTree;
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// One extracted transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state variant, or `"*"` when the assignment's guard
    /// context could not be recovered (treated as from-any).
    pub from: String,
    /// Target state variant.
    pub to: String,
    /// 1-based line of the `self.state = …` assignment.
    pub line: usize,
}

/// One state machine recovered from a file.
#[derive(Debug, Clone)]
pub struct FsmTable {
    /// Workspace-relative file.
    pub file: String,
    /// The state enum's name (`DiskState`, `WnicState`).
    pub enum_name: String,
    /// Variants in declaration order.
    pub states: Vec<String>,
    /// Constructor entry states (`state: Enum::V` struct-literal inits).
    pub initial: Vec<String>,
    /// Extracted transitions, line order.
    pub transitions: Vec<Transition>,
}

impl FsmTable {
    /// Is there a transition `from → to` (exact, no wildcard)?
    pub fn has_transition(&self, from: &str, to: &str) -> bool {
        self.transitions
            .iter()
            .any(|t| t.from == from && t.to == to)
    }
}

/// The two machines the workspace must contain, with their required
/// paths and the pinned parameters their timeout arms must reference.
struct Expected {
    file: &'static str,
    enum_name: &'static str,
    /// (from, to, what the path is)
    required: &'static [(&'static str, &'static str, &'static str)],
    /// (from-state of the timeout arm, tokens the arm body must mention)
    timeout_arm: (&'static str, &'static [&'static str]),
}

const EXPECTED: [Expected; 2] = [
    Expected {
        file: "crates/ff-device/src/disk.rs",
        enum_name: "DiskState",
        required: &[
            ("Idle", "SpinningDown", "spin-down path (20 s timeout)"),
            ("SpinningDown", "Standby", "spin-down completion"),
            ("Standby", "SpinningUp", "wake path"),
            ("SpinningUp", "Idle", "spin-up completion"),
        ],
        timeout_arm: ("Idle", &["timeout", "spindown_energy"]),
    },
    Expected {
        file: "crates/ff-device/src/wnic.rs",
        enum_name: "WnicState",
        required: &[
            ("Cam", "ToPsm", "CAM->PSM timeout path (800 ms)"),
            ("ToPsm", "Psm", "switch completion"),
            ("Psm", "ToCam", "wake path"),
            ("ToCam", "Cam", "switch completion"),
        ],
        timeout_arm: ("Cam", &["psm_timeout", "to_psm_energy"]),
    },
];

/// Meter transition-event names each required machine must emit, used
/// by the [`crate::coverage`] analysis: (file, enum, names).
pub(crate) const EXPECTED_METER_NAMES: [(&str, &str, &[&str]); 2] = [
    (
        "crates/ff-device/src/disk.rs",
        "DiskState",
        &["spin_down", "spin_up"],
    ),
    (
        "crates/ff-device/src/wnic.rs",
        "WnicState",
        &["cam_to_psm", "psm_to_cam"],
    ),
];

/// Extract every state machine and model-check the required ones.
pub fn analyze(sources: &[SourceFile], trees: &[ItemTree]) -> (Vec<FsmTable>, Vec<Finding>) {
    let mut tables = Vec::new();
    let mut findings = Vec::new();

    for (fi, file) in sources.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        if let Some(table) = extract(file, &trees[fi], &mut findings) {
            check_generic(&table, &mut findings);
            tables.push(table);
        }
    }

    for exp in &EXPECTED {
        let Some(table) = tables
            .iter()
            .find(|t| t.file == exp.file && t.enum_name == exp.enum_name)
        else {
            findings.push(finding(
                exp.file,
                1,
                format!("fsm-missing:{}", exp.enum_name),
                format!(
                    "expected the {} machine (a `match self.state` over `{}`) in this file",
                    exp.enum_name, exp.file
                ),
            ));
            continue;
        };
        for (from, to, what) in exp.required {
            if !table.has_transition(from, to) {
                findings.push(finding(
                    exp.file,
                    1,
                    format!("missing-transition:{from}->{to}"),
                    format!(
                        "{}::{from} -> {}::{to} ({what}) was not found in the \
                         extracted transition table",
                        exp.enum_name, exp.enum_name
                    ),
                ));
            }
        }
        check_timeout_constants(sources, trees, table, exp, &mut findings);
    }

    tables.sort_by(|a, b| (&a.file, &a.enum_name).cmp(&(&b.file, &b.enum_name)));
    (tables, findings)
}

/// The consistency leg: the fn holding the timeout transition (the
/// `advance_to` loop) must reference the same pinned parameters the
/// model-invariants family audits, so the FSM cannot silently decouple
/// from the paper constants.
fn check_timeout_constants(
    sources: &[SourceFile],
    trees: &[ItemTree],
    table: &FsmTable,
    exp: &Expected,
    findings: &mut Vec<Finding>,
) {
    let (arm_state, tokens) = exp.timeout_arm;
    let Some(fi) = sources.iter().position(|f| f.rel_path == exp.file) else {
        return;
    };
    let file = &sources[fi];
    let Some(tr) = table
        .transitions
        .iter()
        .find(|t| t.from == arm_state && t.to != arm_state)
    else {
        return; // missing-transition already reported
    };
    let (lo, hi) = match trees[fi].fn_at(tr.line) {
        Some(f) => (f.decl_line, f.body_end.min(file.lines.len())),
        None => (tr.line.saturating_sub(15).max(1), tr.line),
    };
    for token in tokens {
        let seen = file.lines[lo - 1..hi]
            .iter()
            .any(|l| l.code.contains(token));
        if !seen {
            findings.push(finding(
                exp.file,
                tr.line,
                format!("timeout-constant:{token}"),
                format!(
                    "the {}::{arm_state} timeout transition (line {}) sits in a fn that \
                     never references the pinned `{token}` parameter",
                    exp.enum_name, tr.line
                ),
            ));
        }
    }
}

/// Checks that apply to any extracted machine.
fn check_generic(table: &FsmTable, out: &mut Vec<Finding>) {
    let states: BTreeSet<&str> = table.states.iter().map(String::as_str).collect();

    // Reachability from the entry states over the transitions; a `*`
    // source fires from any already-reached state.
    let mut reached: BTreeSet<&str> = table
        .initial
        .iter()
        .map(String::as_str)
        .filter(|s| states.contains(s))
        .collect();
    loop {
        let mut grew = false;
        for t in &table.transitions {
            let from_ok = t.from == "*" || reached.contains(t.from.as_str());
            if from_ok && states.contains(t.to.as_str()) && reached.insert(&t.to) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    for s in &table.states {
        if !reached.contains(s.as_str()) {
            out.push(finding(
                &table.file,
                1,
                format!("unreachable:{}::{s}", table.enum_name),
                format!(
                    "state {s} is not reachable from the constructor states \
                     {:?} over the extracted transitions",
                    table.initial
                ),
            ));
        }
        let has_exit = table.transitions.iter().any(|t| t.from == *s && t.to != *s);
        if !has_exit {
            out.push(finding(
                &table.file,
                1,
                format!("deadlock:{}::{s}", table.enum_name),
                format!("state {s} has no outgoing transition — the machine can wedge there"),
            ));
        }
    }
}

fn finding(file: &str, line: usize, token: String, message: String) -> Finding {
    Finding {
        rule: Rule::Fsm,
        file: file.to_owned(),
        line,
        token,
        message,
    }
}

/// Extract the machine of one file: a `*State` enum plus the
/// `match self.state` arms and `self.state = …` assignments.
fn extract(file: &SourceFile, tree: &ItemTree, out: &mut Vec<Finding>) -> Option<FsmTable> {
    // Which enum? The one the match arms and assignments name.
    let enum_name = file
        .lines
        .iter()
        .filter(|l| !l.in_test)
        .find_map(|l| assignment_target(&l.code).map(|(e, _)| e.to_owned()))?;
    let states = match tree.enum_named(&enum_name) {
        Some(e) if !e.variants.is_empty() => e.variants.clone(),
        _ => {
            // Assignments to an enum declared elsewhere — skip the file
            // rather than checking against an unknown variant set.
            return None;
        }
    };

    let mut table = FsmTable {
        file: file.rel_path.clone(),
        enum_name: enum_name.clone(),
        states,
        initial: Vec::new(),
        transitions: Vec::new(),
    };

    // Entry states: `state: Enum::V` struct-literal fields.
    for line in file.lines.iter().filter(|l| !l.in_test) {
        if let Some(v) = struct_init_state(&line.code, &enum_name) {
            if !table.initial.contains(&v) {
                table.initial.push(v);
            }
        }
    }

    // Match arms and their bodies.
    let matches = find_state_matches(file);
    for m in &matches {
        check_exhaustive(file, &table, m, out);
        for arm in &m.arms {
            for line_no in arm.body_start..=arm.body_end {
                let Some(line) = file.lines.get(line_no - 1) else {
                    continue;
                };
                if let Some((_, to)) = assignment_target(&line.code) {
                    table.transitions.push(Transition {
                        from: arm.pattern.clone(),
                        to: to.to_owned(),
                        line: line_no,
                    });
                }
            }
        }
    }

    // Assignments outside any match arm: recover the guard context by
    // scanning backwards within the enclosing fn for the nearest state
    // comparison / binding.
    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx + 1;
        if line.in_test || in_any_arm(&matches, line_no) {
            continue;
        }
        let Some((_, to)) = assignment_target(&line.code) else {
            continue;
        };
        let from = guard_context(file, tree, &table, line_no);
        table.transitions.push(Transition {
            from,
            to: to.to_owned(),
            line: line_no,
        });
    }

    table
        .transitions
        .sort_by(|a, b| (a.line, &a.from, &a.to).cmp(&(b.line, &b.from, &b.to)));
    table.transitions.dedup();
    Some(table)
}

/// One `match self.state` block.
struct StateMatch {
    /// 1-based line of the `match` keyword.
    line: usize,
    /// Last line of the match body.
    end: usize,
    arms: Vec<Arm>,
}

/// One arm: `Enum::Variant(..) => …` (or `_ => …`).
struct Arm {
    /// Variant name, or `"_"`.
    pattern: String,
    body_start: usize,
    body_end: usize,
}

fn in_any_arm(matches: &[StateMatch], line_no: usize) -> bool {
    matches
        .iter()
        .any(|m| m.line <= line_no && line_no <= m.end)
}

/// Locate every `match self.state {` block and parse its arms by brace
/// depth: arms sit one level inside the match body.
fn find_state_matches(file: &SourceFile) -> Vec<StateMatch> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // (match record, depth of the match body)
    let mut active: Option<(StateMatch, i64)> = None;

    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = &line.code;
        let starts = !line.in_test && code.contains("match self.state");

        if active.is_none() && starts {
            active = Some((
                StateMatch {
                    line: line_no,
                    end: line_no,
                    arms: Vec::new(),
                },
                depth + 1,
            ));
        }

        // Arm headers live exactly at the match-body depth.
        if let Some((m, body_depth)) = active.as_mut() {
            if depth == *body_depth && line_no > m.line {
                if let Some(pat) = arm_pattern(code) {
                    if let Some(last) = m.arms.last_mut() {
                        if last.body_end == 0 {
                            last.body_end = line_no - 1;
                        }
                    }
                    m.arms.push(Arm {
                        pattern: pat,
                        body_start: line_no,
                        body_end: 0,
                    });
                }
            }
        }

        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some((m, body_depth)) = active.as_mut() {
                        if depth < *body_depth {
                            m.end = line_no;
                            if let Some(last) = m.arms.last_mut() {
                                if last.body_end == 0 {
                                    last.body_end = line_no;
                                }
                            }
                            if let Some((done, _)) = active.take() {
                                out.push(done);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Parse `Enum::Variant(bind) => …` / `_ =>` at the start of a line.
fn arm_pattern(code: &str) -> Option<String> {
    let t = code.trim_start();
    let arrow = t.find("=>")?;
    let pat = t[..arrow].trim();
    if pat == "_" {
        return Some("_".to_owned());
    }
    // Last path segment before any binding parens.
    let head = pat.split('(').next().unwrap_or(pat).trim();
    let variant = head.rsplit("::").next().unwrap_or(head).trim();
    if variant.is_empty()
        || !variant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        || !variant.starts_with(|c: char| c.is_ascii_uppercase())
    {
        return None;
    }
    Some(variant.to_owned())
}

/// `self.state = Enum::Variant(…)` on one line → (enum, variant).
fn assignment_target(code: &str) -> Option<(&str, &str)> {
    let pos = code.find("self.state = ")?;
    let rhs = code[pos + "self.state = ".len()..].trim_start();
    let (enum_name, rest) = rhs.split_once("::")?;
    let enum_name = enum_name.trim();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let variant = &rest[..end];
    if enum_name.is_empty() || variant.is_empty() {
        return None;
    }
    Some((enum_name, variant))
}

/// `state: Enum::Variant` struct-literal field → variant.
fn struct_init_state(code: &str, enum_name: &str) -> Option<String> {
    let t = code.trim();
    let rest = t.strip_prefix("state: ")?;
    let rest = rest.strip_prefix(enum_name)?.strip_prefix("::")?;
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_owned())
}

/// Exhaustiveness of one `match self.state`: every variant or `_`.
fn check_exhaustive(file: &SourceFile, table: &FsmTable, m: &StateMatch, out: &mut Vec<Finding>) {
    if m.arms.iter().any(|a| a.pattern == "_") {
        return;
    }
    let covered: BTreeSet<&str> = m.arms.iter().map(|a| a.pattern.as_str()).collect();
    let missing: Vec<&str> = table
        .states
        .iter()
        .map(String::as_str)
        .filter(|s| !covered.contains(*s))
        .collect();
    if !missing.is_empty() {
        out.push(finding(
            &file.rel_path,
            m.line,
            format!("nonexhaustive:{}", table.enum_name),
            format!(
                "`match self.state` does not cover {} variant(s): {}",
                missing.len(),
                missing.join(", ")
            ),
        ));
    }
}

/// From-state of an assignment outside a match arm: the nearest
/// preceding line in the same fn that names a *different* variant in a
/// comparison/guard position, else `*`.
fn guard_context(file: &SourceFile, tree: &ItemTree, table: &FsmTable, line_no: usize) -> String {
    let Some(f) = tree.fn_at(line_no) else {
        return "*".to_owned();
    };
    let needle = format!("{}::", table.enum_name);
    for idx in (f.decl_line..line_no).rev() {
        let Some(line) = file.lines.get(idx - 1) else {
            continue;
        };
        let code = &line.code;
        if assignment_target(code).is_some() || !code.contains("self.state") {
            continue;
        }
        let mut search = 0;
        while let Some(rel) = code[search..].find(&needle) {
            let start = search + rel + needle.len();
            let rest = &code[start..];
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            let variant = &rest[..end];
            search = start;
            if !variant.is_empty() && table.states.iter().any(|s| s == variant) {
                return variant.to_owned();
            }
        }
    }
    "*".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::preprocess;

    fn device_file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_owned(),
            crate_name: "ff-device".to_owned(),
            kind: FileKind::Lib,
            lines: preprocess(src),
        }
    }

    const GOOD_WNIC: &str = "\
pub enum WnicState {
    Cam,
    ToPsm(u64),
    Psm,
    ToCam(u64),
}
pub struct WnicModel {
    state: WnicState,
}
impl WnicModel {
    pub fn new() -> Self {
        WnicModel {
            state: WnicState::Psm,
        }
    }
    fn advance_to(&mut self, now: u64) {
        match self.state {
            WnicState::Cam => {
                let deadline = self.idle_since + self.params.psm_timeout;
                self.meter.transition(self.params.to_psm_energy);
                self.state = WnicState::ToPsm(deadline);
            }
            WnicState::ToPsm(until) => {
                self.state = WnicState::Psm;
            }
            WnicState::Psm => {
                self.clock = now;
            }
            WnicState::ToCam(until) => {
                self.state = WnicState::Cam;
            }
        }
    }
    fn service(&mut self) {
        if self.state == WnicState::Psm {
            self.state = WnicState::ToCam(self.clock);
        }
    }
}
";

    #[test]
    fn extracts_the_full_wnic_machine() {
        let file = device_file("crates/ff-device/src/wnic.rs", GOOD_WNIC);
        let trees = items::build(std::slice::from_ref(&file));
        let mut findings = Vec::new();
        let table = extract(&file, &trees[0], &mut findings).expect("table");
        assert_eq!(table.enum_name, "WnicState");
        assert_eq!(table.states, ["Cam", "ToPsm", "Psm", "ToCam"]);
        assert_eq!(table.initial, ["Psm"]);
        assert!(table.has_transition("Cam", "ToPsm"), "{table:?}");
        assert!(table.has_transition("ToPsm", "Psm"));
        assert!(table.has_transition("ToCam", "Cam"));
        assert!(
            table.has_transition("Psm", "ToCam"),
            "guard context: {table:?}"
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn good_machine_passes_generic_checks() {
        let file = device_file("crates/ff-device/src/wnic.rs", GOOD_WNIC);
        let trees = items::build(std::slice::from_ref(&file));
        let mut findings = Vec::new();
        let table = extract(&file, &trees[0], &mut findings).expect("table");
        check_generic(&table, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn removed_arm_is_nonexhaustive_and_breaks_the_cycle() {
        // Drop the ToCam arm: the match is non-exhaustive AND Cam
        // becomes unreachable (its only inbound edge was ToCam -> Cam).
        let src = GOOD_WNIC.replace(
            "            WnicState::ToCam(until) => {\n                self.state = WnicState::Cam;\n            }\n",
            "",
        );
        let file = device_file("crates/ff-device/src/wnic.rs", &src);
        let trees = items::build(std::slice::from_ref(&file));
        let mut findings = Vec::new();
        let table = extract(&file, &trees[0], &mut findings).expect("table");
        check_generic(&table, &mut findings);
        let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
        assert!(tokens.contains(&"nonexhaustive:WnicState"), "{tokens:?}");
        assert!(tokens.contains(&"unreachable:WnicState::Cam"), "{tokens:?}");
        assert!(
            !table.has_transition("ToCam", "Cam"),
            "the removed transition must be gone from the table"
        );
    }

    #[test]
    fn missing_machine_is_a_finding() {
        let file = device_file("crates/ff-device/src/other.rs", "pub fn x() {}\n");
        let trees = items::build(std::slice::from_ref(&file));
        let (tables, findings) = analyze(std::slice::from_ref(&file), &trees);
        assert!(tables.is_empty());
        let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
        assert!(tokens.contains(&"fsm-missing:DiskState"), "{tokens:?}");
        assert!(tokens.contains(&"fsm-missing:WnicState"), "{tokens:?}");
    }

    #[test]
    fn wildcard_arm_is_exhaustive() {
        let src = GOOD_WNIC.replace(
            "            WnicState::Psm => {\n                self.clock = now;\n            }\n            WnicState::ToCam(until) => {\n                self.state = WnicState::Cam;\n            }\n",
            "            _ => {\n                self.state = WnicState::Cam;\n            }\n",
        );
        let file = device_file("crates/ff-device/src/wnic.rs", &src);
        let trees = items::build(std::slice::from_ref(&file));
        let mut findings = Vec::new();
        let table = extract(&file, &trees[0], &mut findings).expect("table");
        check_exhaustive(&file, &table, &find_state_matches(&file)[0], &mut findings);
        assert!(
            !findings
                .iter()
                .any(|f| f.token.starts_with("nonexhaustive")),
            "{findings:?}"
        );
    }
}
