//! Interprocedural nondeterminism taint.
//!
//! The per-line determinism rule (family 1) greps the simulation
//! crates for wall-clock reads, ambient RNGs and unordered-map types;
//! laundering the value through a helper in a crate the grep does not
//! cover defeats it. This pass upgrades the check to a flow-sensitive
//! analysis over the workspace call graph: a **source** is a fn whose
//! body reads `Instant::now`/`SystemTime`, the process environment, an
//! ambient RNG, spawns threads, or iterates a `HashMap`/`HashSet`
//! without sorting the result before returning; a **sink** is a fn
//! that feeds the replay-stable artefacts (`SimReport`, recorder
//! `.record(…)` output, JSONL export). Any call path from a sink to a
//! source is a finding: the artefact could observe nondeterminism and
//! break byte-identical replay.
//!
//! Two source kinds admit a **sanitiser**: an occurrence followed by a
//! `.sort…` call later in the same fn body is treated as sanitised.
//!
//! * *Hash iteration* — the canonical pattern in
//!   `ff-trace::strace_import`, which drains its maps into a vector and
//!   sorts before anything escapes.
//! * *Thread spawns* (`thread::spawn`, scoped `.spawn(…)`,
//!   `thread::scope`/`crossbeam::scope`) — the **ordered-merge**
//!   pattern of `ff-bench::pool`: workers race, but every result
//!   carries its task index and the batch is sorted into canonical
//!   task order before it leaves the spawning fn, so scheduling order
//!   cannot reach a recorded sink. A spawn whose results escape
//!   *without* a canonical-order merge remains a finding.

use crate::callgraph::{Graph, NodeId};
use crate::items::ItemTree;
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The crates whose fns participate in the taint graph: the simulation
/// dependency closure plus the bench driver, which owns the JSON
/// export pipeline the panic-reachability graph deliberately excludes.
pub const TAINT_CRATES: [&str; 8] = [
    "ff-base",
    "ff-bench",
    "ff-cache",
    "ff-device",
    "ff-policy",
    "ff-profile",
    "ff-sim",
    "ff-trace",
];

/// Direct nondeterminism tokens: substring, source kind, explanation.
const SOURCE_TOKENS: [(&str, &str, &str); 9] = [
    (
        "Instant::now(",
        "wall-clock",
        "reads the monotonic wall clock",
    ),
    ("SystemTime", "wall-clock", "reads the system wall clock"),
    (
        "thread_rng(",
        "ambient-rng",
        "draws from the OS-seeded ambient RNG",
    ),
    ("env::var(", "env", "reads the process environment"),
    ("env::vars(", "env", "reads the process environment"),
    (
        "thread::spawn(",
        "thread",
        "spawns a thread; interleaving is nondeterministic",
    ),
    (
        "thread::scope(",
        "thread",
        "spawns scoped threads; interleaving is nondeterministic",
    ),
    (
        "crossbeam::scope(",
        "thread",
        "spawns scoped threads; interleaving is nondeterministic",
    ),
    (
        ".spawn(",
        "thread",
        "spawns a worker thread; interleaving is nondeterministic",
    ),
];

/// Source kinds that a later `.sort…` in the same body sanitises: an
/// unordered collection (or a racing worker pool) whose results are
/// merged into canonical order before they escape.
const SORT_SANITISED_KINDS: [&str; 2] = ["hash-iteration", "thread"];

/// Sink tokens: a fn whose body mentions one of these feeds the
/// replay-stable artefacts.
const SINK_TOKENS: [&str; 3] = ["SimReport", ".record(", "to_jsonl"];

/// Method suffixes that iterate a map/set in unspecified order.
const ITER_SUFFIXES: [&str; 5] = [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"];

/// One nondeterminism source inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Source {
    kind: &'static str,
    line: usize,
    what: String,
}

/// Identifiers in a file bound to a `HashMap`/`HashSet` (struct fields
/// and let-bindings; `use` lines and fn signatures are skipped).
fn hash_bindings(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        if code.starts_with("use ") || code.contains("fn ") {
            continue;
        }
        let lhs = code.split('=').next().unwrap_or(code).trim();
        let lhs = lhs.strip_prefix("pub ").unwrap_or(lhs);
        let lhs = lhs.strip_prefix("let ").unwrap_or(lhs);
        let lhs = lhs.strip_prefix("mut ").unwrap_or(lhs);
        let name: String = lhs
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && name != "HashMap" && name != "HashSet" {
            out.insert(name);
        }
    }
    out
}

/// Does the line iterate `ident` (method iteration or a `for … in`
/// over the collection itself)?
fn iterates(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(off) = code[search..].find(ident) {
        let pos = search + off;
        let boundary =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let after = &code[pos + ident.len()..];
        if boundary && ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
            return true;
        }
        search = pos + ident.len();
    }
    if code.contains("for ") {
        for prefix in [" in ", " in &", " in &mut ", " in self.", " in &self."] {
            let pat = format!("{prefix}{ident}");
            if let Some(pos) = code.find(&pat) {
                let end = pos + pat.len();
                let next = bytes.get(end).copied();
                if !matches!(next, Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                    return true;
                }
            }
        }
    }
    false
}

/// Is there a `.sort…` call strictly after `line_no` (and up to the fn
/// end) — the ordered-merge/drain-and-sort sanitiser?
fn sorted_later(file: &SourceFile, line_no: usize, body_end: usize) -> bool {
    (line_no..=body_end).any(|n| {
        file.lines
            .get(n - 1)
            .is_some_and(|l| !l.in_test && l.code.contains(".sort"))
    })
}

/// Sources in one fn body: direct tokens plus unsanitised hash
/// iteration. Sort-sanitisable kinds (hash iteration, thread spawns)
/// are dropped when a `.sort…` follows in the same body — the merge
/// into canonical order happens before anything escapes.
fn body_sources(
    file: &SourceFile,
    hash_idents: &BTreeSet<String>,
    body_start: usize,
    body_end: usize,
) -> Vec<Source> {
    let mut out = Vec::new();
    for line_no in body_start..=body_end {
        let Some(line) = file.lines.get(line_no - 1) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for &(token, kind, _) in &SOURCE_TOKENS {
            if !code.contains(token) {
                continue;
            }
            if SORT_SANITISED_KINDS.contains(&kind) && sorted_later(file, line_no, body_end) {
                continue;
            }
            out.push(Source {
                kind,
                line: line_no,
                what: token.trim_end_matches('(').to_owned(),
            });
        }
        for ident in hash_idents {
            if !iterates(code, ident) {
                continue;
            }
            if !sorted_later(file, line_no, body_end) {
                out.push(Source {
                    kind: "hash-iteration",
                    line: line_no,
                    what: format!("{ident} iteration"),
                });
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The first sink token a fn body mentions, if any.
fn body_sink(file: &SourceFile, body_start: usize, body_end: usize) -> Option<&'static str> {
    for line_no in body_start..=body_end {
        let Some(line) = file.lines.get(line_no - 1) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        for token in SINK_TOKENS {
            if line.code.contains(token) {
                return Some(token);
            }
        }
    }
    None
}

/// Run the taint pass: build the widened call graph, classify every fn
/// as source/sink, and report each sink that can transitively observe
/// a source.
pub fn analyze(sources: &[SourceFile], trees: &[ItemTree]) -> Vec<Finding> {
    let graph = Graph::build_for(sources, trees, &TAINT_CRATES);
    let hash_idents: Vec<BTreeSet<String>> = sources.iter().map(hash_bindings).collect();

    let mut fn_sources: BTreeMap<NodeId, Vec<Source>> = BTreeMap::new();
    let mut sinks: Vec<(NodeId, &'static str)> = Vec::new();
    for (&node, _) in &graph.calls {
        let (fi, ii) = node;
        let Some(item) = trees[fi].items.get(ii) else {
            continue;
        };
        if item.body_start == 0 {
            continue;
        }
        let file = &sources[fi];
        if file.kind != FileKind::Lib {
            continue;
        }
        let found = body_sources(file, &hash_idents[fi], item.body_start, item.body_end);
        if !found.is_empty() {
            fn_sources.insert(node, found);
        }
        if let Some(token) = body_sink(file, item.body_start, item.body_end) {
            sinks.push((node, token));
        }
    }

    let mut findings = Vec::new();
    for (sink, sink_token) in sinks {
        // BFS from the sink over callee edges: anything it calls
        // (transitively) contributes data it may serialise.
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::from([sink]);
        seen.insert(sink);
        let mut reported: BTreeSet<&'static str> = BTreeSet::new();
        while let Some(node) = queue.pop_front() {
            if let Some(found) = fn_sources.get(&node) {
                for src in found {
                    if !reported.insert(src.kind) {
                        continue;
                    }
                    findings.push(report(trees, sources, sink, sink_token, node, src, &parent));
                }
            }
            for &callee in graph.calls.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(callee) {
                    parent.insert(callee, node);
                    queue.push_back(callee);
                }
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.token).cmp(&(b.rule, &b.file, b.line, &b.token))
    });
    findings
}

/// Render one sink→source flow as a finding anchored at the sink.
fn report(
    trees: &[ItemTree],
    sources: &[SourceFile],
    sink: NodeId,
    sink_token: &str,
    at: NodeId,
    src: &Source,
    parent: &BTreeMap<NodeId, NodeId>,
) -> Finding {
    let name = |node: NodeId| -> String {
        let (fi, ii) = node;
        trees[fi]
            .items
            .get(ii)
            .map(|i| i.qualified_name(&trees[fi].items))
            .unwrap_or_default()
    };
    let mut chain = vec![at];
    let mut cur = at;
    while let Some(&p) = parent.get(&cur) {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let path: Vec<String> = chain.iter().map(|&n| name(n)).collect();
    let (sink_fi, sink_ii) = sink;
    let sink_item = &trees[sink_fi].items[sink_ii];
    Finding {
        rule: Rule::NondetTaint,
        file: sources[sink_fi].rel_path.clone(),
        line: sink_item.decl_line,
        token: format!("{}<-{}", sink_item.name, src.kind),
        message: format!(
            "report sink `{}` ({sink_token}) can observe nondeterministic {} ({}, {}:{}) via {}",
            name(sink),
            src.kind,
            src.what,
            sources[at.0].rel_path,
            src.line,
            path.join(" -> "),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::{preprocess, SourceFile};

    fn source_file(rel_path: &str, text: &str) -> SourceFile {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_owned();
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name,
            kind: FileKind::Lib,
            lines: preprocess(text),
        }
    }

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| source_file(p, t)).collect();
        let trees = items::build(&sources);
        analyze(&sources, &trees)
    }

    const LAUNDERED: &str = "\
pub struct SimReport {
    pub lines: Vec<String>,
}

fn checksum() -> u64 {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    counts.insert(1, 2);
    let mut total = 0;
    for (k, v) in counts.iter() {
        total = total * 31 + k + v;
    }
    total
}

pub fn render() -> SimReport {
    let mut report = SimReport { lines: Vec::new() };
    report.lines.push(format!(\"{}\", checksum()));
    report
}
";

    #[test]
    fn hash_iteration_laundered_through_a_helper_is_caught() {
        let findings = run(&[("crates/ff-bench/src/export.rs", LAUNDERED)]);
        assert!(
            findings.iter().any(|f| f.token == "render<-hash-iteration"),
            "{findings:?}"
        );
    }

    #[test]
    fn sorted_iteration_is_sanitised() {
        let clean = LAUNDERED.replace(
            "    for (k, v) in counts.iter() {\n        total = total * 31 + k + v;\n    }\n",
            "    let mut pairs: Vec<(u64, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();\n    pairs.sort();\n    for (k, v) in pairs {\n        total = total * 31 + k + v;\n    }\n",
        );
        let findings = run(&[("crates/ff-bench/src/export.rs", &clean)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wall_clock_behind_two_helpers_reaches_the_recorder() {
        let text = "\
fn now_us() -> u64 {
    let t = std::time::Instant::now();
    0
}

fn stamp() -> u64 {
    now_us()
}

pub fn emit(log: &mut Vec<String>) {
    log.record(stamp());
}
";
        let findings = run(&[("crates/ff-sim/src/rec.rs", text)]);
        assert!(
            findings.iter().any(|f| f.token == "emit<-wall-clock"),
            "{findings:?}"
        );
    }

    const UNMERGED_POOL: &str = "\
fn fan_out(items: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    std::thread::scope(|s| {
        for &x in items {
            s.spawn(move || x * 2);
        }
    });
    out.push(1);
    out
}

pub fn export(log: &mut Vec<String>) {
    let rows = fan_out(&[1, 2, 3]);
    log.record(rows.len());
}
";

    #[test]
    fn thread_spawn_without_ordered_merge_is_caught() {
        let findings = run(&[("crates/ff-bench/src/pool.rs", UNMERGED_POOL)]);
        assert!(
            findings.iter().any(|f| f.token == "export<-thread"),
            "{findings:?}"
        );
    }

    #[test]
    fn ordered_merge_sanitises_the_spawn() {
        // The ff-bench::pool pattern: results carry their task index
        // and are sorted into canonical order before they escape.
        let clean = UNMERGED_POOL.replace("    out.push(1);\n", "    out.sort_by_key(|&(i)| i);\n");
        let findings = run(&[("crates/ff-bench/src/pool.rs", &clean)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn sink_without_a_path_to_a_source_is_clean() {
        let text = "\
fn stable() -> u64 {
    7
}

pub fn emit(log: &mut Vec<String>) {
    log.record(stable());
}
";
        let findings = run(&[("crates/ff-sim/src/rec.rs", text)]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
