//! `ff-lint` CLI.
//!
//! ```text
//! cargo run -p ff-lint -- [--json] [--github] [--families] [--root PATH]
//!                         [--baseline PATH] [--update-baseline] [--forbid-stale]
//!                         [--sarif PATH] [--export-product PATH]
//!                         [--killscore PATH] [--seed N]
//! ```
//!
//! Exit codes: `0` clean (no findings beyond the baseline), `1` new
//! findings (or, under `--forbid-stale`, a stale baseline; or, under
//! `--killscore`, a family below its kill-rate floor), `2` usage or
//! I/O error.

use ff_base::json::Value;
use ff_lint::{default_baseline_path, default_root, Baseline, Report, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    github: bool,
    families: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    forbid_stale: bool,
    sarif: Option<PathBuf>,
    export_product: Option<PathBuf>,
    killscore: Option<PathBuf>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        github: false,
        families: false,
        root: default_root(),
        baseline: None,
        update_baseline: false,
        forbid_stale: false,
        sarif: None,
        export_product: None,
        killscore: None,
        seed: ff_lint::mutgen::DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--github" => args.github = true,
            "--families" => args.families = true,
            "--update-baseline" => args.update_baseline = true,
            "--forbid-stale" => args.forbid_stale = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path argument")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a path")?,
                ));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif requires a path")?));
            }
            "--export-product" => {
                args.export_product = Some(PathBuf::from(
                    it.next().ok_or("--export-product requires a path")?,
                ));
            }
            "--killscore" => {
                args.killscore = Some(PathBuf::from(
                    it.next().ok_or("--killscore requires a path")?,
                ));
            }
            "--seed" => {
                let raw = it.next().ok_or("--seed requires an integer")?;
                args.seed = raw
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: `{raw}` is not a u64"))?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
ff-lint: static analysis for the FlexFetch workspace

USAGE:
    ff-lint [--json] [--github] [--families] [--root PATH] [--baseline PATH]
            [--update-baseline] [--forbid-stale] [--sarif PATH]
            [--export-product PATH] [--killscore PATH] [--seed N]

OPTIONS:
    --json              emit the machine-readable JSON report on stdout
    --github            also emit GitHub Actions ::error annotations for
                        findings beyond the baseline
    --families          list the rule-family ids and exit
    --root PATH         workspace root to scan (default: this workspace)
    --baseline PATH     ratchet file (default: crates/ff-lint/baseline.json)
    --update-baseline   rewrite the baseline to accept the current state
    --forbid-stale      fail when the baseline lists debt that no longer
                        exists (it is stale relative to --update-baseline)
    --sarif PATH        also write a SARIF 2.1.0 document for GitHub code
                        scanning (new findings at their family severity,
                        baselined debt as notes)
    --export-product PATH
                        also write the explored product-state automaton
                        (components, alphabet, reachability, recoveries)
    --killscore PATH    run the mutation engine instead of a plain scan:
                        apply every probe mutant in memory, re-run all
                        eighteen families per mutant, write the per-family
                        kill matrix to PATH and fail if any family's kill
                        rate is below its recorded floor
    --seed N            occurrence-selection seed for --killscore
                        (default: the committed CI seed)
";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.families {
        for rule in Rule::all() {
            println!("{}", rule.as_str());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.killscore {
        let matrix = match ff_lint::mutgen::run(&args.root, args.seed) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("ff-lint: mutation engine: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, matrix.to_json()) {
            eprintln!("ff-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let killed = matrix.mutants.iter().filter(|m| m.killed).count();
        eprintln!(
            "ff-lint: {}/{} mutant(s) killed (seed {}); matrix at {}",
            killed,
            matrix.mutants.len(),
            matrix.seed,
            path.display()
        );
        let violations = matrix.floor_violations();
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("ff-lint: kill-rate floor violated — {v}");
            }
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| default_baseline_path(&args.root));

    if args.update_baseline {
        let findings = match ff_lint::collect_findings(&args.root) {
            Ok((f, _)) => f,
            Err(e) => {
                eprintln!("ff-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("ff-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ff-lint: baseline updated — {} key(s) covering {} finding(s) at {}",
            baseline.len(),
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // A missing baseline file means "empty baseline": everything is new.
    // That makes a fresh checkout fail loudly instead of silently
    // accepting all debt, and lets tests point --baseline at /dev/null‑
    // style paths to see the full inventory.
    let baseline = if baseline_path.exists() {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ff-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        eprintln!(
            "ff-lint: baseline {} not found; comparing against an empty baseline",
            baseline_path.display()
        );
        Baseline::empty()
    };

    let report = match ff_lint::run(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ff-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.sarif {
        let mut text = to_sarif(&report).to_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("ff-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.export_product {
        let mut text = report.product.to_json_value().to_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("ff-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_table());
    }

    if args.github {
        // GitHub Actions workflow-command annotations render inline on
        // the PR diff. Only findings beyond the baseline are errors.
        for (_, _, members) in &report.delta.new {
            for f in members {
                println!(
                    "::error file={},line={},title=ff-lint {}::{}",
                    f.file,
                    f.line,
                    f.rule,
                    gha_escape(&f.message)
                );
            }
        }
    }

    if !report.is_clean() {
        return ExitCode::FAILURE;
    }
    if args.forbid_stale && !report.delta.improved.is_empty() {
        eprintln!(
            "ff-lint: baseline is stale — {} entr(ies) list debt that no longer exists; \
             run `cargo run -p ff-lint -- --update-baseline` and commit the result",
            report.delta.improved.len()
        );
        for ((rule, file, token), allowed, current) in &report.delta.improved {
            eprintln!("  {rule} {file} `{token}`: baseline {allowed}, now {current}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Escape a message for a GitHub workflow-command data section.
fn gha_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Render the report as a SARIF 2.1.0 document for GitHub code
/// scanning. Each rule carries its family severity as the SARIF
/// `defaultConfiguration` level, and findings beyond the baseline are
/// reported at that family severity; baselined debt is included at
/// `note` level so the scanning UI shows the full inventory without
/// failing the upload.
fn to_sarif(report: &Report) -> Value {
    let new: Vec<&ff_lint::Finding> = report
        .delta
        .new
        .iter()
        .flat_map(|(_, _, members)| members.iter())
        .collect();
    let rules: Vec<Value> = Rule::all()
        .into_iter()
        .map(|r| {
            Value::Object(vec![
                ("id".into(), Value::Str(r.as_str().into())),
                ("name".into(), Value::Str(r.as_str().replace('-', "_"))),
                (
                    "defaultConfiguration".into(),
                    Value::Object(vec![("level".into(), Value::Str(r.severity().into()))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = report
        .findings
        .iter()
        .map(|f| {
            let level = if new.iter().any(|n| *n == f) {
                f.rule.severity()
            } else {
                "note"
            };
            Value::Object(vec![
                ("ruleId".into(), Value::Str(f.rule.as_str().into())),
                ("level".into(), Value::Str(level.into())),
                (
                    "message".into(),
                    Value::Object(vec![(
                        "text".into(),
                        Value::Str(format!("{} [{}]", f.message, f.token)),
                    )]),
                ),
                (
                    "locations".into(),
                    Value::Array(vec![Value::Object(vec![(
                        "physicalLocation".into(),
                        Value::Object(vec![
                            (
                                "artifactLocation".into(),
                                Value::Object(vec![("uri".into(), Value::Str(f.file.clone()))]),
                            ),
                            (
                                "region".into(),
                                Value::Object(vec![(
                                    "startLine".into(),
                                    Value::UInt(f.line.max(1) as u64),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "$schema".into(),
            Value::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version".into(), Value::Str("2.1.0".into())),
        (
            "runs".into(),
            Value::Array(vec![Value::Object(vec![
                (
                    "tool".into(),
                    Value::Object(vec![(
                        "driver".into(),
                        Value::Object(vec![
                            ("name".into(), Value::Str("ff-lint".into())),
                            ("rules".into(), Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), Value::Array(results)),
            ])]),
        ),
    ])
}
