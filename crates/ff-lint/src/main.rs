//! `ff-lint` CLI.
//!
//! ```text
//! cargo run -p ff-lint -- [--json] [--github] [--families] [--root PATH]
//!                         [--baseline PATH] [--update-baseline] [--forbid-stale]
//! ```
//!
//! Exit codes: `0` clean (no findings beyond the baseline), `1` new
//! findings (or, under `--forbid-stale`, a stale baseline), `2` usage
//! or I/O error.

use ff_lint::{default_baseline_path, default_root, Baseline, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    github: bool,
    families: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    forbid_stale: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        github: false,
        families: false,
        root: default_root(),
        baseline: None,
        update_baseline: false,
        forbid_stale: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--github" => args.github = true,
            "--families" => args.families = true,
            "--update-baseline" => args.update_baseline = true,
            "--forbid-stale" => args.forbid_stale = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path argument")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a path")?,
                ));
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
ff-lint: static analysis for the FlexFetch workspace

USAGE:
    ff-lint [--json] [--github] [--families] [--root PATH] [--baseline PATH]
            [--update-baseline] [--forbid-stale]

OPTIONS:
    --json              emit the machine-readable JSON report on stdout
    --github            also emit GitHub Actions ::error annotations for
                        findings beyond the baseline
    --families          list the rule-family ids and exit
    --root PATH         workspace root to scan (default: this workspace)
    --baseline PATH     ratchet file (default: crates/ff-lint/baseline.json)
    --update-baseline   rewrite the baseline to accept the current state
    --forbid-stale      fail when the baseline lists debt that no longer
                        exists (it is stale relative to --update-baseline)
";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.families {
        for rule in Rule::all() {
            println!("{}", rule.as_str());
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| default_baseline_path(&args.root));

    if args.update_baseline {
        let findings = match ff_lint::collect_findings(&args.root) {
            Ok((f, _)) => f,
            Err(e) => {
                eprintln!("ff-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("ff-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ff-lint: baseline updated — {} key(s) covering {} finding(s) at {}",
            baseline.len(),
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // A missing baseline file means "empty baseline": everything is new.
    // That makes a fresh checkout fail loudly instead of silently
    // accepting all debt, and lets tests point --baseline at /dev/null‑
    // style paths to see the full inventory.
    let baseline = if baseline_path.exists() {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ff-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        eprintln!(
            "ff-lint: baseline {} not found; comparing against an empty baseline",
            baseline_path.display()
        );
        Baseline::empty()
    };

    let report = match ff_lint::run(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ff-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_table());
    }

    if args.github {
        // GitHub Actions workflow-command annotations render inline on
        // the PR diff. Only findings beyond the baseline are errors.
        for (_, _, members) in &report.delta.new {
            for f in members {
                println!(
                    "::error file={},line={},title=ff-lint {}::{}",
                    f.file,
                    f.line,
                    f.rule,
                    gha_escape(&f.message)
                );
            }
        }
    }

    if !report.is_clean() {
        return ExitCode::FAILURE;
    }
    if args.forbid_stale && !report.delta.improved.is_empty() {
        eprintln!(
            "ff-lint: baseline is stale — {} entr(ies) list debt that no longer exists; \
             run `cargo run -p ff-lint -- --update-baseline` and commit the result",
            report.delta.improved.len()
        );
        for ((rule, file, token), allowed, current) in &report.delta.improved {
            eprintln!("  {rule} {file} `{token}`: baseline {allowed}, now {current}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Escape a message for a GitHub workflow-command data section.
fn gha_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}
