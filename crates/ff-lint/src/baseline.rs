//! The ratchet baseline.
//!
//! A baseline is a committed inventory of accepted findings, keyed by
//! `(rule, file, token)` with an occurrence count. The lint run fails
//! only when a key's current count *exceeds* its baselined count (a new
//! or reintroduced finding); counts may only go down, and
//! `--update-baseline` re-records the current state after a clean-up.
//!
//! Line numbers are deliberately not part of the key so that unrelated
//! edits above a finding do not churn the file.

use crate::rules::{Finding, Rule};
use ff_base::json::Value;
use ff_base::{Error, Result};
use std::collections::BTreeMap;
use std::path::Path;

/// Baseline key: rule id, workspace-relative file, matched token.
pub type Key = (String, String, String);

/// Committed inventory of accepted findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<Key, u64>,
}

/// The comparison of a fresh scan against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Findings beyond the baselined count, grouped by key. For a key
    /// with baseline `b` and current count `c > b`, all `c` current
    /// occurrences are listed (the lint cannot know which are "new"),
    /// with the overshoot recorded alongside.
    pub new: Vec<(Key, u64, Vec<Finding>)>,
    /// Keys whose current count dropped below the baseline (candidates
    /// for `--update-baseline`).
    pub improved: Vec<(Key, u64, u64)>,
}

impl Delta {
    /// Does the scan introduce anything the baseline does not accept?
    pub fn is_clean(&self) -> bool {
        self.new.is_empty()
    }

    /// Total overshoot across all keys.
    pub fn new_count(&self) -> u64 {
        self.new.iter().map(|(_, over, _)| over).sum()
    }
}

/// Aggregate findings into baseline counts.
pub fn count_findings(findings: &[Finding]) -> BTreeMap<Key, u64> {
    let mut counts: BTreeMap<Key, u64> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.as_str().to_owned(), f.file.clone(), f.token.clone()))
            .or_insert(0) += 1;
    }
    counts
}

impl Baseline {
    /// Empty baseline: every finding is new.
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Build a baseline accepting exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        Baseline {
            entries: count_findings(findings),
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accepted count for a key (0 when absent).
    pub fn allowed(&self, key: &Key) -> u64 {
        self.entries.get(key).copied().unwrap_or(0)
    }

    /// Keys for one rule family (empty iterator = family fully clean).
    pub fn keys_for_rule(&self, rule: Rule) -> impl Iterator<Item = &Key> {
        self.entries
            .keys()
            .filter(move |(r, _, _)| r == rule.as_str())
    }

    /// True when a family has no accepted debt at all — the pinned-at-
    /// zero state the tier-1 gate asserts for the semantic families.
    pub fn is_empty_for(&self, rule: Rule) -> bool {
        self.keys_for_rule(rule).next().is_none()
    }

    /// Load from a JSON file written by [`Baseline::to_json`].
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Io(format!("reading baseline {}: {e}", path.display())))?;
        Baseline::parse(&text)
    }

    /// Parse the JSON document form.
    pub fn parse(text: &str) -> Result<Self> {
        let doc = Value::parse(text)?;
        let entries_node = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Parse {
                line: 0,
                msg: "baseline document has no `entries` array".into(),
            })?;
        let mut entries = BTreeMap::new();
        for item in entries_node {
            let field = |name: &str| -> Result<String> {
                item.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| Error::Parse {
                        line: 0,
                        msg: format!("baseline entry missing string field `{name}`"),
                    })
            };
            let count = item
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| Error::Parse {
                    line: 0,
                    msg: "baseline entry missing `count`".into(),
                })?;
            // A zero count is an empty family entry: it accepts
            // nothing and only adds diff noise, so it is dropped on
            // load exactly as `to_json` drops it on write — loading
            // and re-serialising a baseline is idempotent.
            if count == 0 {
                continue;
            }
            entries.insert((field("rule")?, field("file")?, field("token")?), count);
        }
        Ok(Baseline { entries })
    }

    /// Serialise to the committed JSON form: entries sorted by
    /// `(rule, file, token)` (the `BTreeMap` order), zero-count
    /// entries dropped, so regenerating an unchanged tree is
    /// byte-identical and regenerated baselines diff cleanly.
    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .filter(|(_, count)| **count > 0)
            .map(|((rule, file, token), count)| {
                Value::Object(vec![
                    ("rule".into(), Value::Str(rule.clone())),
                    ("file".into(), Value::Str(file.clone())),
                    ("token".into(), Value::Str(token.clone())),
                    ("count".into(), Value::UInt(*count)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".into(), Value::UInt(1)),
            ("entries".into(), Value::Array(entries)),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }

    /// Compare a fresh scan against this baseline.
    pub fn compare(&self, findings: &[Finding]) -> Delta {
        let counts = count_findings(findings);
        let mut delta = Delta::default();
        for (key, &count) in &counts {
            let allowed = self.allowed(key);
            if count > allowed {
                let members: Vec<Finding> = findings
                    .iter()
                    .filter(|f| f.rule.as_str() == key.0 && f.file == key.1 && f.token == key.2)
                    .cloned()
                    .collect();
                delta.new.push((key.clone(), count - allowed, members));
            }
        }
        for (key, &allowed) in &self.entries {
            let current = counts.get(key).copied().unwrap_or(0);
            if current < allowed {
                delta.improved.push((key.clone(), allowed, current));
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, token: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            token: token.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let fs = [
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 3),
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 9),
            finding(Rule::Hygiene, "b.rs", "TODO", 1),
        ];
        let b = Baseline::from_findings(&fs);
        let text = b.to_json();
        let back = Baseline::parse(&text).expect("parses");
        assert_eq!(back, b);
        assert_eq!(
            back.allowed(&("panic-safety".into(), "a.rs".into(), ".unwrap()".into())),
            2
        );
    }

    #[test]
    fn equal_counts_are_clean_and_fewer_is_improved() {
        let fs = [
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 3),
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 9),
        ];
        let b = Baseline::from_findings(&fs);
        assert!(b.compare(&fs).is_clean());
        let d = b.compare(&fs[..1]);
        assert!(d.is_clean());
        assert_eq!(d.improved.len(), 1);
    }

    #[test]
    fn overshoot_is_flagged_with_all_occurrences() {
        let base = [finding(Rule::PanicSafety, "a.rs", ".unwrap()", 3)];
        let b = Baseline::from_findings(&base);
        let now = [
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 3),
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 40),
        ];
        let d = b.compare(&now);
        assert!(!d.is_clean());
        assert_eq!(d.new_count(), 1);
        assert_eq!(d.new[0].2.len(), 2, "all occurrences listed for context");
    }

    #[test]
    fn unknown_key_is_new_against_empty_baseline() {
        let b = Baseline::empty();
        let now = [finding(
            Rule::Determinism,
            "crates/ff-sim/src/x.rs",
            "thread_rng",
            1,
        )];
        assert!(!b.compare(&now).is_clean());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"entries\": [{\"rule\": \"x\"}]}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }

    #[test]
    fn zero_count_entries_are_dropped_on_load_and_write() {
        let text = "{\"version\": 1, \"entries\": [\
            {\"rule\": \"hygiene\", \"file\": \"b.rs\", \"token\": \"TODO\", \"count\": 1},\
            {\"rule\": \"fsm\", \"file\": \"a.rs\", \"token\": \"dead\", \"count\": 0}\
        ]}";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.len(), 1, "the empty family entry must be dropped");
        assert!(!b.to_json().contains("\"fsm\""));
    }

    #[test]
    fn double_regeneration_is_byte_identical() {
        // The --update-baseline contract: serialise, parse, serialise
        // again — the two documents must match byte for byte, so a
        // regenerated baseline never churns the committed file.
        let fs = [
            finding(Rule::Hygiene, "z.rs", "TODO", 1),
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 3),
            finding(Rule::PanicSafety, "a.rs", ".unwrap()", 9),
            finding(Rule::Determinism, "m.rs", "HashMap", 2),
        ];
        let first = Baseline::from_findings(&fs).to_json();
        let second = Baseline::parse(&first).expect("parses").to_json();
        assert_eq!(first, second);
    }
}
